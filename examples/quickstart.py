#!/usr/bin/env python3
"""Quickstart: compare BFC against DCQCN on a small leaf-spine fabric.

This is the smallest end-to-end use of the library's public API:

1. declare a campaign over the paper's headline workload (Fig. 5a: Google
   flow sizes, 60% load + 5% incast) restricted to a few schemes,
2. run it — serially, or across a process pool with ``workers > 1``,
3. print the tail-latency comparison from the returned result set.

Run with::

    python examples/quickstart.py [tiny|small] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_series_table
from repro.experiments.scenarios import fig5a_campaign


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    schemes = ["BFC", "DCQCN", "DCQCN+Win", "Ideal-FQ"]
    print(
        f"Running the Fig. 5a workload at scale {scale!r} for {schemes} "
        f"(workers={workers}) ..."
    )

    result_set = fig5a_campaign(scale, schemes=schemes).run(workers=workers)
    results = result_set.experiment_results_by_label()
    for record in result_set:
        print(
            f"  {record.label:<10s} flows={int(record.metrics['flows_offered']):5d} "
            f"completed={100 * record.metrics['completion_rate']:5.1f}%  "
            f"p99 slowdown={record.metrics['p99_slowdown']:7.2f}  "
            f"drops={int(record.metrics['dropped_packets']):4d}  "
            f"({record.wall_seconds:.1f}s wall, "
            f"{int(record.metrics['events_processed'])} events)"
        )

    table = format_series_table(
        "p99 FCT slowdown vs flow size (Google workload, 60% load + 5% incast)",
        {scheme: result.slowdown_series() for scheme, result in results.items()},
    )
    print()
    print(table)

    tails = result_set.p99_slowdown_by("scheme")
    bfc_drops = int(result_set.record("fig5a/BFC").metrics["dropped_packets"])
    dcqcn_drops = int(result_set.record("fig5a/DCQCN").metrics["dropped_packets"])
    print(
        f"BFC cuts the overall p99 slowdown from {tails['DCQCN']:.1f}x "
        f"to {tails['BFC']:.1f}x while dropping "
        f"{bfc_drops} packets (DCQCN dropped {dcqcn_drops})."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
