#!/usr/bin/env python3
"""Quickstart: compare BFC against DCQCN on a small leaf-spine fabric.

This is the smallest end-to-end use of the library's public API:

1. pick a scale preset (topology + trace sizing),
2. build per-scheme experiment configurations for the paper's headline
   workload (Google flow sizes, 60% load + 5% incast),
3. run them and print the tail-latency comparison.

Run with::

    python examples/quickstart.py [tiny|small]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_series_table
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig5a_configs


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    schemes = ["BFC", "DCQCN", "DCQCN+Win", "Ideal-FQ"]
    print(f"Running the Fig. 5a workload at scale {scale!r} for {schemes} ...")

    configs = fig5a_configs(scale, schemes=schemes)
    results = {}
    for scheme, config in configs.items():
        result = run_experiment(config)
        results[scheme] = result
        print(
            f"  {scheme:<10s} flows={result.flows_offered:5d} "
            f"completed={100 * result.completion_rate():5.1f}%  "
            f"p99 slowdown={result.p99_slowdown():7.2f}  "
            f"drops={result.dropped_packets:4d}  "
            f"({result.wall_seconds:.1f}s wall, {result.events_processed} events)"
        )

    table = format_series_table(
        "p99 FCT slowdown vs flow size (Google workload, 60% load + 5% incast)",
        {scheme: result.slowdown_series() for scheme, result in results.items()},
    )
    print()
    print(table)

    bfc, dcqcn = results["BFC"], results["DCQCN"]
    print(
        f"BFC cuts the overall p99 slowdown from {dcqcn.p99_slowdown():.1f}x "
        f"to {bfc.p99_slowdown():.1f}x while dropping "
        f"{bfc.dropped_packets} packets (DCQCN dropped {dcqcn.dropped_packets})."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
