#!/usr/bin/env python3
"""Distributed campaign walkthrough: two localhost workers, one killed mid-wave.

This is the full fault-tolerance story on one machine:

1. start two ``repro worker serve`` agents as subprocesses;
2. run a small fig5a-style campaign through the
   :class:`~repro.campaign.DistributedExecutor` into an experiment
   workspace — and, while the wave is in flight, SIGKILL one worker the
   moment it reports a running trial;
3. the coordinator detects the loss, re-plans the remaining trials over the
   survivor, and the campaign completes;
4. the final records are verified identical to a serial run of the same
   campaign, and the workspace (results.jsonl + manifest.json + report.md)
   is printed.

This script is also CI's ``distributed-smoke`` job.  Run with::

    python examples/distributed_localhost.py [workspace-root]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
import warnings
from pathlib import Path

from repro.campaign import Campaign, DistributedExecutor, SerialExecutor, Workspace


def make_campaign() -> Campaign:
    return Campaign("fig5a-smoke").schemes("BFC").sweep(load=[0.4, 0.5, 0.6, 0.7])


def spawn_worker() -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    url = banner.split("listening on ", 1)[1].split()[0]
    print(f"  started worker pid={proc.pid} at {url}")
    return proc, url


def kill_when_running(proc: subprocess.Popen, url: str, done: threading.Event):
    """SIGKILL the worker as soon as /health shows a trial in flight."""
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/health", timeout=2) as resp:
                if json.loads(resp.read())["running"]:
                    os.kill(proc.pid, signal.SIGKILL)
                    print(f"  >>> SIGKILLed worker pid={proc.pid} mid-trial")
                    done.set()
                    return
        except OSError:
            return
        time.sleep(0.005)


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else "workspace-demo"

    print("Serial baseline ...")
    baseline = make_campaign().run(executor=SerialExecutor())

    print("Distributed run with an injected worker kill ...")
    victim, victim_url = spawn_worker()
    survivor, survivor_url = spawn_worker()
    killed = threading.Event()
    killer = threading.Thread(
        target=kill_when_running, args=(victim, victim_url, killed), daemon=True
    )
    killer.start()
    workspace = Workspace.create(root, "fig5a-smoke")
    try:
        executor = DistributedExecutor(
            [victim_url, survivor_url], backoff_s=0.1
        )
        with warnings.catch_warnings():
            warnings.simplefilter("always")  # show the loss/re-plan warnings
            result_set = make_campaign().run(
                executor=executor, workspace=workspace
            )
    finally:
        for proc in (victim, survivor):
            proc.kill()
            proc.wait()
    killer.join(timeout=120)

    key = lambda record: record.name  # noqa: E731
    identical = sorted(result_set.records, key=key) == sorted(
        baseline.records, key=key
    )
    print(f"\n  worker killed mid-trial : {killed.is_set()}")
    print(f"  records == serial       : {identical}")
    print(f"  workspace               : {workspace.run_dir}")
    for name in ("results.jsonl", "manifest.json", "report.md"):
        print(f"    {name:<15} {os.path.getsize(workspace.run_dir / name)} bytes")
    print("\n--- report.md ---\n")
    print(workspace.report_path.read_text(encoding="utf-8"))
    if not identical:
        print("FAIL: distributed records differ from serial", file=sys.stderr)
        return 1
    if not killed.is_set():
        # The campaign finished before the killer saw a running trial — the
        # records are still verified, but the fault injection didn't land.
        print("WARNING: kill did not land mid-trial (slow machine?)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
