#!/usr/bin/env python3
"""Cross-data-center example: two fabrics joined by a long-delay gateway link.

Reproduces the spirit of the paper's Fig. 9 as a runnable example: two
leaf-spine data centers are connected through gateway switches over a
high-bandwidth link with a large propagation delay; 20% of the FB_Hadoop
flows cross between the data centers.  The per-scheme runs execute as one
campaign (pass a worker count to run them in parallel) and the script reports
tail latency for intra- and inter-DC flows under BFC and DCQCN+Win.

Run with::

    python examples/cross_datacenter.py [tiny|small] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis.fct import summarize_slowdowns
from repro.analysis.report import format_comparison_table
from repro.experiments.scenarios import fig9_campaign


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    schemes = ("BFC", "DCQCN+Win")
    print(f"Cross-DC experiment at scale {scale!r} for {schemes} (workers={workers}) ...")

    result_set = fig9_campaign(scale, schemes=schemes).run(workers=workers)
    rows = {}
    for scheme, result in result_set.experiment_results_by_label().items():
        intra = [r for r in result.flow_stats.records if r.tag == "intra-dc"]
        inter = [r for r in result.flow_stats.records if r.tag == "inter-dc"]
        intra_stats = summarize_slowdowns(intra)
        inter_stats = summarize_slowdowns(inter)
        rows[scheme] = {
            "intra p50": intra_stats["p50"],
            "intra p99": intra_stats["p99"],
            "inter p50": inter_stats["p50"],
            "inter p99": inter_stats["p99"],
        }
        print(
            f"  {scheme:<10s} completed={100 * result.completion_rate():5.1f}%  "
            f"intra p99={intra_stats['p99']:6.2f}  inter p99={inter_stats['p99']:6.2f}"
        )

    print()
    print(
        format_comparison_table(
            "FCT slowdown, intra- vs inter-data-center flows (FB_Hadoop, 65% load)",
            rows,
            columns=["intra p50", "intra p99", "inter p50", "inter p99"],
            fmt="{:.2f}",
        )
    )
    print(
        "The paper's claim: because BFC reacts at the one-hop RTT timescale, "
        "inter-DC flows stay close to ideal and do not disturb intra-DC "
        "traffic, while DCQCN's end-to-end loop spans the long gateway link."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
