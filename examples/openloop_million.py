#!/usr/bin/env python3
"""A million flows in bounded memory: open-loop load + streaming results.

The closed-loop scenario generators materialise every flow up front, so a
run's memory grows with the flow count.  This example drives the cross-DC
fabric (Fig. 9 topology) from an *open-loop* Poisson source modelling a
million independent users — arrivals are drawn lazily, per-flow state is
released on completion, and per-flow records stream to a spill directory
(``repro.results``) instead of accumulating in RAM.  Peak memory is set by
the number of flows *in flight*, not the number offered.

Run with::

    python examples/openloop_million.py                 # 20k flows, a few s
    python examples/openloop_million.py 1000000         # the headline, ~5 min
    python examples/openloop_million.py 50000 BFC       # another scheme

Afterwards the spilled artifacts are self-contained — re-analyze any time
with ``python -m repro.cli analyze <results_dir>``.
"""

from __future__ import annotations

import resource
import sys
import tempfile
import time

from repro.analysis.report import format_series_table
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import openloop_crossdc_config
from repro.results import ResultsAnalyzer


def main() -> int:
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    scheme = sys.argv[2] if len(sys.argv) > 2 else "DCQCN"
    results_dir = tempfile.mkdtemp(prefix="openloop-")

    config = openloop_crossdc_config(
        "tiny",
        scheme,
        seed=11,
        users=1_000_000,
        target_flows=flows,
        target_load=0.3,
        results_dir=results_dir,
    )
    print(
        f"Offering {flows:,} flows from a million-user open-loop source "
        f"({scheme}, cross-DC fabric); records spill to {results_dir} ..."
    )

    started = time.monotonic()
    result = run_experiment(config)
    wall = time.monotonic() - started
    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

    print(
        f"  {result.flows_offered:,} flows offered, "
        f"{100 * result.completion_rate():.1f}% completed, "
        f"p99 slowdown {result.p99_slowdown():.2f}x"
    )
    print(
        f"  {result.events_processed:,} events in {wall:.1f}s "
        f"({result.events_processed / wall:,.0f}/s), peak RSS {peak_mb:.0f}MB"
    )

    # The run object holds only fixed-size aggregates; the per-flow detail
    # lives on disk.  The analyzer exposes the same series API the
    # in-memory path has, reading lazily from the spill directory.
    analyzer = ResultsAnalyzer(result.results_ref)
    print()
    print(
        format_series_table(
            f"p99 FCT slowdown vs flow size ({scheme}, open-loop cross-DC)",
            {scheme: analyzer.slowdown_series()},
        )
    )
    print(f"records on disk: {analyzer.flow_count():,} in {result.results_ref}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
