#!/usr/bin/env python3
"""Full scheme comparison on one workload, including the BFC ablations.

Runs every registered scheme — the paper's headline comparison set plus the
ablation variants (BFC-VFID, BFC-HighPriorityQ, BFC-BufferOpt, SFQ+InfBuffer,
plain PFC) — on the same trace and prints a per-flow-size tail-latency table
together with buffer / pause / collision summaries.

The whole grid is one declarative :class:`repro.campaign.Campaign`; because
every registered scheme appears as one trial, this is also where a
third-party scheme added with ``@register_scheme`` shows up automatically.

Run with::

    python examples/scheme_comparison.py [tiny|small] [google|fb_hadoop|websearch] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_comparison_table, format_series_table
from repro.campaign import Campaign
from repro.experiments.schemes import available_schemes


def main() -> int:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "google"
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    print(
        f"Comparing {len(available_schemes())} schemes on the "
        f"{workload_name!r} workload at scale {scale_name!r} (workers={workers}) ..."
    )

    result_set = (
        Campaign("compare", scale=scale_name, workload=workload_name)
        .schemes(*available_schemes())
        .fixed(load=0.6, incast=0.05)
        .run(workers=workers)
    )
    results = result_set.experiment_results_by_label()
    for record in result_set:
        print(
            f"  {record.label:<18s} p99={record.metrics['p99_slowdown']:7.2f}  "
            f"mean={record.metrics['mean_slowdown']:5.2f}  "
            f"drops={int(record.metrics['dropped_packets']):4d}  "
            f"completed={100 * record.metrics['completion_rate']:5.1f}%"
        )

    print()
    print(
        format_series_table(
            f"p99 FCT slowdown vs flow size ({workload_name}, 60% + 5% incast)",
            {scheme: result.slowdown_series() for scheme, result in results.items()},
        )
    )

    summary_rows = {}
    for record in result_set:
        summary_rows[record.label] = {
            "p99 slowdown": record.metrics["p99_slowdown"],
            "p99 buffer (KB)": record.metrics["p99_buffer_bytes"] / 1e3,
            "PFC pause %": 100 * record.metrics["max_pfc_pause_fraction"],
            "collision %": 100 * record.metrics["collision_fraction"],
            "drops": record.metrics["dropped_packets"],
        }
    print(
        format_comparison_table(
            "Scheme summary",
            summary_rows,
            columns=["p99 slowdown", "p99 buffer (KB)", "PFC pause %", "collision %", "drops"],
            fmt="{:.2f}",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
