#!/usr/bin/env python3
"""Full scheme comparison on one workload, including the BFC ablations.

Runs every registered scheme — the paper's headline comparison set plus the
ablation variants (BFC-VFID, BFC-HighPriorityQ, BFC-BufferOpt, SFQ+InfBuffer,
plain PFC) — on the same trace and prints a per-flow-size tail-latency table
together with buffer / pause / collision summaries.

Run with::

    python examples/scheme_comparison.py [tiny|small] [google|fb_hadoop|websearch]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_comparison_table, format_series_table
from repro.experiments.runner import TrafficSpec, run_experiment
from repro.experiments.schemes import available_schemes
from repro.experiments.scenarios import get_scale, _base_config
from repro.workloads.distributions import WORKLOADS
from repro.workloads.generator import WorkloadSpec


def build_configs(scale_name: str, workload_name: str):
    scale = get_scale(scale_name)
    distribution = WORKLOADS[workload_name]
    traffic = TrafficSpec(
        workload=WorkloadSpec(
            distribution=distribution,
            target_load=0.6,
            duration_ns=scale.duration_ns,
            max_flow_size=scale.max_flow_size,
        ),
        incast_load=0.05,
        incast_fan_in=scale.clamp_fan_in(),
        incast_aggregate_bytes=scale.incast_aggregate_bytes,
    )
    return {
        scheme: _base_config(f"compare/{scheme}", scheme, scale, traffic)
        for scheme in available_schemes()
    }


def main() -> int:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    workload_name = sys.argv[2] if len(sys.argv) > 2 else "google"
    print(
        f"Comparing {len(available_schemes())} schemes on the "
        f"{workload_name!r} workload at scale {scale_name!r} ..."
    )

    results = {}
    for scheme, config in build_configs(scale_name, workload_name).items():
        result = run_experiment(config)
        results[scheme] = result
        print(
            f"  {scheme:<18s} p99={result.p99_slowdown():7.2f}  "
            f"mean={result.mean_slowdown():5.2f}  "
            f"drops={result.dropped_packets:4d}  "
            f"completed={100 * result.completion_rate():5.1f}%"
        )

    print()
    print(
        format_series_table(
            f"p99 FCT slowdown vs flow size ({workload_name}, 60% + 5% incast)",
            {scheme: result.slowdown_series() for scheme, result in results.items()},
        )
    )

    summary_rows = {}
    for scheme, result in results.items():
        pause = result.pause_fraction_by_class()
        summary_rows[scheme] = {
            "p99 slowdown": result.p99_slowdown(),
            "p99 buffer (KB)": result.buffer_sampler.percentile(99) / 1e3,
            "PFC pause %": 100 * max(pause.values()) if pause else 0.0,
            "collision %": 100 * (result.collision_fraction or 0.0),
            "drops": float(result.dropped_packets),
        }
    print(
        format_comparison_table(
            "Scheme summary",
            summary_rows,
            columns=["p99 slowdown", "p99 buffer (KB)", "PFC pause %", "collision %", "drops"],
            fmt="{:.2f}",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
