#!/usr/bin/env python3
"""Incast study: how utilization and buffering behave as fan-in grows.

Reproduces the spirit of the paper's Fig. 8 as a runnable example: every
receiver has a handful of long-lived flows, a periodic N-to-1 incast of fixed
aggregate size disturbs the fabric, and the fan-in N is swept.  The sweep runs
as a campaign (pass a worker count to fan the trials out over processes) and
the script reports, per scheme and fan-in, the mean receiver utilization and
the 99th-percentile switch buffer occupancy.

Run with::

    python examples/incast_study.py [tiny|small] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_comparison_table
from repro.experiments.scenarios import fig8_campaign


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    schemes = ("BFC", "DCQCN+Win")
    print(f"Incast fan-in sweep at scale {scale!r} for {schemes} (workers={workers}) ...")

    # Only the tidy records are read below, so skip retaining (and, with
    # workers > 1, shipping) the full per-trial results.
    result_set = fig8_campaign(scale, schemes=schemes).run(
        workers=workers, keep_results=False
    )
    # Labels are "scheme/fan_in" (the nested config map, flattened).
    utilization = {}
    tail_buffer = {}
    for record in result_set:
        scheme, fan_in = record.label.rsplit("/", 1)
        utilization.setdefault(scheme, {})[fan_in] = record.metrics["mean_utilization"]
        tail_buffer.setdefault(scheme, {})[fan_in] = (
            record.metrics["p99_buffer_bytes"] / 1e6
        )
        print(
            f"  {scheme:<10s} fan-in={fan_in:<4s} "
            f"utilization={record.metrics['mean_utilization']:5.2f}  "
            f"p99 buffer={record.metrics['p99_buffer_bytes'] / 1e3:7.1f} KB  "
            f"drops={int(record.metrics['dropped_packets'])}"
        )

    columns = sorted(next(iter(utilization.values())).keys(), key=int)
    print()
    print(format_comparison_table("Mean receiver utilization vs fan-in", utilization, columns))
    print(format_comparison_table("p99 buffer occupancy (MB) vs fan-in", tail_buffer, columns))
    print(
        "The paper's claim: as fan-in grows, DCQCN+Win loses utilization and "
        "builds deep buffers, while BFC holds utilization near 100% by pausing "
        "incast flows hop by hop, all the way back to their sources."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
