#!/usr/bin/env python3
"""Incast study: how utilization and buffering behave as fan-in grows.

Reproduces the spirit of the paper's Fig. 8 as a runnable example: every
receiver has a handful of long-lived flows, a periodic N-to-1 incast of fixed
aggregate size disturbs the fabric, and the fan-in N is swept.  The script
reports, per scheme and fan-in, the mean receiver utilization and the
99th-percentile switch buffer occupancy.

Run with::

    python examples/incast_study.py [tiny|small]
"""

from __future__ import annotations

import sys

from repro.analysis.report import format_comparison_table
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig8_configs


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    schemes = ("BFC", "DCQCN+Win")
    print(f"Incast fan-in sweep at scale {scale!r} for {schemes} ...")

    configs = fig8_configs(scale, schemes=schemes)
    utilization = {}
    tail_buffer = {}
    for scheme, sweep in configs.items():
        utilization[scheme] = {}
        tail_buffer[scheme] = {}
        for fan_in, config in sweep.items():
            result = run_experiment(config)
            utilization[scheme][str(fan_in)] = result.mean_utilization()
            tail_buffer[scheme][str(fan_in)] = (
                result.buffer_sampler.percentile(99) / 1e6
            )
            print(
                f"  {scheme:<10s} fan-in={fan_in:<4d} "
                f"utilization={result.mean_utilization():5.2f}  "
                f"p99 buffer={result.buffer_sampler.percentile(99) / 1e3:7.1f} KB  "
                f"drops={result.dropped_packets}"
            )

    fan_ins = sorted(next(iter(configs.values())).keys())
    columns = [str(f) for f in fan_ins]
    print()
    print(format_comparison_table("Mean receiver utilization vs fan-in", utilization, columns))
    print(format_comparison_table("p99 buffer occupancy (MB) vs fan-in", tail_buffer, columns))
    print(
        "The paper's claim: as fan-in grows, DCQCN+Win loses utilization and "
        "builds deep buffers, while BFC holds utilization near 100% by pausing "
        "incast flows hop by hop, all the way back to their sources."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
