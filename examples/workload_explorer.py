#!/usr/bin/env python3
"""Workload explorer: the industry flow-size distributions behind the paper.

Prints, for each of the three workloads (Google, FB_Hadoop, WebSearch):

* basic statistics (mean size, share of flows below 1 KB and one BDP),
* the byte-weighted CDF from the paper's Fig. 4,
* the arrival rate needed to hit a target load on a chosen fabric, and a
  sample synthetic trace summary,

and finally shows how the workloads slot into a declarative campaign grid
(expansion only — nothing is simulated).

Run with::

    python examples/workload_explorer.py [load] [num_hosts] [gbps]
"""

from __future__ import annotations

import random
import sys

from repro.analysis.report import render_cdf_table
from repro.campaign import Campaign
from repro.sim import units
from repro.workloads.distributions import WORKLOADS, byte_weighted_cdf
from repro.workloads.generator import WorkloadSpec, generate_workload, load_to_arrival_rate


def main() -> int:
    load = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    num_hosts = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    gbps = float(sys.argv[3]) if len(sys.argv) > 3 else 100.0
    rate_bps = units.gbps(gbps)
    bdp = units.bandwidth_delay_product(rate_bps, units.microseconds(8))

    print(f"Fabric: {num_hosts} hosts at {gbps:g} Gbps, 8 us base RTT (BDP = {bdp/1e3:.0f} KB)")
    print(f"Target load: {load:.0%}\n")

    for name, distribution in WORKLOADS.items():
        mean = distribution.mean()
        print(f"=== {distribution.name} ===")
        print(f"  mean flow size:            {mean / 1e3:8.1f} KB")
        print(f"  flows <= 1 KB:             {100 * distribution.cdf(1_000):8.1f} %")
        print(f"  flows <= 1 BDP ({bdp/1e3:.0f} KB):  {100 * distribution.cdf(bdp):8.1f} %")
        rate = load_to_arrival_rate(load, num_hosts, rate_bps, mean)
        print(f"  arrival rate for {load:.0%} load: {rate:10.0f} flows/s "
              f"({rate / num_hosts:.0f} per host)")

        spec = WorkloadSpec(
            distribution=distribution,
            target_load=load,
            duration_ns=units.milliseconds(1),
        )
        trace = generate_workload(spec, list(range(num_hosts)), rate_bps, seed=1)
        achieved = trace.offered_load(num_hosts, rate_bps, spec.duration_ns)
        print(f"  1 ms synthetic trace:      {len(trace):6d} flows, "
              f"{trace.total_bytes() / 1e6:.1f} MB, offered load {achieved:.2f}")

        sizes = distribution.sample_many(random.Random(0), 5)
        print(f"  example sampled sizes:     {[f'{s}B' for s in sizes]}")
        print()

    print(
        render_cdf_table(
            "Figure 4: byte-weighted CDF of flow sizes",
            {name: byte_weighted_cdf(dist) for name, dist in WORKLOADS.items()},
            value_label="flow size (bytes)",
        )
    )
    print(
        "Note how the Google workload keeps the majority of its *bytes* in "
        "flows that fit within a single BDP — the regime in which the paper "
        "argues end-to-end congestion control runs out of room to react."
    )

    # The same distributions drive the campaign grid: one axis of the sweep.
    campaign = (
        Campaign("explore")
        .schemes("BFC", "DCQCN")
        .sweep(workload=sorted(WORKLOADS), load=[0.6, 0.8])
        .repeats(2)
    )
    trials = campaign.trials()
    print()
    print(
        f"A campaign over these workloads "
        f"({{2 schemes}} x {{{len(WORKLOADS)} workloads}} x {{2 loads}} x {{2 repeats}}) "
        f"expands to {len(trials)} named trials, e.g.:"
    )
    for trial in trials[:4]:
        print(f"  {trial.name}  (seed={trial.seed})")
    print("  ...")
    print("Run the single-workload slices with: repro campaign --schemes BFC DCQCN "
          "--workload fb_hadoop --load 0.6 0.8 --repeats 2 --workers 4")
    print("(the workload axis itself is swept via the Python API, as above)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
