"""Tests for the resource-aware campaign scheduler (repro.campaign.scheduling).

The load-bearing properties:

* a plan never admits more concurrent slots than the core budget, and the
  executed campaign never has more live simulator processes than that
  (asserted with a fork-shared concurrency counter patched into
  ``Simulator.run``);
* planned execution is *measurement-invisible*: records are identical to a
  serial run of the same campaign, and the persisted JSONL is byte-identical
  up to wall-clock times;
* plans are deterministic, pack longest-first, honor measured costs from the
  cache, and degrade clearly when one trial's shards exceed the budget.
"""

import json
import multiprocessing

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CostCache,
    ScheduledExecutor,
    SerialExecutor,
    make_executor,
    plan_trials,
    resolve_cores,
    trial_slots,
)
from repro.campaign.scheduling import detect_cores, estimate_cost

#: Short-but-real simulated duration: a tiny-scale trial at 150 us runs in a
#: fraction of a second while still exercising the full pipeline.
FAST_NS = 150_000


def mixed_campaign(name="mix"):
    """Two unsharded trials plus one sharded (shards=2) trial."""
    return (
        Campaign(name)
        .schemes("BFC", "DCQCN")
        .sweep(shards=[1, 2])
        .fixed(duration_ns=FAST_NS)
    )


def grid_trials(durations, shards=None):
    """Unsharded trials whose relative cost is controlled via duration_ns."""
    campaign = Campaign("grid").schemes("BFC").sweep(duration_ns=list(durations))
    trials = campaign.trials()
    if shards:
        import dataclasses

        trials = [
            dataclasses.replace(t, config=dataclasses.replace(t.config, shards=n))
            for t, n in zip(trials, shards)
        ]
    return trials


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


class TestPlanning:
    def test_cores_resolution(self, monkeypatch):
        assert resolve_cores(3) == 3
        monkeypatch.setenv("REPRO_CORES", "5")
        assert resolve_cores("auto") == 5
        assert resolve_cores(None) == 5
        assert detect_cores() == 5
        monkeypatch.setenv("REPRO_CORES", "zero")
        with pytest.raises(CampaignError, match="REPRO_CORES"):
            detect_cores()
        monkeypatch.delenv("REPRO_CORES")
        assert detect_cores() >= 1
        with pytest.raises(CampaignError):
            resolve_cores(0)
        with pytest.raises(CampaignError):
            resolve_cores("many")

    def test_slots_follow_shards(self):
        trials = grid_trials([FAST_NS, FAST_NS + 1], shards=[1, 4])
        assert [trial_slots(t) for t in trials] == [1, 4]

    def test_estimate_scales_with_topology_and_duration(self):
        small, big = grid_trials([100_000, 400_000])
        assert estimate_cost(big.config) == 4 * estimate_cost(small.config)

    def test_wave_slots_never_exceed_budget(self):
        trials = grid_trials(
            [301, 101, 201, 202, 102, 302], shards=[1, 2, 1, 2, 1, 1]
        )
        for cores in (2, 3, 4):
            plan = plan_trials(trials, cores)
            assert plan.num_trials == len(trials)
            for wave in plan.waves:
                assert plan.wave_slots(wave) <= cores
            assert plan.max_live_processes() <= cores

    def test_lpt_packs_longest_first(self):
        # Costs are proportional to duration; FFD at 2 slots pairs the two
        # largest in wave 1 and the two smallest in wave 2.
        trials = grid_trials([400_000, 100_000, 300_000, 200_000])
        plan = plan_trials(trials, 2)
        names = [[e.name for e in wave] for wave in plan.waves]
        assert names == [
            ["grid/BFC/duration_ns=400000", "grid/BFC/duration_ns=300000"],
            ["grid/BFC/duration_ns=100000", "grid/BFC/duration_ns=200000"],
        ]

    def test_sharded_trial_counts_as_n_slots(self):
        # One shards=2 trial + two unsharded trials at 2 cores: the sharded
        # trial can never share a wave.
        trials = grid_trials([FAST_NS, FAST_NS + 1, FAST_NS + 2], shards=[2, 1, 1])
        plan = plan_trials(trials, 2)
        for wave in plan.waves:
            if any(e.requested_slots == 2 for e in wave):
                assert len(wave) == 1

    def test_budget_of_one_core_serializes_everything(self):
        trials = grid_trials([1, 2, 3, 4])
        plan = plan_trials(trials, 1)
        assert len(plan.waves) == len(trials)
        assert all(len(wave) == 1 for wave in plan.waves)

    def test_shards_beyond_budget_degrade_to_exclusive_wave(self):
        trials = grid_trials([FAST_NS, FAST_NS + 1], shards=[4, 1])
        plan = plan_trials(trials, 2)
        (entry,) = [e for wave in plan.waves for e in wave if e.requested_slots == 4]
        assert entry.oversubscribed
        assert entry.slots == 2  # charged at the whole budget
        (wave,) = [w for w in plan.waves if entry in w]
        assert len(wave) == 1  # nothing else runs beside it
        assert "oversubscribed" in plan.describe()

    def test_plan_is_deterministic(self):
        # Same plan twice, including a mixed sharded/unsharded grid.
        trials = grid_trials(
            [500, 501, 502, 100, 101, 900], shards=[1, 2, 1, 1, 1, 2]
        )
        a = plan_trials(trials, 3)
        b = plan_trials(trials, 3)
        assert a.describe() == b.describe()
        assert [[e.index for e in w] for w in a.waves] == [
            [e.index for e in w] for w in b.waves
        ]

    def test_campaign_plan_skips_resumed_trials(self, tmp_path):
        target = tmp_path / "camp.jsonl"
        campaign = Campaign("camp").schemes("BFC", "DCQCN").fixed(duration_ns=FAST_NS)
        campaign.run(save=target)
        replay = Campaign("camp").schemes("BFC", "DCQCN").fixed(duration_ns=FAST_NS)
        plan = replay.plan(cores=2, resume=target)
        assert plan.num_trials == 0
        assert plan.waves == []


# ---------------------------------------------------------------------------
# The measured-cost cache
# ---------------------------------------------------------------------------


class TestCostCache:
    def test_round_trip(self, tmp_path):
        trials = grid_trials([100_000, 200_000])
        cache = CostCache(tmp_path / "costs.json")
        cache.record(trials[0], 1.25)
        cache.record(trials[1], 0.5)
        cache.save()
        reloaded = CostCache(tmp_path / "costs.json")
        assert len(reloaded) == 2
        assert reloaded.lookup(trials[0]) == 1.25
        assert reloaded.lookup(trials[1]) == 0.5

    def test_identity_includes_params_and_seed(self, tmp_path):
        (a,) = grid_trials([100_000])
        cache = CostCache(tmp_path / "costs.json")
        cache.record(a, 2.0)
        import dataclasses

        reseeded = dataclasses.replace(a, seed=a.seed + 1)
        assert cache.lookup(reseeded) is None

    @pytest.mark.parametrize(
        "content",
        [
            "{not json",                      # unparsable
            '{"costs": []}',                  # wrong structure
            '{"costs": "x"}',                 # wrong structure
            '[1, 2, 3]',                      # wrong top-level type
            '{"costs": {"k": "fast"}}',       # non-numeric value dropped
        ],
    )
    def test_corrupt_cache_degrades_to_estimates(self, tmp_path, content):
        path = tmp_path / "costs.json"
        path.write_text(content, encoding="utf-8")
        cache = CostCache(path)
        assert len(cache) == 0
        (a,) = grid_trials([100_000])
        assert cache.lookup(a) is None

    def test_measured_costs_override_estimate_order(self, tmp_path):
        # By estimate, the 400k-ns trial is the longest.  Measurements say
        # the 100k one actually dominates; LPT must follow the measurements.
        trials = grid_trials([400_000, 100_000, 200_000])
        cache = CostCache(tmp_path / "costs.json")
        cache.record(trials[0], 0.1)
        cache.record(trials[1], 9.0)
        cache.record(trials[2], 1.0)
        plan = plan_trials(trials, 1, cache)
        assert plan.cost_unit == "s"
        assert [wave[0].name for wave in plan.waves] == [
            trials[1].name, trials[2].name, trials[0].name,
        ]
        assert all(wave[0].measured for wave in plan.waves)

    def test_unmeasured_estimates_are_calibrated_into_seconds(self, tmp_path):
        trials = grid_trials([100_000, 200_000])
        cache = CostCache(tmp_path / "costs.json")
        cache.record(trials[0], 2.0)  # measured/estimate ratio known
        plan = plan_trials(trials, 2, cache)
        by_name = {e.name: e for wave in plan.waves for e in wave}
        measured = by_name[trials[0].name]
        estimated = by_name[trials[1].name]
        assert measured.measured and not estimated.measured
        # The 200k trial costs 2x the measured 100k trial after calibration.
        assert estimated.cost == pytest.approx(2 * measured.cost)

    def test_run_with_cores_and_save_populates_cache(self, tmp_path):
        target = tmp_path / "camp.jsonl"
        campaign = Campaign("camp").schemes("BFC").fixed(duration_ns=FAST_NS)
        campaign.run(cores=1, save=target)
        cache = CostCache.for_results_file(target)
        assert cache.path == tmp_path / "camp.costs.json"
        assert len(cache) == 1
        (trial,) = Campaign("camp").schemes("BFC").fixed(duration_ns=FAST_NS).trials()
        assert cache.lookup(trial) is not None
        assert cache.lookup(trial) > 0


# ---------------------------------------------------------------------------
# Executor resolution
# ---------------------------------------------------------------------------


class TestExecutorResolution:
    def test_cores_selects_scheduled_executor(self):
        executor = make_executor(cores=2)
        assert isinstance(executor, ScheduledExecutor)
        assert executor.cores == 2
        assert executor.workers == 2

    def test_workers_and_cores_conflict(self):
        with pytest.raises(CampaignError, match="not both"):
            make_executor(workers=2, cores=2)

    def test_executor_and_cores_conflict(self):
        with pytest.raises(CampaignError, match="not both"):
            make_executor(executor=SerialExecutor(), cores=2)

    def test_campaign_run_rejects_workers_plus_cores(self):
        campaign = Campaign("c").schemes("BFC")
        with pytest.raises(CampaignError, match="not both"):
            campaign.run(workers=2, cores=2)

    def test_batches_follow_plan_waves(self):
        trials = grid_trials([400_000, 100_000, 300_000, 200_000])
        executor = ScheduledExecutor(cores=2)
        batches = executor.batches(trials)
        assert [[t.name for t in batch] for batch in batches] == [
            ["grid/BFC/duration_ns=400000", "grid/BFC/duration_ns=300000"],
            ["grid/BFC/duration_ns=100000", "grid/BFC/duration_ns=200000"],
        ]
        # Default executors keep the historical chunks-of-workers batching.
        serial_batches = SerialExecutor().batches(trials)
        assert [len(b) for b in serial_batches] == [1, 1, 1, 1]

    def test_run_executes_handed_back_batches_without_replanning(self, monkeypatch):
        # Campaign.run feeds each batches() list back into run(); the
        # executor must execute the remembered wave rather than re-plan it
        # (planning twice would also double cost-cache calibration work).
        import repro.campaign.scheduling as scheduling

        trials = grid_trials([200_000, 100_000])
        executor = ScheduledExecutor(cores=2, records_only=True)
        batches = executor.batches(trials)
        calls = []
        original = scheduling.plan_trials
        monkeypatch.setattr(
            scheduling, "plan_trials",
            lambda *a, **k: calls.append(1) or original(*a, **k),
        )
        for batch in batches:
            pairs = executor.run(batch)
            assert [rec.name for rec, _ in pairs] == [t.name for t in batch]
        assert calls == []  # no re-planning of handed-back batches
        # A fresh list (not handed out by batches) still plans normally.
        executor.run(list(trials))
        assert calls == [1]

    def test_plan_to_dict_round_trips_through_json(self):
        trials = grid_trials([200_000, 100_000], shards=[2, 1])
        plan = plan_trials(trials, 2)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["cores"] == 2
        assert payload["num_trials"] == 2
        names = [t["name"] for w in payload["waves"] for t in w["trials"]]
        assert sorted(names) == sorted(t.name for t in trials)
        sharded = [
            t for w in payload["waves"] for t in w["trials"] if t["slots"] == 2
        ]
        assert len(sharded) == 1 and not sharded[0]["oversubscribed"]


# ---------------------------------------------------------------------------
# Execution: identity with serial runs, and the live-process cap
# ---------------------------------------------------------------------------


def _canonical_records(result_set):
    """Record dicts with wall-clock removed: the byte-identity currency."""
    rows = []
    for record in sorted(result_set, key=lambda r: r.name):
        payload = record.to_dict()
        payload.pop("wall_seconds")
        rows.append(json.dumps(payload, sort_keys=True, default=str))
    return rows


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the concurrency probe relies on fork-inherited shared memory",
)
class TestScheduledExecution:
    def test_mixed_campaign_caps_live_processes_and_matches_serial(
        self, tmp_path, monkeypatch
    ):
        """The acceptance property: a campaign mixing sharded (N=2) and
        unsharded trials under cores=2 never has more than 2 live simulator
        processes, and its records equal the serial run's byte for byte.
        """
        from repro.sim.engine import Simulator

        ctx = multiprocessing.get_context("fork")
        lock = ctx.Lock()
        current = ctx.Value("i", 0, lock=False)
        peak = ctx.Value("i", 0, lock=False)
        original_run = Simulator.run

        def counting_run(self, *args, **kwargs):
            with lock:
                current.value += 1
                if current.value > peak.value:
                    peak.value = current.value
            try:
                return original_run(self, *args, **kwargs)
            finally:
                with lock:
                    current.value -= 1

        monkeypatch.setattr(Simulator, "run", counting_run)
        scheduled = mixed_campaign().run(
            cores=2, save=tmp_path / "scheduled.jsonl"
        )
        monkeypatch.setattr(Simulator, "run", original_run)
        assert peak.value >= 2  # the probe actually saw concurrency
        assert peak.value <= 2  # ... and never more than the budget

        serial = mixed_campaign().run(
            executor=SerialExecutor(), save=tmp_path / "serial.jsonl"
        )
        assert _canonical_records(scheduled) == _canonical_records(serial)
        # The persisted JSONL files are line-for-line identical too, wall
        # clock aside: planning reorders when trials run, not what they
        # compute nor how the results are written.
        def canonical_lines(path):
            lines = []
            for line in path.read_text(encoding="utf-8").splitlines():
                payload = json.loads(line)
                payload.pop("wall_seconds", None)
                lines.append(json.dumps(payload, sort_keys=True))
            return lines

        assert canonical_lines(tmp_path / "scheduled.jsonl") == canonical_lines(
            tmp_path / "serial.jsonl"
        )

    def test_sharded_coordinator_reports_its_slot_budget(self):
        result_set = mixed_campaign("handshake").run(cores=2)
        sharded = result_set.experiment_result("handshake/DCQCN/shards=2")
        assert sharded.shard_stats["slot_budget"] == 2
        assert sharded.shard_stats["oversubscribed"] is False
        unsharded = result_set.experiment_result("handshake/DCQCN/shards=1")
        assert unsharded.shard_stats is None

    def test_oversubscribed_trial_still_runs_and_says_so(self):
        from repro.experiments.runner import run_experiment

        campaign = Campaign("tight").schemes("BFC").fixed(
            duration_ns=FAST_NS, shards=2
        )
        (trial,) = campaign.trials()
        result = run_experiment(trial.config, slot_budget=1)
        assert result.shard_stats["slot_budget"] == 1
        assert result.shard_stats["oversubscribed"] is True

    def test_records_only_mode_keeps_results_out(self):
        result_set = mixed_campaign("lean").run(cores=2, keep_results=False)
        assert len(result_set) == 4
        assert not result_set.has_experiment_results()

    def test_resume_after_interrupt_shaped_file(self, tmp_path):
        # A file holding only the first wave's records (as an interrupted
        # run would leave) resumes to the full campaign.
        target = tmp_path / "partial.jsonl"
        full = mixed_campaign("resume").run(cores=2, save=target)
        lines = target.read_text(encoding="utf-8").splitlines()
        target.write_text("\n".join(lines[:3]) + "\n", encoding="utf-8")
        resumed = mixed_campaign("resume").run(cores=2, resume=target)
        assert resumed == full
        assert len(resumed) == 4
