"""Unit tests for the HPCC window-control algorithm."""

import pytest

from repro.congestion.hpcc import HpccConfig, HpccControl
from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.host import SenderFlowState
from repro.sim.packet import FlowKey, IntHop, Packet, PacketKind


LINE_RATE = units.gbps(10)
BASE_RTT = 8_000


def make_fstate() -> SenderFlowState:
    return SenderFlowState(Flow(src=0, dst=1, size=1_000_000, start_ns=0), mtu=1000)


def make_ack(ack_seq: int, int_stack) -> Packet:
    return Packet(
        kind=PacketKind.ACK,
        flow_id=1,
        key=FlowKey(src=1, dst=0, src_port=2, dst_port=1),
        size=64,
        ack_seq=ack_seq,
        int_stack=list(int_stack),
    )


def hop(ts_ns: int, tx_bytes: int, queue_bytes: int, rate=LINE_RATE, node="sw0") -> IntHop:
    return IntHop(node=node, timestamp_ns=ts_ns, tx_bytes=tx_bytes, queue_bytes=queue_bytes, rate_bps=rate)


def control(eta=0.95, max_stage=5) -> HpccControl:
    return HpccControl(LINE_RATE, HpccConfig(eta=eta, max_stage=max_stage, base_rtt_ns=BASE_RTT))


def feed(cc, fstate, acks):
    """Feed a sequence of (ack_seq, int_stack) pairs through the control."""
    for ack_seq, stack in acks:
        fstate.next_seq = max(fstate.next_seq, ack_seq)
        cc.on_ack(fstate, make_ack(ack_seq, stack), ack_seq * 1_000)


class TestConfig:
    def test_defaults_valid(self):
        HpccConfig().validate()

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            HpccConfig(eta=0).validate()
        with pytest.raises(ValueError):
            HpccConfig(eta=1.5).validate()

    def test_invalid_stage_and_rtt(self):
        with pytest.raises(ValueError):
            HpccConfig(max_stage=0).validate()
        with pytest.raises(ValueError):
            HpccConfig(base_rtt_ns=0).validate()


class TestInitialWindow:
    def test_initial_window_is_one_bdp(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        assert cc.window_bytes(fstate) == pytest.approx(bdp, rel=0.01)

    def test_initial_rate_is_line_rate(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        assert cc.rate_bps(fstate) == pytest.approx(LINE_RATE, rel=0.01)


class TestWindowAdaptation:
    def test_congested_link_shrinks_window(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        w0 = cc.current_window(fstate)
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        # Full utilisation and a standing queue of 3 BDP on hop sw0.
        acks = []
        tx = 0
        for i in range(1, 12):
            tx += 10_000  # 10 KB per ms -> way above line rate? keep consistent with dt
            acks.append((i, [hop(ts_ns=i * 1_000, tx_bytes=int(i * 1_250), queue_bytes=int(3 * bdp))]))
        feed(cc, fstate, acks)
        assert cc.current_window(fstate) < w0

    def test_idle_link_grows_window_additively(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        # Shrink first so there is room to grow.
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        feed(cc, fstate, [(i, [hop(i * 1_000, int(i * 1_250), int(3 * bdp))]) for i in range(1, 8)])
        shrunk = cc.current_window(fstate)
        # Now the link is idle (no queue, negligible throughput).
        feed(cc, fstate, [(i, [hop(i * 1_000, 0, 0)]) for i in range(10, 30)])
        assert cc.current_window(fstate) > shrunk

    def test_window_never_below_minimum(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        feed(
            cc,
            fstate,
            [(i, [hop(i * 1_000, int(i * 1_250), int(50 * bdp))]) for i in range(1, 50)],
        )
        assert cc.window_bytes(fstate) >= cc.config.min_window_bytes

    def test_window_never_above_initial(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        feed(cc, fstate, [(i, [hop(i * 1_000, 0, 0)]) for i in range(1, 60)])
        assert cc.current_window(fstate) <= cc.initial_window + 1

    def test_rate_tracks_window(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        feed(cc, fstate, [(i, [hop(i * 1_000, int(i * 1_250), int(4 * bdp))]) for i in range(1, 12)])
        expected = cc.current_window(fstate) * 8 * 1e9 / BASE_RTT
        assert cc.rate_bps(fstate) == pytest.approx(min(LINE_RATE, expected), rel=0.01)

    def test_acks_without_int_are_ignored(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        before = cc.current_window(fstate)
        cc.on_ack(fstate, make_ack(1, []), 1_000)
        assert cc.current_window(fstate) == before

    def test_max_utilisation_hop_dominates(self):
        cc = control()
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        bdp = LINE_RATE * BASE_RTT / (8 * 1e9)
        # Two hops: one idle, one congested; the congested one should drive
        # the window down despite the idle hop.
        acks = []
        for i in range(1, 10):
            stack = [
                hop(i * 1_000, 0, 0, node="idle"),
                hop(i * 1_000, int(i * 1_250), int(4 * bdp), node="busy"),
            ]
            acks.append((i, stack))
        feed(cc, fstate, acks)
        assert cc.current_window(fstate) < cc.initial_window
