"""Unit tests for interfaces, egress ports, link wiring and PFC handling."""

import pytest

from repro.sim import units
from repro.sim.disciplines import FifoDiscipline
from repro.sim.node import Node
from repro.sim.packet import FlowKey, Packet, PacketKind, PFC_FRAME_SIZE
from repro.sim.port import connect


class RecordingNode(Node):
    """A node that records everything it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, iface_index):
        self.received.append((self.sim.now, packet, iface_index))


def make_data_packet(flow_id=1, size=1000):
    return Packet(
        kind=PacketKind.DATA,
        flow_id=flow_id,
        key=FlowKey(src=1, dst=2, src_port=flow_id, dst_port=4791),
        size=size,
        flow_size=size,
    )


def make_pfc(pause: bool) -> Packet:
    return Packet(
        kind=PacketKind.PFC,
        flow_id=0,
        key=FlowKey(src=-1, dst=-1, src_port=0, dst_port=0),
        size=PFC_FRAME_SIZE,
        pause=pause,
    )


@pytest.fixture
def pair(sim):
    a = RecordingNode(sim, "a")
    b = RecordingNode(sim, "b")
    iface_a, iface_b = connect(a, b, rate_bps=units.gbps(10), delay_ns=1_000)
    iface_a.tx.discipline = FifoDiscipline()
    iface_b.tx.discipline = FifoDiscipline()
    return a, b, iface_a, iface_b


class TestWiring:
    def test_connect_creates_peered_interfaces(self, pair):
        a, b, iface_a, iface_b = pair
        assert iface_a.peer_node is b
        assert iface_b.peer_node is a
        assert iface_a.tx.connected and iface_b.tx.connected

    def test_interface_to(self, pair):
        a, b, iface_a, iface_b = pair
        assert a.interface_to(b) is iface_a
        assert b.interface_to(a) is iface_b

    def test_interface_to_unknown_node(self, sim, pair):
        a, _, _, _ = pair
        stranger = RecordingNode(sim, "stranger")
        assert a.interface_to(stranger) is None

    def test_link_parameter_validation(self, sim):
        a = RecordingNode(sim, "a")
        with pytest.raises(ValueError):
            a.add_interface(rate_bps=0, delay_ns=100)
        with pytest.raises(ValueError):
            a.add_interface(rate_bps=units.gbps(1), delay_ns=-5)


class TestTransmission:
    def test_data_packet_delivered_after_tx_plus_propagation(self, sim, pair):
        a, b, iface_a, _ = pair
        packet = make_data_packet(size=1_250)  # 1 us at 10 Gbps
        iface_a.tx.discipline.enqueue(packet, 0)
        iface_a.tx.notify()
        sim.run_until_idle()
        assert len(b.received) == 1
        arrival, received, iface_index = b.received[0]
        assert received is packet
        assert arrival == 1_000 + 1_000  # serialization + propagation
        assert iface_index == 0

    def test_packets_serialize_back_to_back(self, sim, pair):
        a, b, iface_a, _ = pair
        for i in range(3):
            iface_a.tx.discipline.enqueue(make_data_packet(flow_id=i, size=1_250), 0)
        iface_a.tx.notify()
        sim.run_until_idle()
        arrivals = [t for t, _, _ in b.received]
        assert arrivals == [2_000, 3_000, 4_000]

    def test_control_packets_preempt_data(self, sim, pair):
        a, b, iface_a, _ = pair
        iface_a.tx.discipline.enqueue(make_data_packet(flow_id=1, size=1_250), 0)
        iface_a.tx.discipline.enqueue(make_data_packet(flow_id=2, size=1_250), 0)
        ack = Packet(
            kind=PacketKind.ACK,
            flow_id=9,
            key=FlowKey(src=2, dst=1, src_port=1, dst_port=1),
            size=64,
        )
        iface_a.tx.notify()
        sim.schedule(100, iface_a.tx.send_control, ack)
        sim.run_until_idle()
        kinds = [p.kind for _, p, _ in b.received]
        # The ACK was queued while the first data packet was on the wire, so it
        # goes out before the second data packet.
        assert kinds == [PacketKind.DATA, PacketKind.ACK, PacketKind.DATA]

    def test_byte_meter_counts_data_and_control(self, sim, pair):
        a, b, iface_a, _ = pair
        iface_a.tx.discipline.enqueue(make_data_packet(size=1_000), 0)
        iface_a.tx.notify()
        iface_a.tx.send_control(
            Packet(kind=PacketKind.ACK, flow_id=1, key=FlowKey(1, 2, 3, 4), size=64)
        )
        sim.run_until_idle()
        assert iface_a.tx.bytes.data_bytes == 1_000
        assert iface_a.tx.bytes.control_bytes == 64

    @pytest.mark.parametrize("rate_bps", [1.0, 123_456.0, 2.5e9, 7.3e9, 400e9])
    @pytest.mark.parametrize("size", [1, 64, 999, 1048, 9000])
    def test_serialization_delay_matches_units_formula(self, sim, rate_bps, size):
        """The tx-time arithmetic inlined in EgressPort.kick must track
        units.transmission_time_ns exactly (same rounding, same >=1 clamp) —
        any drift between the two changes event timing and breaks the
        golden-records guarantee."""
        a = RecordingNode(sim, "a")
        b = RecordingNode(sim, "b")
        iface_a, _ = connect(a, b, rate_bps=rate_bps, delay_ns=0)
        iface_a.tx.discipline = FifoDiscipline()
        iface_a.tx.discipline.enqueue(make_data_packet(size=size), 0)
        iface_a.tx.notify()
        sim.run_until_idle()
        (received_at, _, _), = b.received
        assert received_at == units.transmission_time_ns(size, rate_bps)

    def test_on_data_dequeue_hook_runs(self, sim, pair):
        a, b, iface_a, _ = pair
        seen = []
        iface_a.tx.on_data_dequeue = lambda pkt, iface_index: seen.append(pkt)
        packet = make_data_packet()
        iface_a.tx.discipline.enqueue(packet, 0)
        iface_a.tx.notify()
        sim.run_until_idle()
        assert seen == [packet]

    def test_utilization_measurement(self, sim, pair):
        a, b, iface_a, _ = pair
        # 2500 bytes over 2 us at 10 Gbps = 100% utilisation.
        iface_a.tx.discipline.enqueue(make_data_packet(size=1_250), 0)
        iface_a.tx.discipline.enqueue(make_data_packet(flow_id=2, size=1_250), 0)
        iface_a.tx.notify()
        sim.run_until_idle()
        assert iface_a.tx.utilization(units.microseconds(2)) == pytest.approx(1.0, rel=0.01)


class TestPfcAtPortLevel:
    def test_pfc_frame_pauses_data_class(self, sim, pair):
        a, b, iface_a, iface_b = pair
        # b tells a to pause: the frame arrives at a on iface 0 and pauses a's tx.
        iface_a.tx.discipline.enqueue(make_data_packet(), 0)
        a.receive(make_pfc(pause=True), 0)
        iface_a.tx.notify()
        sim.run(until=10_000)
        assert b.received == []
        a.receive(make_pfc(pause=False), 0)
        sim.run_until_idle()
        assert len(b.received) == 1

    def test_control_traffic_unaffected_by_pfc(self, sim, pair):
        a, b, iface_a, _ = pair
        a.receive(make_pfc(pause=True), 0)
        iface_a.tx.send_control(
            Packet(kind=PacketKind.ACK, flow_id=1, key=FlowKey(1, 2, 3, 4), size=64)
        )
        sim.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0][1].kind is PacketKind.ACK

    def test_pause_meter_tracks_pfc_time(self, sim, pair):
        a, _, iface_a, _ = pair
        a.receive(make_pfc(pause=True), 0)
        sim.schedule(500, a.receive, make_pfc(pause=False), 0)
        sim.run_until_idle()
        assert iface_a.tx.pfc_meter.paused_time(sim.now) == 500

    def test_resume_kicks_transmission(self, sim, pair):
        a, b, iface_a, _ = pair
        iface_a.tx.discipline.enqueue(make_data_packet(size=1_250), 0)
        a.receive(make_pfc(pause=True), 0)
        sim.schedule(5_000, a.receive, make_pfc(pause=False), 0)
        sim.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0][0] == 5_000 + 1_000 + 1_000
