"""Edge cases of the time-warp shard runtime (repro.shard.speculative).

The determinism proof lives in ``tests/test_shard_determinism.py``; this
file attacks the mechanisms it relies on at their seams:

* checkpoints vs the engine's *lazy* cancellation (a handle cancelled
  after a capture must be alive again after rollback, and one cancelled
  before must stay dead);
* checkpoints vs calendar-queue *retuning* (bucket geometry is a pure
  speed knob, so capturing before or after a forced retune must replay
  the same event sequence);
* back-to-back rollbacks to the same checkpoint (restore must hand out
  independent worlds);
* rollback while a NIC packet train is mid-commitment
  (``nic_train_packets > 1``);
* a randomized storm cross-checking speculative against conservative
  records on freshly drawn scenarios;
* the :class:`SyncPolicy` resolution table, the snapshot store's pruning
  invariants, the deepcopy fallback, and the campaign cost model's
  speculation surcharge.
"""

import functools
import random
import warnings
from dataclasses import replace

import pytest

from repro.campaign import estimate_cost, sync_cost_factor
from repro.campaign.scheduling import SPECULATIVE_COST_FACTOR
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig5a_configs
from repro.shard import (
    ShardError,
    SnapshotContext,
    SnapshotStore,
    SyncPolicy,
    WorldSnapshot,
)
from repro.shard.speculative import ADAPTIVE_WINDOW_NS, DEFAULT_MAX_LEAP
from repro.sim import units
from repro.sim.engine import PureSimulator
from repro.sim.host import HostConfig

from tests.golden_kernel import golden_configs
from tests.test_shard_determinism import (
    assert_shard_stats_schema,
    shard_canonical,
)


# ---------------------------------------------------------------------------
# A minimal checkpointable world
# ---------------------------------------------------------------------------


class _MiniWorld:
    """Tiny stand-in for ``_ShardWorld``: a simulator plus an event log."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def fire(self, tag):
        self.log.append((self.sim.now, tag))


class _Chain:
    """Self-rescheduling ticker: keeps the calendar busy during replay."""

    def __init__(self, world, step_ns, count):
        self.world = world
        self.step_ns = step_ns
        self.remaining = count

    def tick(self):
        self.world.log.append((self.world.sim.now, "chain"))
        self.remaining -= 1
        if self.remaining > 0:
            self.world.sim.schedule(self.step_ns, self.tick)


def _mini_world(seed=1):
    sim = PureSimulator(seed=seed)
    world = _MiniWorld(sim)
    return world


@pytest.fixture
def context():
    ctx = SnapshotContext([])
    yield ctx
    ctx.close()


# ---------------------------------------------------------------------------
# Cancellation across a snapshot boundary
# ---------------------------------------------------------------------------


class TestCancellationAcrossSnapshot:
    def test_cancel_after_capture_is_rolled_back(self, context):
        world = _mini_world()
        victim = world.sim.schedule(500, world.fire, "victim")
        world.sim.schedule(100, world.fire, "early")
        world.victim = victim

        snap = context.capture(world, -1, 0, {})
        assert snap.backend == "pickle"

        # The speculative timeline cancels the event...
        victim.cancel()
        world.sim.run(until=1_000)
        assert [tag for _, tag in world.log] == ["early"]

        # ... but the rollback world never saw the cancel: the handle in
        # the restored graph is an independent copy, so the event fires.
        restored = context.restore(snap)
        restored.sim.run(until=1_000)
        assert restored.log == [(100, "early"), (500, "victim")]
        assert not restored.victim.cancelled

    def test_cancel_before_capture_stays_dead(self, context):
        world = _mini_world()
        victim = world.sim.schedule(500, world.fire, "victim")
        world.sim.schedule(100, world.fire, "early")
        victim.cancel()

        snap = context.capture(world, -1, 0, {})
        restored = context.restore(snap)
        restored.sim.run(until=1_000)
        assert restored.log == [(100, "early")]

    def test_cancelling_restored_handle_does_not_leak_to_live_world(
        self, context
    ):
        world = _mini_world()
        world.victim = world.sim.schedule(500, world.fire, "victim")
        snap = context.capture(world, -1, 0, {})

        restored = context.restore(snap)
        restored.victim.cancel()
        restored.sim.run(until=1_000)
        assert restored.log == []

        world.sim.run(until=1_000)
        assert world.log == [(500, "victim")]


# ---------------------------------------------------------------------------
# Calendar-queue retune between snapshot and rollback
# ---------------------------------------------------------------------------


class TestRetuneAcrossSnapshot:
    def _seeded_world(self):
        world = _mini_world()
        rng = random.Random(42)
        for i in range(64):
            world.sim.schedule(rng.randrange(1, 50_000), world.fire, i)
        world.chain = _Chain(world, step_ns=700, count=40)
        world.sim.schedule(1, world.chain.tick)
        return world

    def test_retune_after_capture_does_not_taint_rollback(self, context):
        world = self._seeded_world()
        world.sim.run(until=5_000)
        snap = context.capture(world, world.sim.now, 0, {})

        # Live world retunes its calendar geometry mid-speculation, then
        # runs to the end: the reference outcome.
        world.sim._retune(force=True)
        world.sim.run(until=60_000)
        reference = list(world.log)

        # Rolling back discards the retuned calendar along with the rest
        # of the abandoned timeline; replay lands on the same sequence.
        restored = context.restore(snap)
        restored.sim.run(until=60_000)
        assert restored.log == reference

    def test_capture_of_retuned_calendar_replays_identically(self, context):
        world = self._seeded_world()
        world.sim.run(until=5_000)
        world.sim._retune(force=True)
        snap = context.capture(world, world.sim.now, 0, {})

        world.sim.run(until=60_000)
        reference = list(world.log)

        restored = context.restore(snap)
        restored.sim.run(until=60_000)
        assert restored.log == reference


# ---------------------------------------------------------------------------
# Back-to-back rollbacks
# ---------------------------------------------------------------------------


class TestBackToBackRollbacks:
    def test_restoring_twice_yields_independent_worlds(self, context):
        world = self._world_with_chain(context)
        snap = context.capture(world, -1, 0, {})

        first = context.restore(snap)
        first.sim.run(until=10_000)
        # Second rollback to the *same* checkpoint: the first restored
        # world already consumed its timeline, the second starts fresh.
        second = context.restore(snap)
        assert second.log == []
        second.sim.run(until=10_000)
        assert second.log == first.log

    def _world_with_chain(self, context):
        world = _mini_world()
        world.chain = _Chain(world, step_ns=500, count=12)
        world.sim.schedule(1, world.chain.tick)
        return world

    def test_store_survives_rollback_then_immediate_rollback(self):
        # rollback_to truncates abandoned snapshots; a second straggler
        # at an even earlier time must still find an anchor.
        store = SnapshotStore()
        for t in (-1, 100, 200, 300):
            store.add(WorldSnapshot(t, 0, {}, object()))
        target = store.rollback_to(250)
        assert target.time_ns == 200
        assert len(store) == 3  # 300 discarded with its timeline
        target = store.rollback_to(150)
        assert target.time_ns == 100
        assert len(store) == 2
        # The pre-run snapshot is the anchor of last resort.
        assert store.rollback_to(0).time_ns == -1

    def test_prune_always_leaves_an_anchor(self):
        store = SnapshotStore()
        for t in (-1, 100, 200, 300):
            store.add(WorldSnapshot(t, 0, {}, object()))
        store.prune(250)
        # Newest-strictly-before-GVT (200) plus everything later survives.
        assert store.latest_before(250).time_ns == 200
        assert len(store) == 2
        store.prune(10_000)
        assert len(store) == 1
        assert store.latest_before(10_000).time_ns == 300


# ---------------------------------------------------------------------------
# Rollback mid-train
# ---------------------------------------------------------------------------


class TestRollbackMidTrain:
    def test_speculative_trains_match_serial_trains(self, monkeypatch):
        """Rolling back while NIC packet trains are mid-commitment.

        With ``nic_train_packets=8`` a snapshot can land between a train's
        commitment and its unwind; the records must still match a serial
        run with the same train setting (shard workers fork from this
        process, so the patched HostConfig reaches them).
        """
        import repro.experiments.schemes as schemes

        monkeypatch.setattr(
            schemes,
            "HostConfig",
            functools.partial(HostConfig, nic_train_packets=8),
        )
        config = golden_configs()["BFC"]
        serial = shard_canonical(run_experiment(config))
        result = run_experiment(
            replace(config, shards=2, shard_sync="speculative")
        )
        assert shard_canonical(result) == serial
        stats = result.shard_stats
        assert_shard_stats_schema(stats)
        # The run genuinely rolled back with trains in flight.
        assert stats["speculation"]["rollbacks"] > 0


# ---------------------------------------------------------------------------
# Randomized storm
# ---------------------------------------------------------------------------


class TestRandomizedStorm:
    @pytest.mark.parametrize("draw", range(3))
    def test_fresh_scenarios_agree_across_sync_modes(self, draw):
        """Speculative == conservative on scenarios no fixture ever saw."""
        rng = random.Random(0xBFC0 + draw)
        scheme = rng.choice(["BFC", "DCQCN", "HPCC"])
        seed = rng.randrange(1, 1_000)
        shards = rng.choice([2, 4])
        config = fig5a_configs("tiny", schemes=(scheme,), seed=seed)[scheme]
        config = replace(
            config,
            duration_ns=units.microseconds(120),
            drain_ns=units.microseconds(60),
            shards=shards,
        )
        conservative = run_experiment(
            replace(config, shard_sync="conservative")
        )
        speculative = run_experiment(
            replace(config, shard_sync="speculative")
        )
        assert shard_canonical(speculative) == shard_canonical(conservative), (
            f"draw {draw}: {scheme} seed={seed} shards={shards} diverged"
        )
        assert speculative.shard_stats["speculation"]["snapshots"] > 0


# ---------------------------------------------------------------------------
# SyncPolicy resolution
# ---------------------------------------------------------------------------


class TestSyncPolicy:
    def test_conservative_requested(self):
        policy = SyncPolicy.resolve("conservative", 1_000)
        assert policy.mode == "conservative"
        assert policy.reason == "requested"

    def test_speculative_requested_even_on_wide_window(self):
        policy = SyncPolicy.resolve("speculative", 20_000)
        assert policy.mode == "speculative"
        assert policy.max_leap == DEFAULT_MAX_LEAP

    def test_adaptive_thresholds(self):
        assert SyncPolicy.resolve("adaptive", 1_000).mode == "speculative"
        assert SyncPolicy.resolve(
            "adaptive", ADAPTIVE_WINDOW_NS
        ).mode == "conservative"
        assert SyncPolicy.resolve("adaptive", None).mode == "conservative"

    def test_unknown_mode_raises(self):
        with pytest.raises(ShardError, match="shard_sync"):
            SyncPolicy.resolve("clairvoyant", 1_000)

    def test_accel_backend_falls_back_with_warning(self, monkeypatch):
        import repro.sim.engine as engine

        monkeypatch.setattr(engine, "ENGINE_BACKEND", "accel")
        with pytest.warns(RuntimeWarning, match="pure engine backend"):
            policy = SyncPolicy.resolve("speculative", 1_000)
        assert policy.mode == "conservative"
        assert policy.reason == "accel engine backend"


# ---------------------------------------------------------------------------
# Deepcopy fallback
# ---------------------------------------------------------------------------


class _Unpicklable:
    """Defeats pickle but cooperates with deepcopy."""

    def __reduce_ex__(self, protocol):
        raise TypeError("deliberately unpicklable")

    def __deepcopy__(self, memo):
        return _Unpicklable()


class TestDeepcopyFallback:
    def test_unpicklable_world_degrades_to_deepcopy(self, context):
        world = _mini_world()
        world.exotic = _Unpicklable()
        world.sim.schedule(100, world.fire, "tick")

        with pytest.warns(RuntimeWarning, match="not picklable"):
            snap = context.capture(world, -1, 0, {})
        assert snap.backend == "deepcopy"
        assert context.backend == "deepcopy"

        restored = context.restore(snap)
        restored.sim.run(until=1_000)
        assert restored.log == [(100, "tick")]

        # The fallback is sticky: later captures go straight to deepcopy
        # without warning again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = context.capture(world, world.sim.now, 0, {})
        assert again.backend == "deepcopy"


# ---------------------------------------------------------------------------
# Campaign cost model
# ---------------------------------------------------------------------------


class TestSpeculationCostModel:
    def _config(self, **overrides):
        config = fig5a_configs("tiny", schemes=("BFC",))["BFC"]
        return replace(config, **overrides) if overrides else config

    def test_unsharded_and_conservative_pay_no_surcharge(self):
        assert sync_cost_factor(self._config()) == 1.0
        assert sync_cost_factor(
            self._config(shards=1, shard_sync="speculative")
        ) == 1.0
        assert sync_cost_factor(
            self._config(shards=2, shard_sync="conservative")
        ) == 1.0

    def test_speculative_pays_the_rollback_surcharge(self):
        config = self._config(shards=2, shard_sync="speculative")
        assert sync_cost_factor(config) == SPECULATIVE_COST_FACTOR
        base = self._config(shards=2)
        assert estimate_cost(config) == (
            SPECULATIVE_COST_FACTOR * estimate_cost(base)
        )

    def test_adaptive_follows_the_static_window_estimate(self):
        # Pod split of the tiny clos: 1 us window -> speculates.
        assert sync_cost_factor(
            self._config(shards=2, shard_sync="adaptive")
        ) == SPECULATIVE_COST_FACTOR
        # Cross-DC split: 20 us window -> conservative, no surcharge.
        from repro.experiments.scenarios import fig9_configs

        fig9 = fig9_configs("tiny", schemes=("BFC",))["BFC"]
        assert sync_cost_factor(
            replace(fig9, shards=2, shard_sync="adaptive")
        ) == 1.0
