"""Tests for the compiled engine backend (``_accelcore`` + AccelSimulator).

The accel backend's whole contract is *byte-identical behaviour* to the pure
calendar-queue engine — same event order, same clock/ancestry bookkeeping,
same cancellation and stop semantics — at a higher events/sec.  These tests
pin the contract three ways:

* EventHeap unit tests against the engine's 6-key total order,
* randomized storms replayed on both backends and compared step for step,
* one golden-records scheme recomputed in a ``REPRO_ENGINE=accel``
  subprocess and compared byte-for-byte against the committed fixture.

When no C toolchain is available the whole module skips — loudly, with the
build error in the skip reason — and the pure engine remains the tested
default everywhere else.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import accel_build
from repro.sim.engine import PureSimulator, SimulationError

try:
    from repro.sim.engine_accel import AccelSimulator, unavailable_reason
except Exception as exc:  # pragma: no cover - import itself should not fail
    AccelSimulator, unavailable_reason = None, repr(exc)

if unavailable_reason is not None:  # pragma: no cover - toolchain-less hosts
    pytest.skip(
        f"accel engine backend unavailable: {unavailable_reason}",
        allow_module_level=True,
    )

REPO_ROOT = Path(__file__).resolve().parent.parent
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    ),
}


def _heap():
    module = accel_build.load()
    assert module is not None, accel_build.last_error
    return module.EventHeap()


class TestEventHeap:
    def test_orders_by_six_key_lexicographic(self):
        heap = _heap()
        entries = [
            (50, 0, 0, 0, 0, 3),
            (50, 0, 0, 0, 0, 1),  # same time: seq breaks the tie
            (10, 9, 9, 9, 9, 7),
            (50, 0, 0, 0, 1, 0),  # same time, later parent2
        ]
        for entry in entries:
            heap.insert(*entry, (lambda: None), ())
        popped = [heap.pop()[:6] for _ in range(len(entries))]
        assert popped == sorted(entries)
        assert heap.peek_time() is None

    def test_len_and_peek(self):
        heap = _heap()
        assert len(heap) == 0 and heap.peek_time() is None
        heap.insert(42, 0, 0, 0, 0, 0, (lambda: None), ())
        assert len(heap) == 1 and heap.peek_time() == 42

    def test_compact_drops_cancelled_seqs(self):
        heap = _heap()
        for seq in range(10):
            heap.insert(seq, 0, 0, 0, 0, seq, (lambda: None), ())
        heap.compact({2, 5, 9, 77})  # 77 never inserted: ignored
        assert len(heap) == 7
        assert [heap.pop()[5] for _ in range(7)] == [0, 1, 3, 4, 6, 7, 8]

    def test_growth_beyond_initial_capacity(self):
        heap = _heap()
        order = random.Random(3).sample(range(5000), 5000)
        for seq in order:
            heap.insert(seq, 0, 0, 0, 0, seq, (lambda: None), ())
        assert len(heap) == 5000
        assert [heap.pop()[0] for _ in range(5000)] == list(range(5000))

    def test_insert_rejects_non_tuple_args(self):
        heap = _heap()
        with pytest.raises(TypeError):
            heap.insert(0, 0, 0, 0, 0, 0, (lambda: None), [1, 2])


def _storm(sim, seed: int, n: int = 400):
    """A deterministic scheduling storm exercising every scheduling path."""
    rng = random.Random(seed)
    log = []
    handles = {}

    def fire(tag):
        log.append((sim.now, tag))
        if rng.random() < 0.4:
            sim.schedule(rng.randint(0, 50), fire, tag * 31 + 1)
        if rng.random() < 0.2:
            sim.post(rng.randint(0, 30), fire, tag * 17 + 2)
        if rng.random() < 0.15 and handles:
            handles.pop(next(iter(handles))).cancel()

    for i in range(n):
        t = rng.randint(0, 2000)
        if i % 3 == 0:
            handles[i] = sim.schedule_at(t, fire, i)
        else:
            sim.schedule_at(t, fire, i)
    sim.run(until=1500)
    sim.run_until_idle()
    return log, sim.now, sim.events_processed


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_storm_replays_identically(self, seed):
        pure = _storm(PureSimulator(seed=5), seed)
        accel = _storm(AccelSimulator(seed=5), seed)
        assert pure == accel

    def test_until_put_back_semantics(self):
        """An event beyond `until` stays queued and fires on the next run."""
        for sim in (PureSimulator(seed=1), AccelSimulator(seed=1)):
            fired = []
            sim.schedule(100, fired.append, "late")
            assert sim.run(until=50) == 0
            assert fired == [] and sim.now == 50 and sim.pending_events() == 1
            assert sim.next_event_time() == 100
            sim.run_until_idle()
            assert fired == ["late"] and sim.now == 100

    def test_max_events_cap_matches(self):
        for sim in (PureSimulator(seed=1), AccelSimulator(seed=1)):
            fired = []
            for i in range(10):
                sim.schedule(i + 1, fired.append, i)
            assert sim.run(until=1000, max_events=4) == 4
            assert fired == [0, 1, 2, 3]
            # The cap stopped the run: the clock must NOT jump to `until`.
            assert sim.now == 4

    def test_exception_counts_only_completed_events(self):
        def boom():
            raise RuntimeError("boom")

        for sim in (PureSimulator(seed=1), AccelSimulator(seed=1)):
            sim.schedule(1, lambda: None)
            sim.schedule(2, boom)
            with pytest.raises(RuntimeError):
                sim.run_until_idle()
            assert sim.events_processed == 1
            assert not sim._running  # guard must be released on the error path

    def test_reentrant_run_raises(self):
        sim = AccelSimulator(seed=1)
        sim.schedule(1, lambda: sim.run(until=10))
        with pytest.raises(SimulationError):
            sim.run_until_idle()

    def test_schedule_boundary_path(self):
        sim = AccelSimulator(seed=1)
        fired = []
        sim.schedule_boundary(10, (4, 3, 2, 1), fired.append, "b")
        sim.schedule(5, fired.append, "a")
        sim.run_until_idle()
        assert fired == ["a", "b"]

    def test_ancestry_keys_propagate(self):
        """The C loop must publish origin/parent chains exactly like pure."""

        def capture(sim, log):
            log.append((sim.now, sim._cur_origin, sim._cur_parent, sim._cur_parent2))
            if len(log) < 3:
                sim.schedule(10, capture, sim, log)

        logs = []
        for sim in (PureSimulator(seed=1), AccelSimulator(seed=1)):
            log = []
            sim.schedule(5, capture, sim, log)
            sim.run_until_idle()
            logs.append(log)
        assert logs[0] == logs[1]

    def test_calendar_stats_reports_backend(self):
        assert PureSimulator(seed=1).calendar_stats()["backend"] == "pure"
        assert AccelSimulator(seed=1).calendar_stats()["backend"] == "accel"

    def test_cancellation_compaction_threshold(self):
        sim = AccelSimulator(seed=1)
        handles = [sim.schedule(1000 + i, lambda: None) for i in range(70)]
        for handle in handles[:64]:
            handle.cancel()
        # The 64th cancel hits the threshold (64 >= 64, 128 > 70 pending):
        # the heap is compacted and the cancelled set cleared.
        assert len(sim._cancelled) == 0
        assert sim.pending_events() == 6


class TestBackendSelection:
    def _run(self, code: str, env_extra: dict) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={**SUBPROCESS_ENV, **env_extra},
            cwd=REPO_ROOT,
        )

    def test_env_var_selects_accel(self):
        probe = (
            "from repro.sim.engine import ENGINE_BACKEND, Simulator;"
            "print(ENGINE_BACKEND, Simulator.__name__)"
        )
        result = self._run(probe, {"REPRO_ENGINE": "accel"})
        assert result.stdout.split() == ["accel", "AccelSimulator"], result.stderr
        result = self._run(probe, {"REPRO_ENGINE": "pure"})
        assert result.stdout.split() == ["pure", "Simulator"], result.stderr

    def test_unknown_backend_warns_and_falls_back(self):
        result = self._run(
            "import warnings; warnings.simplefilter('error');"
            "import repro.sim.engine",
            {"REPRO_ENGINE": "warpdrive"},
        )
        assert result.returncode != 0
        assert "not a known backend" in result.stderr

    def test_golden_scheme_byte_identical_under_accel(self):
        """BFC golden records recomputed under accel == committed fixture."""
        code = (
            "import json;"
            "from golden_kernel import canonical_records, golden_configs;"
            "from repro.experiments.runner import run_experiment;"
            "from repro.sim.engine import ENGINE_BACKEND;"
            "assert ENGINE_BACKEND == 'accel', ENGINE_BACKEND;"
            "rec = canonical_records(run_experiment(golden_configs()['BFC']));"
            "print(json.dumps(rec, sort_keys=True, separators=(',', ':')))"
        )
        result = self._run(code, {"REPRO_ENGINE": "accel"})
        assert result.returncode == 0, result.stderr
        fixture = json.loads(
            (REPO_ROOT / "tests" / "golden" / "kernel_records.json").read_text()
        )
        expected = json.dumps(
            fixture["BFC"], sort_keys=True, separators=(",", ":")
        )
        assert result.stdout.strip() == expected
