"""Unit tests for the topology partitioner (:mod:`repro.shard.partition`)."""

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.scenarios import fig5a_configs, fig9_configs
from repro.shard.partition import (
    PartitionError,
    PartitionSpec,
    partition_topology,
)


@pytest.fixture(scope="module")
def leaf_spine_topo():
    config = fig5a_configs("tiny", schemes=["DCQCN"], seed=1)["DCQCN"]
    _, _, topo, _ = build_simulation(config)
    return topo


@pytest.fixture(scope="module")
def cross_dc_topo():
    config = fig9_configs("tiny", schemes=("DCQCN",), seed=1)["DCQCN"]
    _, _, topo, _ = build_simulation(config)
    return topo


def shard_of_host(topo, spec, host_id):
    return spec.shard_of[topo.hosts[host_id].name]


class TestLeafSpinePartition:
    def test_single_shard_has_no_cuts(self, leaf_spine_topo):
        spec = partition_topology(leaf_spine_topo, 1)
        assert spec.cuts == []
        assert spec.window_ns is None
        assert set(spec.shard_of.values()) == {0}

    def test_hosts_stay_with_their_tor(self, leaf_spine_topo):
        for shards in (2, 3, 4):
            spec = partition_topology(leaf_spine_topo, shards)
            for host_id, tor_name in leaf_spine_topo.tor_of_host.items():
                assert shard_of_host(leaf_spine_topo, spec, host_id) == (
                    spec.shard_of[tor_name]
                )

    def test_two_shards_cut_only_tor_spine_links(self, leaf_spine_topo):
        spec = partition_topology(leaf_spine_topo, 2)
        assert spec.cuts, "a 2-shard split of a 2-pod fabric must cut links"
        assert {cut.link_class for cut in spec.cuts} == {"tor-spine"}
        assert spec.window_ns == leaf_spine_topo.link_delay_ns

    def test_more_shards_than_pods_gives_spines_their_own_shard(
        self, leaf_spine_topo
    ):
        # 2 pods + 4 requested shards: pods take shards 0/1, the whole spine
        # tier shares one spare shard (chain-of-custody: two packets racing
        # into the same queue must cross the same shard transitions).
        spec = partition_topology(leaf_spine_topo, 4)
        spine_shards = {
            spec.shard_of[s.name] for s in leaf_spine_topo.switches_in_tier("spine")
        }
        assert len(spine_shards) == 1
        assert spine_shards.isdisjoint(
            spec.shard_of[t.name] for t in leaf_spine_topo.switches_in_tier("tor")
        )

    def test_greedy_strategy_balances_pods(self, leaf_spine_topo):
        spec = partition_topology(leaf_spine_topo, 2, "greedy")
        hosts_per_shard = {}
        for host in leaf_spine_topo.hosts.values():
            shard = spec.shard_of[host.name]
            hosts_per_shard[shard] = hosts_per_shard.get(shard, 0) + 1
        assert set(hosts_per_shard) == {0, 1}
        assert abs(hosts_per_shard[0] - hosts_per_shard[1]) <= 4  # one pod

    def test_partition_is_deterministic(self, leaf_spine_topo):
        a = partition_topology(leaf_spine_topo, 3)
        b = partition_topology(leaf_spine_topo, 3)
        assert a.shard_of == b.shard_of
        assert a.cuts == b.cuts

    def test_stats_shape(self, leaf_spine_topo):
        spec = partition_topology(leaf_spine_topo, 2)
        stats = spec.stats(leaf_spine_topo)
        assert stats["num_shards"] == 2
        assert stats["cut_links"] == len(spec.cuts)
        assert stats["window_ns"] == spec.window_ns
        total_hosts = sum(entry["hosts"] for entry in stats["shards"].values())
        assert total_hosts == len(leaf_spine_topo.hosts)

    def test_invalid_arguments(self, leaf_spine_topo):
        with pytest.raises(PartitionError):
            partition_topology(leaf_spine_topo, 0)
        with pytest.raises(PartitionError):
            partition_topology(leaf_spine_topo, 2, "nonsense")
        with pytest.raises(PartitionError):
            # 'dc' needs a multi-DC topology.
            partition_topology(leaf_spine_topo, 2, "dc")


class TestCrossDcPartition:
    """The DC boundary must always be a cut; its delay is the lookahead."""

    @pytest.mark.parametrize("strategy", ["auto", "dc"])
    def test_dc_strategy_cuts_only_the_gateway_link(self, cross_dc_topo, strategy):
        spec = partition_topology(cross_dc_topo, 2, strategy)
        assert spec.strategy == "dc"
        assert [cut.link_class for cut in spec.cuts] == ["inter-dc"]
        assert {cut.a for cut in spec.cuts} | {cut.b for cut in spec.cuts} == {
            "gw0",
            "gw1",
        }

    def test_dc_lookahead_equals_cross_dc_delay(self, cross_dc_topo):
        spec = partition_topology(cross_dc_topo, 2, "dc")
        (cut,) = spec.cuts
        assert spec.window_ns == cut.delay_ns
        gateway_link = next(
            link for link in cross_dc_topo.links if link.link_class == "inter-dc"
        )
        assert spec.window_ns == gateway_link.delay_ns

    @pytest.mark.parametrize("strategy,shards", [
        ("auto", 2),
        ("dc", 2),
        ("pod", 2),
        ("pod", 4),
        ("pod", 6),
    ])
    def test_dc_boundary_is_always_a_cut(self, cross_dc_topo, strategy, shards):
        spec = partition_topology(cross_dc_topo, shards, strategy)
        dc_shards = {0: set(), 1: set()}
        for host_id, host in cross_dc_topo.hosts.items():
            dc = cross_dc_topo.dc_of_host[host_id]
            dc_shards[dc].add(spec.shard_of[host.name])
        assert dc_shards[0].isdisjoint(dc_shards[1]), (
            f"{strategy}/{shards}: hosts of different DCs share a shard"
        )
        assert any(cut.link_class == "inter-dc" for cut in spec.cuts)

    def test_gateways_stay_with_their_dc(self, cross_dc_topo):
        spec = partition_topology(cross_dc_topo, 2, "dc")
        assert spec.shard_of["gw0"] == spec.shard_of["dc0-tor0"]
        assert spec.shard_of["gw1"] == spec.shard_of["dc1-tor0"]

    def test_pod_strategy_with_fewer_shards_than_dcs_groups_dcs(self, cross_dc_topo):
        spec = partition_topology(cross_dc_topo, 2, "pod")
        # 2 DCs / 2 shards: every DC becomes one shard even under 'pod'.
        assert len(spec.nonempty_shards()) == 2


class TestPartitionSpecHelpers:
    def test_window_none_without_cuts(self):
        spec = PartitionSpec(1, "pod", {"a": 0}, [])
        assert spec.window_ns is None
        assert spec.nonempty_shards() == [0]
