"""Tests for fairness analysis and topology validation."""

import pytest

from repro.analysis.fairness import (
    concurrent_flow_fairness,
    flow_throughputs,
    jains_index,
    link_utilization_report,
)
from repro.sim import units
from repro.sim.disciplines import FifoDiscipline
from repro.sim.flow import Flow
from repro.sim.host import Host, HostConfig
from repro.sim.stats import FlowRecord
from repro.sim.switch import Switch
from repro.topology.clos import ClosParams, build_leaf_spine
from repro.topology.validate import (
    check_host_reachability,
    check_reachability,
    find_routing_loops,
    validate_topology,
)


def record(flow_id, size, start, finish, dst=1):
    return FlowRecord(
        flow_id=flow_id,
        src=0,
        dst=dst,
        size=size,
        start_ns=start,
        finish_ns=finish,
        slowdown=1.0,
        is_incast=False,
        tag="normal",
    )


class TestJainsIndex:
    def test_perfect_fairness(self):
        assert jains_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_total_unfairness_approaches_1_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0)  # zeros ignored
        assert jains_index([100.0, 1e-9, 1e-9, 1e-9]) == pytest.approx(0.25, rel=0.01)

    def test_empty_is_fair(self):
        assert jains_index([]) == 1.0

    def test_between_zero_and_one(self):
        assert 0 < jains_index([1, 2, 3, 4, 100]) <= 1


class TestThroughputAndFairness:
    def test_flow_throughput_computation(self):
        records = [record(1, 1_000_000, 0, 1_000_000)]  # 1 MB in 1 ms
        throughput = flow_throughputs(records)[1]
        assert throughput == pytest.approx(8e9, rel=0.01)

    def test_unfinished_flows_skipped(self):
        records = [record(1, 1_000, 0, None)]
        assert flow_throughputs(records) == {}

    def test_concurrent_fairness_of_equal_flows(self):
        records = [record(i, 100_000, 0, 1_000_000) for i in range(4)]
        assert concurrent_flow_fairness(records, min_size=1_000) == pytest.approx(1.0)

    def test_concurrent_fairness_ignores_non_overlapping(self):
        # Two flows that never overlap: fairness is vacuously 1 even though
        # their throughputs differ wildly.
        records = [
            record(1, 100_000, 0, 1_000_000),
            record(2, 100_000, 2_000_000, 2_010_000),
        ]
        assert concurrent_flow_fairness(records, min_size=1_000) == 1.0

    def test_concurrent_fairness_detects_skew(self):
        records = [
            record(1, 1_000_000, 0, 1_000_000),   # 8 Gbps
            record(2, 100_000, 0, 1_000_000),     # 0.8 Gbps, same interval
        ]
        value = concurrent_flow_fairness(records, min_size=1_000)
        assert value < 0.9

    def test_destination_filter(self):
        records = [
            record(1, 100_000, 0, 1_000_000, dst=1),
            record(2, 100_000, 0, 1_000_000, dst=2),
        ]
        assert concurrent_flow_fairness(records, min_size=1_000, destination=1) == 1.0


def build_topo(sim, num_tors=2, hosts_per_tor=2, num_spines=2):
    registry = {}

    def switch_factory(name, tier):
        return Switch(
            sim, name, buffer_bytes=500_000,
            discipline_factory=lambda iface: FifoDiscipline(),
        )

    def host_factory(name, host_id):
        return Host(sim, name, host_id, config=HostConfig(), flow_registry=registry)

    params = ClosParams(
        num_tors=num_tors, hosts_per_tor=hosts_per_tor, num_spines=num_spines,
        link_rate_bps=units.gbps(10), link_delay_ns=1_000,
    )
    return build_leaf_spine(sim, params, switch_factory, host_factory)


class TestTopologyValidation:
    def test_builder_output_is_valid(self, sim):
        topo = build_topo(sim)
        report = validate_topology(topo)
        assert report.ok
        assert "OK" in report.summary()

    def test_missing_route_detected(self, sim):
        topo = build_topo(sim)
        tor = topo.switches_in_tier("tor")[0]
        victim = topo.host_ids()[-1]
        del tor.routes[victim]
        missing, _ = check_reachability(topo)
        assert (tor.name, victim) in missing
        report = validate_topology(topo)
        assert not report.ok
        assert "missing" in report.summary()

    def test_routing_loop_detected(self, sim):
        topo = build_topo(sim)
        # Make two spines forward a destination to each other via a ToR...
        # simpler: point a ToR's route for some host at a spine, and the
        # spine's route for the same host back toward that ToR.
        tor = topo.switches_in_tier("tor")[0]
        spine = topo.switches_in_tier("spine")[0]
        victim = next(h for h in topo.host_ids() if topo.tor_of_host[h] != tor.name)
        spine_iface = tor.interface_to(spine)
        tor_iface = spine.interface_to(tor)
        tor.routes[victim] = [spine_iface.index]
        spine.routes[victim] = [tor_iface.index]
        loops = find_routing_loops(topo)
        assert any(host == victim for host, _ in loops)
        assert not validate_topology(topo).ok

    def test_unreachable_pair_detected(self, sim):
        topo = build_topo(sim)
        spine_names = {s.name for s in topo.switches_in_tier("spine")}
        victim = topo.host_ids()[0]
        # Cut the victim off: every spine drops its route to it and its own
        # ToR forgets the downlink.
        for spine in topo.switches_in_tier("spine"):
            spine.routes[victim] = []
        unreachable = check_host_reachability(topo)
        assert any(dst == victim for _, dst in unreachable)

    def test_fairness_in_real_run(self, sim):
        """End-to-end: concurrent equal flows through one bottleneck get a
        high fairness index under per-flow DRR at the NIC."""
        topo = build_topo(sim)
        hosts = topo.host_ids()
        flows = [
            Flow(src=hosts[0], dst=hosts[-1], size=50_000, start_ns=0, src_port=i + 1)
            for i in range(3)
        ]
        topo.start_flows(flows)
        sim.run(until=units.milliseconds(2))
        records = [
            FlowRecord(
                flow_id=f.flow_id, src=f.src, dst=f.dst, size=f.size,
                start_ns=f.start_ns, finish_ns=f.finish_ns,
                slowdown=f.slowdown(units.gbps(10), 4_000),
                is_incast=False, tag="normal",
            )
            for f in flows
        ]
        assert all(f.completed for f in flows)
        assert concurrent_flow_fairness(records, min_size=10_000) > 0.9


class TestLinkUtilizationReport:
    def test_report_structure_and_bounds(self, sim):
        topo = build_topo(sim)
        flow = Flow(src=0, dst=topo.host_ids()[-1], size=100_000, start_ns=0)
        topo.start_flow(flow)
        duration = units.microseconds(200)
        sim.run(until=duration)
        report = link_utilization_report(topo, duration)
        assert set(report) >= {"host->tor", "tor->host", "tor->spine", "spine->tor"}
        for stats in report.values():
            assert 0.0 <= stats["mean"] <= 1.0
            assert stats["max"] <= 1.0
            assert stats["ports"] >= 1
        # The sender's uplink carried real traffic.
        assert report["host->tor"]["max"] > 0.1
