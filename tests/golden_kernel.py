"""The golden-records scenario: a fixed, deterministic kernel workload.

The simulation kernel is refactored for speed from time to time; the contract
every refactor must honour is *record-for-record equivalence*: the exact same
experiment records (flow completions, counters, samples, event counts) as the
kernel that produced the checked-in fixture.  This module defines the
scenario once so that

* ``tests/test_golden_records.py`` can recompute the records and compare them
  against ``tests/golden/kernel_records.json``, and
* ``python tests/golden_kernel.py --write`` can regenerate the fixture when a
  *behavioural* change is intended (never as part of a pure perf refactor).

The scenario is a shortened fig5a-style slice covering the four most
distinct kernels: BFC (VFID table, Bloom pauses, physical queues), DCQCN
(ECN marking + RNG draws), HPCC (INT stamping) and DCQCN+IRN on a lossy
fabric with a deliberately undersized buffer (tail drops, selective-repeat
retransmissions, out-of-order reassembly), so a regression in any
per-packet layer — including loss recovery — shows up as a record diff.

Two further entries pin the subsystems added on top of those kernels:
``BFC-Est`` runs the same slice with *stale* occupancy telemetry engaged
(the :mod:`repro.core.telemetry` change-point history and its pause/resume
read path), and ``BFC-Collective`` runs a ring all-reduce flow graph (the
dependency-driven launcher of :mod:`repro.workloads.flowgraph`), so record
drift in either subsystem is caught the same way kernel drift is.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from repro.core.config import BfcConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import collective_configs, fig5a_configs
from repro.sim import units

GOLDEN_PATH = Path(__file__).parent / "golden" / "kernel_records.json"

#: Entries exercised by the golden scenario (one per kernel family, plus the
#: telemetry-estimator and flow-graph-launcher entries; the map key is the
#: fixture label, not necessarily the scheme name).
GOLDEN_SCHEMES = ["BFC", "DCQCN", "HPCC", "DCQCN+IRN", "BFC-Est", "BFC-Collective"]

#: Kernel-family entries (built straight from the fig5a slice).
GOLDEN_BASE_SCHEMES = ["BFC", "DCQCN", "HPCC", "DCQCN+IRN"]

#: Shortened run window (the fig5a tiny default is 600 us + drain).
GOLDEN_DURATION_NS = units.microseconds(300)

GOLDEN_SEED = 5

#: The lossy-fabric entry shrinks the shared buffer so tail drops actually
#: occur inside the short golden window (8x division gives ~100 drops),
#: forcing the selective-repeat recovery path onto the golden record.
GOLDEN_IRN_BUFFER_DIVISOR = 8

#: Telemetry delay of the BFC-Est entry: large enough that the estimator
#: visibly diverges from exact BFC inside the short golden window (staleness
#: 0 would be byte-identical to the plain BFC entry and pin nothing new).
GOLDEN_EST_STALENESS_NS = 2_000


def golden_configs():
    """The fixed {label: ExperimentConfig} map of the golden scenario."""
    configs = fig5a_configs("tiny", schemes=GOLDEN_BASE_SCHEMES, seed=GOLDEN_SEED)
    out = {}
    for scheme, config in configs.items():
        config = replace(config, duration_ns=GOLDEN_DURATION_NS)
        if scheme == "DCQCN+IRN":
            config = replace(
                config, buffer_bytes=config.buffer_bytes // GOLDEN_IRN_BUFFER_DIVISOR
            )
        out[scheme] = config

    # Stale-telemetry estimator on the same slice (telemetry kernel entry).
    est = fig5a_configs("tiny", schemes=["BFC-Est"], seed=GOLDEN_SEED)["BFC-Est"]
    out["BFC-Est"] = replace(
        est,
        duration_ns=GOLDEN_DURATION_NS,
        bfc_config=BfcConfig(
            mtu=est.mtu, telemetry_staleness_ns=GOLDEN_EST_STALENESS_NS
        ),
    )

    # Ring all-reduce flow graph under BFC (dependency-launcher entry).
    out["BFC-Collective"] = collective_configs(
        "tiny",
        kinds=("ring-allreduce",),
        schemes=("BFC",),
        iterations=2,
        seed=GOLDEN_SEED,
    )["ring-allreduce/BFC"]
    return out


def canonical_records(result: ExperimentResult) -> Dict[str, object]:
    """Reduce one ExperimentResult to a JSON-stable, order-stable dict.

    Everything simulation-determined is included (flow records, counters,
    samples, event counts); wall-clock time is excluded.  Floats are kept as
    floats: JSON round-trips doubles exactly, so equality is bit-for-bit.
    """
    flows: List[Dict[str, object]] = [
        {
            "flow_id": rec.flow_id,
            "src": rec.src,
            "dst": rec.dst,
            "size": rec.size,
            "start_ns": rec.start_ns,
            "finish_ns": rec.finish_ns,
            "slowdown": rec.slowdown,
            "is_incast": rec.is_incast,
            "tag": rec.tag,
            "retransmissions": rec.retransmissions,
        }
        for rec in result.flow_stats.records
    ]
    return {
        "scheme": result.scheme,
        "flows_offered": result.flows_offered,
        "events_processed": result.events_processed,
        "dropped_packets": result.dropped_packets,
        "collision_fraction": result.collision_fraction,
        "switch_counters": dict(sorted(result.switch_counters.items())),
        "host_counters": dict(sorted(result.host_counters.items())),
        "vfid_stats": dict(sorted(result.vfid_stats.items())),
        "utilization_per_receiver": {
            str(host): value
            for host, value in sorted(result.utilization_per_receiver.items())
        },
        "pause_fractions": {
            cls: values for cls, values in sorted(result.pause_fractions.items())
        },
        "buffer_samples": list(result.buffer_sampler.samples),
        "queue_samples": list(result.queue_sampler.queue_bytes),
        "occupied_queue_samples": list(result.queue_sampler.occupied_queues),
        "flows": flows,
    }


def compute_golden_records() -> Dict[str, Dict[str, object]]:
    """Run the golden scenario and return {scheme: canonical record dict}."""
    return {
        scheme: canonical_records(run_experiment(config))
        for scheme, config in golden_configs().items()
    }


def load_golden_fixture() -> Dict[str, Dict[str, object]]:
    with open(GOLDEN_PATH, "r", encoding="ascii") as handle:
        return json.load(handle)


def write_golden_fixture() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    records = compute_golden_records()
    with open(GOLDEN_PATH, "w", encoding="ascii") as handle:
        json.dump(records, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        write_golden_fixture()
    else:
        print(__doc__)
        print("use --write to regenerate the fixture (intended changes only)")
