"""Unit tests for the BFC egress discipline (enqueue/dequeue/pause/resume)."""

from repro.core.config import BfcConfig
from repro.core.discipline import BfcEgressDiscipline
from repro.core.switchlogic import BfcAgent
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey, Packet, PacketKind


LINK_RATE = units.gbps(10)


def make_packet(src=1, dst=2, sport=10, seq=0, size=1_000, first=False, ingress=0):
    packet = Packet(
        kind=PacketKind.DATA,
        flow_id=sport,
        key=FlowKey(src=src, dst=dst, src_port=sport, dst_port=4791),
        size=size,
        seq=seq,
        first_of_flow=first,
    )
    packet.cur_ingress = ingress
    return packet


def build_discipline(config=None, sim=None):
    sim = sim or Simulator(seed=1)
    config = config or BfcConfig(hop_rtt_ns=2_000)
    agent = BfcAgent(sim, config)
    discipline = BfcEgressDiscipline(
        agent, egress_index=0, link_rate_bps=LINK_RATE, link_delay_ns=1_000,
        rng=sim.rng(7),
    )
    return discipline, agent


class TestEnqueueDequeue:
    def test_roundtrip_single_flow(self):
        discipline, agent = build_discipline()
        packets = [make_packet(sport=1, seq=i) for i in range(3)]
        for packet in packets:
            assert discipline.enqueue(packet, ingress=0)
        assert discipline.backlog_packets() == 3
        out = [discipline.dequeue() for _ in range(3)]
        assert out == packets
        assert discipline.backlog_packets() == 0

    def test_flow_entry_created_and_reclaimed(self):
        discipline, agent = build_discipline()
        packet = make_packet(sport=1)
        discipline.enqueue(packet, ingress=0)
        assert agent.flow_table.active_entries() == 1
        discipline.dequeue()
        assert agent.flow_table.active_entries() == 0

    def test_physical_queue_reclaimed(self):
        discipline, agent = build_discipline()
        discipline.enqueue(make_packet(sport=1), ingress=0)
        assert discipline.occupied_physical_queues() == 1
        discipline.dequeue()
        assert discipline.occupied_physical_queues() == 0

    def test_distinct_flows_get_distinct_queues(self):
        discipline, agent = build_discipline()
        for sport in range(10):
            discipline.enqueue(make_packet(sport=sport, src=sport), ingress=0)
        assert discipline.occupied_physical_queues() == 10
        assert discipline.pool.stats.collisions == 0

    def test_collision_when_queues_exhausted(self):
        config = BfcConfig(num_physical_queues=4, hop_rtt_ns=2_000)
        discipline, agent = build_discipline(config)
        for sport in range(6):
            discipline.enqueue(make_packet(sport=sport, src=sport), ingress=0)
        assert discipline.pool.stats.collisions == 2

    def test_same_flow_packets_share_a_queue_in_order(self):
        discipline, agent = build_discipline()
        a = [make_packet(sport=1, seq=i) for i in range(3)]
        b = [make_packet(sport=2, src=5, seq=i) for i in range(3)]
        for pa, pb in zip(a, b):
            discipline.enqueue(pa, 0)
            discipline.enqueue(pb, 0)
        seqs = {1: [], 2: []}
        for _ in range(6):
            packet = discipline.dequeue()
            seqs[packet.flow_id].append(packet.seq)
        assert seqs[1] == [0, 1, 2]
        assert seqs[2] == [0, 1, 2]


class TestHighPriorityQueue:
    def test_marked_first_packet_uses_high_priority(self):
        discipline, agent = build_discipline()
        # A backlog of another flow, then a marked single-packet flow arrives.
        for i in range(5):
            discipline.enqueue(make_packet(sport=1, seq=i), 0)
        single = make_packet(sport=2, src=7, first=True)
        discipline.enqueue(single, 0)
        assert discipline.dequeue() is single
        assert discipline.stats.high_priority_packets == 1

    def test_unmarked_first_packet_goes_to_physical_queue(self):
        discipline, agent = build_discipline()
        for i in range(5):
            discipline.enqueue(make_packet(sport=1, seq=i), 0)
        single = make_packet(sport=2, src=7, first=False)
        discipline.enqueue(single, 0)
        assert discipline.dequeue() is not single

    def test_high_priority_disabled_by_config(self):
        config = BfcConfig(use_high_priority_queue=False, hop_rtt_ns=2_000)
        discipline, agent = build_discipline(config)
        for i in range(5):
            discipline.enqueue(make_packet(sport=1, seq=i), 0)
        single = make_packet(sport=2, src=7, first=True)
        discipline.enqueue(single, 0)
        assert discipline.dequeue() is not single
        assert discipline.stats.high_priority_packets == 0

    def test_second_packet_of_flow_not_high_priority(self):
        discipline, agent = build_discipline()
        first = make_packet(sport=1, seq=0, first=True)
        discipline.enqueue(first, 0)
        second = make_packet(sport=1, seq=1)
        discipline.enqueue(second, 0)
        # Queue another flow to check relative order: the second packet of
        # flow 1 competes in DRR rather than jumping ahead.
        assert discipline.scheduler.queue_bytes(-1) == first.size  # HP queue holds only the first


class TestPauseBehaviour:
    def test_flow_paused_when_queue_exceeds_threshold(self):
        discipline, agent = build_discipline()
        threshold = discipline.thresholds.threshold_bytes(1)
        packets_needed = int(threshold // 1_000) + 2
        vfid = None
        for i in range(packets_needed):
            packet = make_packet(sport=1, seq=i)
            discipline.enqueue(packet, ingress=3)
            vfid = packet.vfid
        assert agent.is_paused(vfid, ingress=3)
        assert discipline.stats.pauses_sent == 1

    def test_no_pause_below_threshold(self):
        discipline, agent = build_discipline()
        discipline.enqueue(make_packet(sport=1), ingress=3)
        assert agent.paused_flow_count() == 0

    def test_pause_applies_to_arriving_flow_only(self):
        config = BfcConfig(num_physical_queues=1, hop_rtt_ns=2_000)
        discipline, agent = build_discipline(config)
        threshold = discipline.thresholds.threshold_bytes(1)
        # Flow 1 fills the (only) queue beyond the threshold.
        n = int(threshold // 1_000) + 2
        for i in range(n):
            discipline.enqueue(make_packet(sport=1, seq=i), ingress=0)
        # Flow 2 shares the same queue (collision); its arrival pauses flow 2 as well.
        p2 = make_packet(sport=2, src=9, ingress=1)
        discipline.enqueue(p2, ingress=1)
        assert agent.is_paused(p2.vfid, ingress=1)

    def test_resume_queued_when_queue_drains(self):
        discipline, agent = build_discipline()
        threshold = discipline.thresholds.threshold_bytes(1)
        n = int(threshold // 1_000) + 2
        packets = [make_packet(sport=1, seq=i, ingress=2) for i in range(n)]
        for packet in packets:
            discipline.enqueue(packet, ingress=2)
        vfid = packets[0].vfid
        assert agent.is_paused(vfid, 2)
        # Drain everything: the flow must end up on a resume list (still
        # paused until the agent's periodic tick applies it).
        for _ in range(n):
            discipline.dequeue()
        assert agent.is_paused(vfid, 2)
        resumes = discipline.collect_resumes()
        assert (vfid, 2) in resumes

    def test_buffer_opt_ablation_resumes_immediately(self):
        config = BfcConfig(limit_resume_rate=False, hop_rtt_ns=2_000)
        discipline, agent = build_discipline(config)
        threshold = discipline.thresholds.threshold_bytes(1)
        n = int(threshold // 1_000) + 2
        packets = [make_packet(sport=1, seq=i, ingress=2) for i in range(n)]
        for packet in packets:
            discipline.enqueue(packet, ingress=2)
        vfid = packets[0].vfid
        assert agent.is_paused(vfid, 2)
        for _ in range(n):
            discipline.dequeue()
        # Without the rate limit the pause is cleared as soon as the queue drains.
        assert not agent.is_paused(vfid, 2)

    def test_downstream_filter_pauses_queue(self):
        discipline, agent = build_discipline()
        packet = make_packet(sport=1)
        discipline.enqueue(packet, 0)
        bitmap = agent.codec.encode([packet.vfid])
        discipline.apply_downstream_filter(bitmap)
        assert discipline.dequeue() is None
        discipline.apply_downstream_filter(agent.codec.empty_bitmap())
        assert discipline.dequeue() is packet

    def test_downstream_filter_only_blocks_matching_flows(self):
        discipline, agent = build_discipline()
        a = make_packet(sport=1)
        b = make_packet(sport=2, src=9)
        discipline.enqueue(a, 0)
        discipline.enqueue(b, 0)
        discipline.apply_downstream_filter(agent.codec.encode([a.vfid]))
        popped = discipline.dequeue()
        assert popped is b
        assert discipline.dequeue() is None

    def test_nactive_excludes_paused_queues(self):
        discipline, agent = build_discipline()
        a = make_packet(sport=1)
        b = make_packet(sport=2, src=9)
        discipline.enqueue(a, 0)
        discipline.enqueue(b, 0)
        assert discipline.active_queue_count() == 2
        discipline.apply_downstream_filter(agent.codec.encode([a.vfid]))
        assert discipline.active_queue_count() == 1

    def test_static_assignment_ablation(self):
        config = BfcConfig(
            num_physical_queues=4, static_queue_assignment=True, hop_rtt_ns=2_000
        )
        discipline, agent = build_discipline(config)
        packet = make_packet(sport=1)
        discipline.enqueue(packet, 0)
        entry = agent.flow_table.lookup(packet.vfid, 0, 0)
        assert entry.queue == packet.vfid % 4


class TestOverflowQueue:
    def test_overflow_packets_still_delivered(self):
        config = BfcConfig(
            table_bucket_size=1, overflow_cache_entries=1, hop_rtt_ns=2_000
        )
        discipline, agent = build_discipline(config)
        # Three flows with the same VFID but different ingress ports: the first
        # gets the bucket, the second the cache, the third the overflow queue.
        vfid_target = 77
        packets = []
        for ingress in range(3):
            packet = make_packet(sport=5, src=5, ingress=ingress)
            packet.vfid = vfid_target
            packet.vfid_space = config.num_vfids
            discipline.enqueue(packet, ingress=ingress)
            packets.append(packet)
        assert discipline.stats.overflow_packets == 1
        out = [discipline.dequeue() for _ in range(3)]
        assert set(id(p) for p in out) == set(id(p) for p in packets)
        assert discipline.backlog_packets() == 0
