"""Tests for the on-disk spill format: writer, reader, crash safety."""

import json
import os

import pytest

from repro.results.spill import (
    FLOW_FIELDS,
    FLOWS_FILENAME,
    INDEX_FILENAME,
    SpillReader,
    SpillWriter,
    load_summary,
    write_summary,
)
from repro.sim.stats import FlowRecord


def make_record(i: int, finished: bool = True) -> FlowRecord:
    return FlowRecord(
        flow_id=i,
        src=i % 8,
        dst=(i + 1) % 8,
        size=1_000 + i,
        start_ns=i * 10,
        finish_ns=i * 10 + 500 if finished else None,
        slowdown=1.0 + i / 100.0 if finished else None,
        is_incast=(i % 5 == 0),
        tag="t" if i % 2 else None,
        retransmissions=i % 3,
    )


class TestSpillRoundTrip:
    def test_records_survive_intact(self, tmp_path):
        records = [make_record(i, finished=(i % 7 != 0)) for i in range(10_000)]
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir, chunk_rows=128) as writer:
            for rec in records:
                writer.write(rec)
        got = list(SpillReader(run_dir).iter_records())
        assert got == records

    def test_header_names_format_and_columns(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir) as writer:
            writer.write(make_record(0))
        header = SpillReader(run_dir).header()
        assert header["kind"] == "repro.results.flows"
        assert header["fields"] == list(FLOW_FIELDS)

    def test_count_rows_uses_index(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir, chunk_rows=10) as writer:
            for i in range(55):
                writer.write(make_record(i))
        reader = SpillReader(run_dir)
        assert reader._index is not None
        assert reader.count_rows() == 55

    def test_rejects_zero_chunk_rows(self, tmp_path):
        with pytest.raises(ValueError):
            SpillWriter(str(tmp_path / "run"), chunk_rows=0)

    def test_missing_flows_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SpillReader(str(tmp_path))


class TestCrashSafety:
    def test_truncated_tail_is_dropped(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir, chunk_rows=8) as writer:
            for i in range(100):
                writer.write(make_record(i))
        path = os.path.join(run_dir, FLOWS_FILENAME)
        # Simulate a crash mid-write: chop the file mid-line.
        with open(path, "r", encoding="ascii") as handle:
            data = handle.read()
        with open(path, "w", encoding="ascii") as handle:
            handle.write(data[: len(data) - 25])
        got = list(SpillReader(run_dir).iter_records())
        assert 0 < len(got) < 100
        # every record that did come back is complete and in order
        assert [r.flow_id for r in got] == list(range(len(got)))

    def test_unclosed_writer_leaves_readable_chunks(self, tmp_path):
        # A writer that never reaches close() (process killed) has flushed
        # every full chunk; only the pending partial chunk is lost.
        run_dir = str(tmp_path / "run")
        writer = SpillWriter(run_dir, chunk_rows=10)
        for i in range(25):
            writer.write(make_record(i))
        # no close(): 20 rows flushed, 5 pending lost
        got = list(SpillReader(run_dir).iter_records())
        assert [r.flow_id for r in got] == list(range(20))
        writer.close()

    def test_corrupt_index_falls_back_to_scan(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir, chunk_rows=4) as writer:
            for i in range(9):
                writer.write(make_record(i))
        with open(os.path.join(run_dir, INDEX_FILENAME), "w") as handle:
            handle.write("{not json")
        reader = SpillReader(run_dir)
        assert reader._index is None
        assert reader.count_rows() == 9

    def test_missing_index_scans(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with SpillWriter(run_dir, chunk_rows=4) as writer:
            for i in range(9):
                writer.write(make_record(i))
        os.remove(os.path.join(run_dir, INDEX_FILENAME))
        reader = SpillReader(run_dir)
        assert reader.count_rows() == 9
        assert len(list(reader)) == 9


class TestSummary:
    def test_round_trip(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        write_summary(run_dir, {"flows": {"total": 3}, "extras": {"scheme": "BFC"}})
        summary = load_summary(run_dir)
        assert summary["flows"] == {"total": 3}
        assert summary["extras"]["scheme"] == "BFC"
        assert summary["kind"] == "repro.results.summary"

    def test_write_is_atomic(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        write_summary(run_dir, {"a": 1})
        # no temp residue
        assert sorted(os.listdir(run_dir)) == ["summary.json"]

    def test_rejects_foreign_json(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        with open(os.path.join(run_dir, "summary.json"), "w") as handle:
            json.dump({"kind": "something.else"}, handle)
        with pytest.raises(ValueError):
            load_summary(run_dir)
