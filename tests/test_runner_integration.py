"""Integration tests: full experiments through the runner at micro scale.

These are the closest thing to the paper's end-to-end claims that can run in a
test suite: every scheme completes a small trace, BFC avoids drops and PFC,
Ideal-FQ and BFC have better tails than plain DCQCN, the cross-DC and incast
scenarios run, and results are deterministic for a fixed seed.
"""


import pytest

from repro.experiments.runner import ExperimentConfig, TrafficSpec, run_experiment
from repro.experiments.scenarios import (
    HEADLINE_SCHEMES,
    fig5a_configs,
    fig8_configs,
    fig9_configs,
    fig10_configs,
    fig12_configs,
    get_scale,
)
from repro.sim import units
from repro.topology.clos import ClosParams
from repro.workloads.distributions import GOOGLE
from repro.workloads.generator import WorkloadSpec


def micro_config(scheme: str, seed: int = 1, load: float = 0.5, incast: float | None = 0.05):
    """A very small configuration that still exercises congestion."""
    clos = ClosParams(
        num_tors=2, hosts_per_tor=3, num_spines=2,
        link_rate_bps=units.gbps(5), link_delay_ns=1_000,
    )
    duration = units.microseconds(300)
    traffic = TrafficSpec(
        workload=WorkloadSpec(
            distribution=GOOGLE,
            target_load=load,
            duration_ns=duration,
            max_flow_size=50_000,
        ),
        incast_load=incast,
        incast_fan_in=5,
        incast_aggregate_bytes=30_000,
        seed=seed,
    )
    return ExperimentConfig(
        name=f"micro/{scheme}",
        scheme=scheme,
        clos=clos,
        traffic=traffic,
        buffer_bytes=200_000,
        duration_ns=duration,
        drain_ns=duration,
        seed=seed,
    )


@pytest.mark.parametrize("scheme", HEADLINE_SCHEMES + ["BFC-VFID", "SFQ+InfBuffer"])
def test_every_scheme_completes_most_flows(scheme):
    result = run_experiment(micro_config(scheme))
    assert result.flows_offered > 20
    assert result.completion_rate() > 0.9
    assert result.p99_slowdown() >= 1.0


class TestBfcBehaviour:
    def test_bfc_has_no_drops_and_no_pfc(self):
        result = run_experiment(micro_config("BFC"))
        assert result.dropped_packets == 0
        pauses = result.pause_fraction_by_class()
        assert all(v < 0.01 for v in pauses.values())
        assert result.vfid_stats["pauses"] >= 0
        assert result.collision_fraction is not None

    def test_bfc_tail_no_worse_than_dcqcn(self):
        bfc = run_experiment(micro_config("BFC"))
        dcqcn = run_experiment(micro_config("DCQCN"))
        assert bfc.p99_slowdown() <= dcqcn.p99_slowdown() * 1.2

    def test_bfc_close_to_ideal_fq(self):
        bfc = run_experiment(micro_config("BFC"))
        ideal = run_experiment(micro_config("Ideal-FQ"))
        # "BFC closely tracks the ideal behaviour" — allow generous slack at
        # this micro scale.
        assert bfc.p99_slowdown() <= 3.0 * max(1.0, ideal.p99_slowdown())

    def test_bfc_paused_and_resumed_flows_balance(self):
        result = run_experiment(micro_config("BFC"))
        assert result.vfid_stats["resumes"] <= result.vfid_stats["pauses"]


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_experiment(micro_config("BFC", seed=3))
        b = run_experiment(micro_config("BFC", seed=3))
        assert a.flows_offered == b.flows_offered
        assert a.p99_slowdown() == pytest.approx(b.p99_slowdown())
        assert a.dropped_packets == b.dropped_packets
        assert a.events_processed == b.events_processed

    def test_different_seed_different_trace(self):
        a = run_experiment(micro_config("DCQCN+Win", seed=3))
        b = run_experiment(micro_config("DCQCN+Win", seed=4))
        assert a.flows_offered != b.flows_offered or a.events_processed != b.events_processed


class TestResultAccounting:
    def test_flow_records_match_offered_flows(self):
        result = run_experiment(micro_config("DCQCN+Win"))
        assert len(result.flow_stats.records) == result.flows_offered

    def test_buffer_sampler_collected_samples(self):
        result = run_experiment(micro_config("DCQCN"))
        assert len(result.buffer_sampler.samples) > 10

    def test_utilization_dict_covers_hosts(self):
        result = run_experiment(micro_config("BFC"))
        assert len(result.utilization_per_receiver) == 6
        assert all(0.0 <= u <= 1.0 for u in result.utilization_per_receiver.values())

    def test_slowdown_series_produced(self):
        result = run_experiment(micro_config("DCQCN+Win"))
        series = result.slowdown_series()
        assert len(series) == 8
        assert any(count > 0 for _, _, count in series)

    def test_run_without_incast(self):
        result = run_experiment(micro_config("BFC", incast=None))
        assert result.completion_rate() > 0.9


class TestScenarioFactories:
    def test_fig5a_configs_have_all_schemes(self):
        configs = fig5a_configs("tiny")
        assert set(configs) == set(HEADLINE_SCHEMES)
        for scheme, config in configs.items():
            assert config.scheme == scheme
            assert config.duration_ns > 0

    def test_scale_presets(self):
        tiny = get_scale("tiny")
        small = get_scale("small")
        paper = get_scale("paper")
        assert tiny.clos.num_hosts < small.clos.num_hosts < paper.clos.num_hosts
        assert paper.clos.link_rate_bps == units.gbps(100)
        assert paper.buffer_bytes() > small.buffer_bytes() > tiny.buffer_bytes()
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_fig12_varies_queue_count(self):
        configs = fig12_configs("tiny", queue_counts=(8, 32), include_ideal=True)
        assert configs["8q"].bfc_config.num_physical_queues == 8
        assert configs["32q"].bfc_config.num_physical_queues == 32
        assert configs["Ideal-FQ"].scheme == "Ideal-FQ"

    def test_fig8_sweep_structure(self):
        configs = fig8_configs("tiny", schemes=("BFC",), fan_ins=(3, 5))
        assert set(configs) == {"BFC"}
        assert set(configs["BFC"]) == {3, 5}

    def test_fig9_builds_cross_dc_configs(self):
        configs = fig9_configs("tiny", schemes=("BFC",))
        config = configs["BFC"]
        assert config.cross_dc is not None
        assert config.traffic.explicit_flows is not None
        tags = {f.tag for f in config.traffic.explicit_flows}
        assert "inter-dc" in tags and "intra-dc" in tags


class TestScenarioRuns:
    def test_fig8_point_runs_and_reports_utilization(self):
        configs = fig8_configs("tiny", schemes=("BFC",), fan_ins=(4,))
        result = run_experiment(configs["BFC"][4])
        assert 0.2 < result.mean_utilization() <= 1.0
        assert result.buffer_sampler.percentile(99) >= 0

    def test_fig9_cross_dc_runs(self):
        configs = fig9_configs("tiny", schemes=("BFC",))
        result = run_experiment(configs["BFC"])
        intra = [r for r in result.flow_stats.records if r.tag == "intra-dc"]
        inter = [r for r in result.flow_stats.records if r.tag == "inter-dc"]
        assert intra and inter
        assert result.completion_rate() > 0.8

    def test_fig10_queue_sampling(self):
        configs = fig10_configs("tiny", schemes=("BFC",), flow_counts=(8,))
        result = run_experiment(configs["BFC"][8])
        assert len(result.queue_sampler.queue_bytes) > 0
        assert result.queue_sampler.queue_percentile(99) > 0
