"""Unit tests for the base switch: routing, buffering, ECN, PFC, INT."""

import pytest

from repro.sim import units
from repro.sim.buffer import PfcPolicy
from repro.sim.disciplines import FifoDiscipline
from repro.sim.node import Node
from repro.sim.packet import FlowKey, Packet, PacketKind
from repro.sim.port import connect
from repro.sim.switch import EcnConfig, Switch


class SinkNode(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, iface_index):
        self.received.append((self.sim.now, packet))


def data_packet(src, dst, flow_id=1, size=1_000, seq=0, int_enabled=False):
    return Packet(
        kind=PacketKind.DATA,
        flow_id=flow_id,
        key=FlowKey(src=src, dst=dst, src_port=flow_id, dst_port=4791),
        size=size,
        seq=seq,
        flow_size=size,
        int_enabled=int_enabled,
    )


@pytest.fixture
def star(sim):
    """One switch with three attached sink nodes (0, 1, 2)."""
    switch = Switch(
        sim,
        "sw",
        buffer_bytes=100_000,
        discipline_factory=lambda iface: FifoDiscipline(),
        pfc=PfcPolicy(enabled=True, threshold_fraction=0.11),
    )
    nodes = []
    for i in range(3):
        node = SinkNode(sim, f"n{i}")
        connect(node, switch, rate_bps=units.gbps(10), delay_ns=1_000)
        node.interfaces[0].tx.discipline = FifoDiscipline()
        nodes.append(node)
    switch.set_routes({i: [switch.interface_to(nodes[i]).index] for i in range(3)})
    return switch, nodes


class TestForwarding:
    def test_data_forwarded_to_destination(self, sim, star):
        switch, nodes = star
        packet = data_packet(src=0, dst=2)
        switch.receive(packet, nodes[0].interfaces[0].tx.peer_iface)
        sim.run_until_idle()
        assert len(nodes[2].received) == 1
        assert nodes[1].received == []

    def test_control_forwarded_without_buffering(self, sim, star):
        switch, nodes = star
        ack = Packet(
            kind=PacketKind.ACK,
            flow_id=1,
            key=FlowKey(src=2, dst=0, src_port=1, dst_port=1),
            size=64,
        )
        switch.receive(ack, 2)
        sim.run_until_idle()
        assert len(nodes[0].received) == 1
        assert switch.buffer.occupancy() == 0

    def test_unknown_destination_raises(self, sim, star):
        switch, _ = star
        with pytest.raises(KeyError):
            switch.receive(data_packet(src=0, dst=99), 0)

    def test_ecmp_is_deterministic_per_flow(self, sim, star):
        switch, nodes = star
        switch.add_route(2, [0, 1, 2])
        picks = {switch.egress_for(data_packet(src=0, dst=2, flow_id=7)) for _ in range(10)}
        assert len(picks) == 1

    def test_ecmp_spreads_different_flows(self, sim, star):
        switch, _ = star
        switch.add_route(2, [0, 1, 2])
        picks = {
            switch.egress_for(data_packet(src=0, dst=2, flow_id=i)) for i in range(60)
        }
        assert len(picks) >= 2

    def test_hop_count_incremented(self, sim, star):
        switch, nodes = star
        packet = data_packet(src=0, dst=1)
        switch.receive(packet, 0)
        sim.run_until_idle()
        assert packet.hops == 1


class TestBuffering:
    def test_buffer_released_on_departure(self, sim, star):
        switch, nodes = star
        # The first packet starts transmitting immediately (and leaves the
        # buffer); the second must wait and therefore occupies buffer space.
        switch.receive(data_packet(src=0, dst=1, seq=0), 0)
        switch.receive(data_packet(src=0, dst=1, seq=1), 0)
        assert switch.buffer.occupancy() == 1_000
        sim.run_until_idle()
        assert switch.buffer.occupancy() == 0

    def test_drop_when_buffer_full(self, sim, star):
        switch, nodes = star
        for i in range(150):  # 150 KB offered into a 100 KB buffer
            switch.receive(data_packet(src=0, dst=1, flow_id=i, seq=i), 0)
        assert switch.dropped_packets() > 0
        assert switch.buffer.occupancy() <= switch.buffer.capacity

    def test_dropped_packets_never_delivered(self, sim, star):
        switch, nodes = star
        for i in range(150):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        delivered = len(nodes[1].received)
        assert delivered + switch.dropped_packets() == 150


class TestEcnMarking:
    def test_marks_above_kmax(self, sim, star):
        switch, nodes = star
        switch.ecn = EcnConfig(enabled=True, kmin=2_000, kmax=5_000, pmax=1.0)
        for i in range(20):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        marked = sum(1 for _, p in nodes[1].received if p.ecn_marked)
        assert marked > 0

    def test_never_marks_below_kmin(self, sim, star):
        switch, nodes = star
        switch.ecn = EcnConfig(enabled=True, kmin=50_000, kmax=90_000, pmax=1.0)
        for i in range(10):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        assert all(not p.ecn_marked for _, p in nodes[1].received)

    def test_disabled_ecn_never_marks(self, sim, star):
        switch, nodes = star
        switch.ecn = EcnConfig(enabled=False)
        for i in range(50):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        assert all(not p.ecn_marked for _, p in nodes[1].received)

    def test_marking_probability_ramp(self):
        ecn = EcnConfig(enabled=True, kmin=100, kmax=200, pmax=0.5)
        assert ecn.marking_probability(100) == 0.0
        assert ecn.marking_probability(150) == pytest.approx(0.25)
        assert ecn.marking_probability(250) == 1.0


class TestPfcGeneration:
    def test_pause_frame_sent_when_ingress_over_threshold(self, sim, star):
        switch, nodes = star
        # Flood from node 0 toward node 1 without letting the simulator drain.
        for i in range(30):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        assert switch.counters.get("pfc_pause_frames") >= 1

    def test_resume_frame_sent_after_drain(self, sim, star):
        switch, nodes = star
        for i in range(30):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        assert switch.counters.get("pfc_resume_frames") >= 1

    def test_upstream_node_pauses_on_pfc(self, sim, star):
        switch, nodes = star
        for i in range(30):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run(until=3_000)
        # Node 0's uplink should have been paused at some point.
        assert nodes[0].interfaces[0].tx.pfc_meter.pause_events >= 1

    def test_no_pfc_when_disabled(self, sim, star):
        switch, nodes = star
        switch.pfc = PfcPolicy(enabled=False)
        for i in range(30):
            switch.receive(data_packet(src=0, dst=1, flow_id=1, seq=i), 0)
        sim.run_until_idle()
        assert switch.counters.get("pfc_pause_frames") == 0


class TestIntStamping:
    def test_int_hop_appended_on_dequeue(self, sim, star):
        switch, nodes = star
        switch.int_enabled = True
        packet = data_packet(src=0, dst=1, int_enabled=True)
        switch.receive(packet, 0)
        sim.run_until_idle()
        assert len(packet.int_stack) == 1
        hop = packet.int_stack[0]
        assert hop.node == "sw"
        assert hop.rate_bps == units.gbps(10)

    def test_no_stamping_when_switch_int_disabled(self, sim, star):
        switch, nodes = star
        packet = data_packet(src=0, dst=1, int_enabled=True)
        switch.receive(packet, 0)
        sim.run_until_idle()
        assert packet.int_stack == []

    def test_no_stamping_for_non_int_packets(self, sim, star):
        switch, nodes = star
        switch.int_enabled = True
        packet = data_packet(src=0, dst=1, int_enabled=False)
        switch.receive(packet, 0)
        sim.run_until_idle()
        assert packet.int_stack == []
