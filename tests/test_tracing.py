"""Tests for the optional event-tracing utilities."""

from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.packet import FlowKey, Packet, PacketKind
from repro.sim.tracing import (
    EventTrace,
    attach_flow_probe,
    build_flow_timelines,
)

from tests.test_host import build_pair


def make_packet(flow_id=1, seq=0):
    return Packet(
        kind=PacketKind.DATA,
        flow_id=flow_id,
        key=FlowKey(src=1, dst=2, src_port=flow_id, dst_port=4791),
        size=1_000,
        seq=seq,
    )


class TestEventTrace:
    def test_record_and_query(self):
        trace = EventTrace()
        trace.record(100, "nic.tx", "h0", make_packet(flow_id=1, seq=0))
        trace.record(200, "host.deliver", "h1", make_packet(flow_id=1, seq=0))
        trace.record(300, "nic.tx", "h0", make_packet(flow_id=2, seq=0))
        assert len(trace) == 3
        assert len(trace.for_flow(1)) == 2
        assert len(trace.by_category("nic.tx")) == 2
        assert trace.categories() == {"nic.tx": 2, "host.deliver": 1}

    def test_first_matching(self):
        trace = EventTrace()
        trace.record(10, "a", "n", make_packet(seq=0))
        trace.record(20, "b", "n", make_packet(seq=1))
        found = trace.first(lambda e: e.category == "b")
        assert found is not None and found.time_ns == 20
        assert trace.first(lambda e: e.category == "zzz") is None

    def test_capacity_limit(self):
        trace = EventTrace(capacity=2)
        for i in range(5):
            trace.record(i, "x", "n", make_packet(seq=i))
        assert len(trace) == 2
        assert trace.truncated

    def test_events_without_packet(self):
        trace = EventTrace()
        trace.record(5, "note", "switch0", detail="pfc pause")
        assert trace.events[0].flow_id == -1
        assert trace.events[0].detail == "pfc pause"

    def test_json_roundtrip(self, tmp_path):
        trace = EventTrace()
        trace.record(1, "nic.tx", "h0", make_packet())
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = EventTrace.load(str(path))
        assert len(loaded) == 1
        assert loaded.events[0].category == "nic.tx"
        assert loaded.events[0].time_ns == 1

    def test_roundtrip_preserves_capacity_and_truncated(self, tmp_path):
        trace = EventTrace(capacity=2)
        for i in range(5):
            trace.record(i, "x", "n", make_packet(seq=i))
        assert trace.truncated
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = EventTrace.load(str(path))
        assert loaded.capacity == 2
        assert loaded.truncated is True
        assert len(loaded) == 2
        # The restored collector keeps enforcing its capacity.
        loaded.record(99, "x", "n", make_packet(seq=99))
        assert len(loaded) == 2

    def test_roundtrip_preserves_untruncated_state(self, tmp_path):
        trace = EventTrace()
        trace.record(1, "x", "n", make_packet())
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = EventTrace.load(str(path))
        assert loaded.capacity is None
        assert loaded.truncated is False

    def test_load_accepts_legacy_bare_list(self, tmp_path):
        import json as _json

        path = tmp_path / "legacy.json"
        legacy = [
            {
                "time_ns": 7,
                "category": "nic.tx",
                "node": "h0",
                "flow_id": 1,
                "seq": 0,
                "kind": "data",
                "detail": "",
            }
        ]
        path.write_text(_json.dumps(legacy), encoding="ascii")
        loaded = EventTrace.load(str(path))
        assert len(loaded) == 1
        assert loaded.capacity is None
        assert loaded.truncated is False
        assert loaded.events[0].time_ns == 7


class TestFlowTimelines:
    def test_timeline_from_manual_events(self):
        trace = EventTrace()
        trace.record(100, "nic.tx", "h0", make_packet(seq=0))
        trace.record(150, "nic.tx", "h0", make_packet(seq=1))
        trace.record(300, "host.deliver", "h1", make_packet(seq=0))
        trace.record(400, "host.deliver", "h1", make_packet(seq=1))
        timelines = build_flow_timelines(trace)
        timeline = timelines[1]
        assert timeline.packets_sent == 2
        assert timeline.packets_delivered == 2
        assert timeline.first_tx_ns == 100
        assert timeline.last_delivery_ns == 400
        assert timeline.network_time_ns() == 300

    def test_probe_on_live_simulation(self, sim):
        hosts, _, _ = build_pair(sim)
        trace = EventTrace()
        attach_flow_probe(hosts[0], hosts[1], trace)
        flow = Flow(src=0, dst=1, size=5_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(100))
        timelines = build_flow_timelines(trace)
        timeline = timelines[flow.flow_id]
        assert timeline.packets_sent == 5
        assert timeline.packets_delivered == 5
        assert timeline.network_time_ns() > 0

    def test_probe_filters_by_flow_id(self, sim):
        hosts, _, _ = build_pair(sim)
        trace = EventTrace()
        watched = Flow(src=0, dst=1, size=2_000, start_ns=0, src_port=1)
        ignored = Flow(src=0, dst=1, size=2_000, start_ns=0, src_port=2)
        attach_flow_probe(hosts[0], hosts[1], trace, flow_ids=[watched.flow_id])
        hosts[0].start_flow(watched)
        hosts[0].start_flow(ignored)
        sim.run(until=units.microseconds(100))
        assert trace.for_flow(watched.flow_id)
        assert not trace.for_flow(ignored.flow_id)
