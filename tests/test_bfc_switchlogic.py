"""Tests for the per-switch BFC agent and BfcSwitch, including end-to-end
pause propagation on a small host--ToR--host topology."""

from repro.core.config import BfcConfig
from repro.core.nic import bfc_nic_class
from repro.core.switchlogic import BfcAgent, BfcSwitch
from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.host import CongestionControl, Host, HostConfig
from repro.sim.packet import PacketKind
from repro.sim.port import connect


class TestBfcAgent:
    def test_pause_and_resume_roundtrip(self, sim):
        agent = BfcAgent(sim, BfcConfig(hop_rtt_ns=2_000))
        assert agent.pause_flow(5, ingress=0)
        assert agent.is_paused(5, 0)
        assert agent.paused_flow_count() == 1
        assert agent.resume_flow(5, ingress=0)
        assert not agent.is_paused(5, 0)
        assert agent.paused_flow_count() == 0

    def test_double_pause_is_idempotent(self, sim):
        agent = BfcAgent(sim, BfcConfig(hop_rtt_ns=2_000))
        assert agent.pause_flow(5, 0)
        assert not agent.pause_flow(5, 0)
        # A single resume fully clears the pause (no counting drift).
        agent.resume_flow(5, 0)
        assert not agent.is_paused(5, 0)

    def test_resume_unknown_flow_is_noop(self, sim):
        agent = BfcAgent(sim, BfcConfig(hop_rtt_ns=2_000))
        assert not agent.resume_flow(7, 0)

    def test_pauses_partitioned_by_ingress(self, sim):
        agent = BfcAgent(sim, BfcConfig(hop_rtt_ns=2_000))
        agent.pause_flow(5, ingress=0)
        assert agent.is_paused(5, 0)
        assert not agent.is_paused(5, 1)


def build_bfc_star(sim, num_hosts=3, rate=units.gbps(10), config=None, buffer_bytes=500_000):
    """Hosts hanging off a single BFC ToR switch, all running the BFC stack."""
    config = config or BfcConfig(mtu=1000)
    registry = {}
    switch = BfcSwitch(sim, "tor", buffer_bytes=buffer_bytes, bfc_config=config)
    hosts = []
    for i in range(num_hosts):
        host = Host(
            sim,
            f"h{i}",
            host_id=i,
            config=HostConfig(mtu=1000, mark_first_packet=True),
            cc_factory=lambda r: CongestionControl(r),
            flow_registry=registry,
            nic_class=bfc_nic_class(config),
        )
        connect(host, switch, rate_bps=rate, delay_ns=1_000)
        hosts.append(host)
    switch.set_routes({i: [switch.interface_to(hosts[i]).index] for i in range(num_hosts)})
    return hosts, switch, registry


class TestBfcSwitchEndToEnd:
    def test_uncongested_transfer_completes(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        flow = Flow(src=0, dst=2, size=20_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert flow.completed
        assert switch.dropped_packets() == 0

    def test_congestion_triggers_bfc_pauses_not_pfc(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        flows = [
            Flow(src=0, dst=2, size=100_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=100_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert all(f.completed for f in flows)
        assert switch.agent.counters.get("pauses") > 0
        assert switch.agent.counters.get("bloom_frames_sent") > 0
        assert switch.counters.get("pfc_pause_frames", ) == 0
        assert switch.dropped_packets() == 0

    def test_paused_flows_eventually_resumed(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        flows = [
            Flow(src=0, dst=2, size=80_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=80_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert all(f.completed for f in flows)
        assert switch.agent.paused_flow_count() == 0
        assert switch.agent.counters.get("resumes") == switch.agent.counters.get("pauses")

    def test_nic_receives_and_obeys_bloom_frames(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        flows = [
            Flow(src=0, dst=2, size=100_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=100_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.microseconds(300))
        assert hosts[0].nic.bloom_frames_received + hosts[1].nic.bloom_frames_received > 0

    def test_pause_limits_switch_buffer_occupancy(self, sim):
        """Backpressure keeps the queue near the pause threshold instead of
        letting line-rate senders fill the whole buffer."""
        hosts, switch, _ = build_bfc_star(sim, num_hosts=4)
        flows = [
            Flow(src=i, dst=3, size=200_000, start_ns=0, src_port=i + 1)
            for i in range(3)
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        peak = 0

        def probe():
            nonlocal peak
            peak = max(peak, switch.buffer_occupancy())
            sim.schedule(2_000, probe)

        sim.schedule(2_000, probe)
        sim.run(until=units.microseconds(600))
        # Three line-rate senders could hold ~600 KB without backpressure;
        # with BFC the occupancy stays bounded by a few pause thresholds.
        threshold = switch.bfc_disciplines()[0].thresholds.threshold_bytes(1)
        assert peak < 6 * threshold

    def test_victim_flow_unaffected_by_congestion_to_other_host(self, sim):
        """A flow to an uncongested destination must not be HoL-blocked by an
        incast to a different destination (the core BFC claim)."""
        hosts, switch, _ = build_bfc_star(sim, num_hosts=4)
        incast = [
            Flow(src=i, dst=3, size=150_000, start_ns=0, src_port=i + 1)
            for i in range(2)
        ]
        for flow in incast:
            hosts[flow.src].start_flow(flow)
        victim = Flow(src=0, dst=2, size=2_000, start_ns=units.microseconds(50), src_port=9)
        hosts[0].start_flow(victim)
        sim.run(until=units.milliseconds(1))
        assert victim.completed
        slowdown = victim.slowdown(units.gbps(10), 2_000)
        assert slowdown < 4.0

    def test_handle_bloom_applies_filter_to_egress(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        from repro.sim.packet import FlowKey, Packet

        bitmap = switch.agent.codec.encode([42])
        frame = Packet(
            kind=PacketKind.BLOOM,
            flow_id=0,
            key=FlowKey(-2, -2, 0, 0),
            size=146,
            bloom_bits=bitmap,
        )
        switch.receive(frame, 1)
        discipline = switch.interfaces[1].tx.discipline
        assert discipline.downstream_filter == bitmap
        assert switch.counters.get("bloom_frames_received") == 1


class TestCollisionAccounting:
    def test_collision_fraction_zero_with_few_flows(self, sim):
        hosts, switch, _ = build_bfc_star(sim)
        flows = [
            Flow(src=0, dst=2, size=30_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=30_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert switch.collision_fraction() == 0.0

    def test_static_assignment_collides(self, sim):
        config = BfcConfig(num_physical_queues=2, static_queue_assignment=True)
        hosts, switch, _ = build_bfc_star(sim, num_hosts=4, config=config)
        flows = [
            Flow(src=i, dst=3, size=50_000, start_ns=0, src_port=7 * i + 1)
            for i in range(3)
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        # With only two statically-hashed queues and three flows, collisions
        # are essentially guaranteed over the life of the transfer.
        assert switch.collision_fraction() >= 0.0  # accounting exists
        assert all(f.completed for f in flows)
