"""Unit tests for the BFC Bloom filters."""

import pytest

from repro.core.bloom import BloomFilterCodec, CountingBloomFilter


class TestCodec:
    def test_positions_deterministic(self):
        codec = BloomFilterCodec(size_bytes=128, num_hashes=4)
        assert codec.bit_positions(1234) == codec.bit_positions(1234)

    def test_positions_in_range(self):
        codec = BloomFilterCodec(size_bytes=16, num_hashes=4)
        for vfid in range(500):
            assert all(0 <= p < 128 for p in codec.bit_positions(vfid))

    def test_number_of_positions(self):
        codec = BloomFilterCodec(size_bytes=128, num_hashes=7)
        assert len(codec.bit_positions(42)) == 7

    def test_identical_codecs_agree_across_instances(self):
        # The two ends of a link build their codecs independently.
        downstream = BloomFilterCodec(size_bytes=128, num_hashes=4)
        upstream = BloomFilterCodec(size_bytes=128, num_hashes=4)
        bitmap = downstream.encode([1, 2, 3])
        assert upstream.contains(bitmap, 1)
        assert upstream.contains(bitmap, 2)

    def test_empty_bitmap_contains_nothing(self):
        codec = BloomFilterCodec()
        bitmap = codec.empty_bitmap()
        assert all(not codec.contains(bitmap, v) for v in range(100))

    def test_contains_none_bitmap(self):
        codec = BloomFilterCodec()
        assert not codec.contains(None, 5)

    def test_encode_no_false_negatives(self):
        codec = BloomFilterCodec(size_bytes=128, num_hashes=4)
        members = list(range(0, 320, 7))
        bitmap = codec.encode(members)
        assert all(codec.contains(bitmap, m) for m in members)

    def test_false_positive_rate_is_low_for_sparse_filters(self):
        # Paper: with at most 32 paused flows per ingress and 4 hashes the
        # false positive probability is tiny.
        codec = BloomFilterCodec(size_bytes=128, num_hashes=4)
        members = list(range(32))
        bitmap = codec.encode(members)
        false_positives = sum(
            1 for v in range(1_000, 11_000) if codec.contains(bitmap, v)
        )
        assert false_positives <= 2

    def test_small_filter_has_more_false_positives(self):
        small = BloomFilterCodec(size_bytes=16, num_hashes=4)
        large = BloomFilterCodec(size_bytes=128, num_hashes=4)
        members = list(range(64))
        probes = range(10_000, 20_000)
        fp_small = sum(1 for v in probes if small.contains(small.encode(members), v))
        fp_large = sum(1 for v in probes if large.contains(large.encode(members), v))
        assert fp_small > fp_large

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilterCodec(size_bytes=0)
        with pytest.raises(ValueError):
            BloomFilterCodec(num_hashes=0)


class TestCountingBloomFilter:
    def test_add_then_contains(self):
        filt = CountingBloomFilter(BloomFilterCodec())
        filt.add(77)
        assert filt.contains(77)
        assert len(filt) == 1

    def test_remove_clears_membership(self):
        filt = CountingBloomFilter(BloomFilterCodec())
        filt.add(77)
        filt.remove(77)
        assert not filt.contains(77)
        assert filt.is_empty()

    def test_shared_bits_survive_removal(self):
        """The paper's motivating case: two VFIDs sharing a bit position must
        not unpause each other when one is removed."""
        codec = BloomFilterCodec(size_bytes=2, num_hashes=2)  # force collisions
        filt = CountingBloomFilter(codec)
        # Find two VFIDs sharing at least one bit position.
        a = 1
        b = next(
            v
            for v in range(2, 10_000)
            if set(codec.bit_positions(v)) & set(codec.bit_positions(a))
        )
        filt.add(a)
        filt.add(b)
        filt.remove(a)
        assert filt.contains(b)

    def test_remove_unknown_vfid_rejected(self):
        filt = CountingBloomFilter(BloomFilterCodec())
        with pytest.raises(ValueError):
            filt.remove(123)

    def test_remove_twice_rejected(self):
        filt = CountingBloomFilter(BloomFilterCodec())
        filt.add(5)
        filt.remove(5)
        with pytest.raises(ValueError):
            filt.remove(5)

    def test_bitmap_roundtrip_to_codec(self):
        codec = BloomFilterCodec(size_bytes=64, num_hashes=4)
        filt = CountingBloomFilter(codec)
        for vfid in (3, 1_000, 9_999):
            filt.add(vfid)
        bitmap = filt.to_bitmap()
        assert len(bitmap) == 64
        assert all(codec.contains(bitmap, v) for v in (3, 1_000, 9_999))

    def test_bitmap_of_empty_filter_is_zero(self):
        filt = CountingBloomFilter(BloomFilterCodec(size_bytes=32))
        assert filt.to_bitmap() == bytes(32)

    def test_max_counter_tracks_overlap(self):
        codec = BloomFilterCodec(size_bytes=1, num_hashes=1)
        filt = CountingBloomFilter(codec)
        # With 8 bits and one hash, 20 adds force some counter above 1.
        for vfid in range(20):
            filt.add(vfid)
        assert filt.max_counter() >= 2

    def test_double_add_requires_double_remove(self):
        filt = CountingBloomFilter(BloomFilterCodec())
        filt.add(7)
        filt.add(7)
        filt.remove(7)
        assert filt.contains(7)
        filt.remove(7)
        assert not filt.contains(7)
