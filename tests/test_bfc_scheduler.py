"""Unit tests for the BFC egress scheduler (high-priority queue + DRR)."""

from repro.core.config import BfcConfig
from repro.core.scheduler import HIGH_PRIORITY_QUEUE, OVERFLOW_QUEUE, BfcScheduler
from repro.sim.packet import FlowKey, Packet, PacketKind


def make_packet(flow_id=1, size=1_000, first=False):
    return Packet(
        kind=PacketKind.DATA,
        flow_id=flow_id,
        key=FlowKey(src=flow_id, dst=99, src_port=flow_id, dst_port=4791),
        size=size,
        first_of_flow=first,
    )


def always(_qid):
    return True


class TestStorage:
    def test_push_and_pop_single_queue(self):
        sched = BfcScheduler(BfcConfig())
        packet = make_packet()
        sched.push_queue(3, packet)
        assert sched.queue_bytes(3) == 1_000
        assert sched.backlog_packets() == 1
        popped, source = sched.pop(always)
        assert popped is packet
        assert source == 3
        assert sched.backlog_packets() == 0
        assert sched.queue_bytes(3) == 0

    def test_pop_empty_returns_none(self):
        sched = BfcScheduler(BfcConfig())
        assert sched.pop(always) is None

    def test_head_packet_inspection(self):
        sched = BfcScheduler(BfcConfig())
        first = make_packet(flow_id=1)
        second = make_packet(flow_id=2)
        sched.push_queue(0, first)
        sched.push_queue(0, second)
        assert sched.head_packet(0) is first
        assert sched.head_packet(1) is None

    def test_per_queue_bytes_snapshot(self):
        sched = BfcScheduler(BfcConfig(num_physical_queues=4))
        sched.push_queue(1, make_packet(size=500))
        sched.push_queue(2, make_packet(size=700))
        assert sched.per_queue_bytes() == [0, 500, 700, 0]

    def test_nonempty_queue_listing(self):
        sched = BfcScheduler(BfcConfig(num_physical_queues=4))
        sched.push_queue(2, make_packet())
        sched.push_overflow(make_packet())
        assert set(sched.nonempty_queues()) == {2, OVERFLOW_QUEUE}


class TestPriorities:
    def test_high_priority_served_first(self):
        sched = BfcScheduler(BfcConfig())
        regular = make_packet(flow_id=1)
        priority = make_packet(flow_id=2, first=True)
        sched.push_queue(0, regular)
        sched.push_high_priority(priority)
        popped, source = sched.pop(always)
        assert popped is priority
        assert source == HIGH_PRIORITY_QUEUE

    def test_high_priority_ignores_eligibility(self):
        sched = BfcScheduler(BfcConfig())
        sched.push_high_priority(make_packet(first=True))
        popped, source = sched.pop(lambda qid: False)
        assert source == HIGH_PRIORITY_QUEUE

    def test_overflow_queue_scheduled_like_normal_queue(self):
        sched = BfcScheduler(BfcConfig())
        sched.push_overflow(make_packet(flow_id=1))
        sched.push_queue(0, make_packet(flow_id=2))
        sources = {sched.pop(always)[1] for _ in range(2)}
        assert sources == {OVERFLOW_QUEUE, 0}

    def test_paused_queue_skipped(self):
        sched = BfcScheduler(BfcConfig())
        sched.push_queue(0, make_packet(flow_id=1))
        sched.push_queue(1, make_packet(flow_id=2))
        popped, source = sched.pop(lambda qid: qid != 0)
        assert source == 1
        assert sched.pop(lambda qid: qid != 0) is None

    def test_round_robin_across_queues(self):
        sched = BfcScheduler(BfcConfig())
        for _ in range(3):
            sched.push_queue(0, make_packet(flow_id=1))
            sched.push_queue(1, make_packet(flow_id=2))
        order = [sched.pop(always)[1] for _ in range(6)]
        assert order.count(0) == 3 and order.count(1) == 3
        assert order[:4] != [0, 0, 0, 1]  # interleaved, not strict

    def test_accounting_across_queue_types(self):
        sched = BfcScheduler(BfcConfig())
        sched.push_high_priority(make_packet(size=100, first=True))
        sched.push_queue(0, make_packet(size=200))
        sched.push_overflow(make_packet(size=300))
        assert sched.backlog_bytes() == 600
        assert sched.backlog_packets() == 3
        assert sched.queue_bytes(HIGH_PRIORITY_QUEUE) == 100
        assert sched.queue_bytes(OVERFLOW_QUEUE) == 300
        while sched.pop(always) is not None:
            pass
        assert sched.backlog_bytes() == 0
