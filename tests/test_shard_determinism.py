"""Sharded == single-process determinism proof.

The contract of :mod:`repro.shard` is that running ONE experiment across
several OS processes is *measurement-invisible*: every canonical record a
single-process run produces — flow completions and slowdowns, switch
counters, buffer/queue samples in their exact order, pause fractions,
utilization, VFID statistics — is byte-for-byte identical when the same
config runs sharded.  Only ``events_processed`` legitimately differs (each
boundary crossing is two engine events instead of one, and every shard runs
its own sampling tick).

The scenario is the golden-records fig5a slice (see ``tests/golden_kernel``),
covering the three most distinct kernels: BFC (VFID tables, Bloom pauses),
DCQCN (ECN + per-switch RNG draws) and HPCC (INT stamping), so the proof
spans control packets, RNG state and telemetry crossing shard boundaries.

These tests also pin the coordinator's sampling replica
(:class:`repro.shard.coordinator._ShardSampler`) to the runner's
``_schedule_sampling`` loop: a change to either that breaks the interleaving
shows up here as a byte diff.
"""

import json
from dataclasses import replace

import pytest

from repro.campaign import Campaign, ParallelExecutor, SerialExecutor
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig9_configs
from repro.sim import units

from tests.golden_kernel import GOLDEN_SCHEMES, canonical_records, golden_configs


def shard_canonical(result):
    """Canonical records comparable between sharded and serial runs.

    Identical to the golden reduction except for ``events_processed``: a
    sharded run fires one capture event per boundary crossing plus one
    sampling tick per shard, so the raw engine event count is the one
    quantity that is *expected* to differ.
    """
    records = canonical_records(result)
    records.pop("events_processed")
    # Round-trip through JSON so float formatting matches exactly.
    return json.loads(json.dumps(records, sort_keys=True))


@pytest.fixture(scope="module")
def serial_records():
    return {
        scheme: shard_canonical(run_experiment(config))
        for scheme, config in golden_configs().items()
    }


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_byte_identical_records(self, serial_records, scheme, shards):
        config = replace(golden_configs()[scheme], shards=shards)
        sharded = shard_canonical(run_experiment(config))
        serial = serial_records[scheme]
        for key in serial:
            assert sharded[key] == serial[key], (
                f"{scheme} shards={shards}: {key} diverged from the "
                "single-process run"
            )
        assert sharded == serial

    def test_sharded_run_is_deterministic_run_to_run(self):
        config = replace(golden_configs()["BFC"], shards=2)
        first = shard_canonical(run_experiment(config))
        second = shard_canonical(run_experiment(config))
        assert first == second

    def test_shard_stats_reported(self):
        config = replace(golden_configs()["BFC"], shards=2)
        result = run_experiment(config)
        stats = result.shard_stats
        assert stats is not None
        assert stats["num_shards"] == 2
        assert stats["cut_links"] > 0
        assert stats["window_ns"] == config.clos.link_delay_ns
        assert stats["barriers"] > 0
        assert stats["boundary_packets"] > 0
        assert sum(int(v) for v in stats["events_per_shard"].values()) == (
            result.events_processed
        )


class TestSingleShardDegradesToPlainRunner:
    def test_shards_1_is_byte_identical_including_event_count(self):
        config = golden_configs()["DCQCN"]
        plain = run_experiment(config)
        one_shard = run_experiment(replace(config, shards=1))
        a = json.loads(json.dumps(canonical_records(plain), sort_keys=True))
        b = json.loads(json.dumps(canonical_records(one_shard), sort_keys=True))
        assert a == b  # includes events_processed: same engine, same schedule
        assert one_shard.shard_stats is None


class TestCrossDcSharding:
    """Per-DC sharding: the inter-DC link is the (large) lookahead window."""

    @pytest.fixture(scope="class")
    def fig9_config(self):
        config = fig9_configs("tiny", schemes=("BFC",), seed=3)["BFC"]
        return replace(
            config,
            duration_ns=units.microseconds(150),
            drain_ns=units.microseconds(75),
        )

    def test_two_dc_shards_byte_identical(self, fig9_config):
        serial = shard_canonical(run_experiment(fig9_config))
        sharded_result = run_experiment(replace(fig9_config, shards=2))
        assert shard_canonical(sharded_result) == serial
        stats = sharded_result.shard_stats
        assert stats["strategy"] == "dc"
        assert stats["cut_links_by_class"] == {"inter-dc": 1}
        # Lookahead equals the cross-DC propagation delay.
        assert stats["window_ns"] == fig9_config.cross_dc.gateway_delay_ns

    def test_pod_sharding_across_dcs_byte_identical(self, fig9_config):
        serial = shard_canonical(run_experiment(fig9_config))
        sharded = run_experiment(
            replace(fig9_config, shards=4, shard_strategy="pod")
        )
        assert shard_canonical(sharded) == serial


class TestCampaignComposition:
    """Sharded trials ride through Serial/Parallel executors unchanged."""

    def test_parallel_executor_runs_sharded_trials(self):
        configs = {
            scheme: replace(config, shards=2)
            for scheme, config in golden_configs().items()
            if scheme in ("BFC", "DCQCN")
        }
        serial = Campaign.from_configs("shard-camp", configs).run(
            executor=SerialExecutor()
        )
        parallel = Campaign.from_configs("shard-camp", configs).run(
            executor=ParallelExecutor(workers=2)
        )
        assert serial == parallel
        for scheme in configs:
            label = f"shard-camp/{scheme}"
            a = shard_canonical(serial.experiment_result(label))
            b = shard_canonical(parallel.experiment_result(label))
            assert a == b, f"{scheme}: serial vs parallel sharded records diverged"
