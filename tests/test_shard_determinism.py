"""Sharded == single-process determinism proof.

The contract of :mod:`repro.shard` is that running ONE experiment across
several OS processes is *measurement-invisible*: every canonical record a
single-process run produces — flow completions and slowdowns, switch
counters, buffer/queue samples in their exact order, pause fractions,
utilization, VFID statistics — is byte-for-byte identical when the same
config runs sharded.  Only ``events_processed`` legitimately differs (each
boundary crossing is two engine events instead of one, and every shard runs
its own sampling tick).

The scenario is the golden-records fig5a slice (see ``tests/golden_kernel``),
covering the three most distinct kernels: BFC (VFID tables, Bloom pauses),
DCQCN (ECN + per-switch RNG draws) and HPCC (INT stamping), so the proof
spans control packets, RNG state and telemetry crossing shard boundaries.

These tests also pin the coordinator's sampling replica
(:class:`repro.shard.coordinator._ShardSampler`) to the runner's
``_schedule_sampling`` loop: a change to either that breaks the interleaving
shows up here as a byte diff.
"""

import json
from dataclasses import replace

import pytest

from repro.campaign import Campaign, ParallelExecutor, SerialExecutor
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig9_configs
from repro.sim import units

from tests.golden_kernel import GOLDEN_SCHEMES, canonical_records, golden_configs


#: Every key a sharded run may report in ``ExperimentResult.shard_stats``.
#: The same table appears in docs/architecture.md ("shard_stats schema") —
#: keep the two in sync; :func:`assert_shard_stats_schema` enforces this one.
SHARD_STATS_KEYS = {
    # From PartitionSpec.stats (always present).
    "num_shards", "strategy", "shards", "cut_links", "cut_links_by_class",
    "window_ns",
    # Degenerate partitions fall back to the single-process runner.
    "degenerate",
    # Scheduling (present when the campaign scheduler reserved slots).
    "slot_budget", "oversubscribed",
    # Coordinator merge (present on every true multi-process run).
    "sync", "requested_sync", "barriers", "boundary_packets",
    "events_per_shard", "boundary_ports_per_shard",
    # Time-warp counters (present when the run actually speculated).
    "speculation",
}

SPECULATION_KEYS = {
    "snapshots", "rollbacks", "events_reexecuted", "stragglers",
    "retractions", "exports_retracted", "barriers_avoided",
    "max_leap_used", "max_leap", "snapshot_every", "per_shard",
}


def assert_shard_stats_schema(stats):
    """Fail on any undocumented shard_stats key (schema-drift tripwire)."""
    assert stats is not None
    unknown = set(stats) - SHARD_STATS_KEYS
    assert not unknown, (
        f"undocumented shard_stats keys {sorted(unknown)}; add them to "
        "SHARD_STATS_KEYS here AND to the schema table in docs/architecture.md"
    )
    speculation = stats.get("speculation")
    if speculation is not None:
        assert set(speculation) == SPECULATION_KEYS, (
            "speculation counter set drifted from the documented schema: "
            f"{sorted(set(speculation) ^ SPECULATION_KEYS)}"
        )
        for shard_counters in speculation["per_shard"].values():
            assert set(shard_counters) == {
                "snapshots", "rollbacks", "events_reexecuted"
            }


def shard_canonical(result):
    """Canonical records comparable between sharded and serial runs.

    Identical to the golden reduction except for ``events_processed``: a
    sharded run fires one capture event per boundary crossing plus one
    sampling tick per shard, so the raw engine event count is the one
    quantity that is *expected* to differ.
    """
    records = canonical_records(result)
    records.pop("events_processed")
    # Round-trip through JSON so float formatting matches exactly.
    return json.loads(json.dumps(records, sort_keys=True))


@pytest.fixture(scope="module")
def serial_records():
    return {
        scheme: shard_canonical(run_experiment(config))
        for scheme, config in golden_configs().items()
    }


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    @pytest.mark.parametrize("shards", [2, 4])
    def test_byte_identical_records(self, serial_records, scheme, shards):
        config = replace(golden_configs()[scheme], shards=shards)
        sharded = shard_canonical(run_experiment(config))
        serial = serial_records[scheme]
        for key in serial:
            assert sharded[key] == serial[key], (
                f"{scheme} shards={shards}: {key} diverged from the "
                "single-process run"
            )
        assert sharded == serial

    def test_sharded_run_is_deterministic_run_to_run(self):
        config = replace(golden_configs()["BFC"], shards=2)
        first = shard_canonical(run_experiment(config))
        second = shard_canonical(run_experiment(config))
        assert first == second

    def test_shard_stats_reported(self):
        config = replace(golden_configs()["BFC"], shards=2)
        result = run_experiment(config)
        stats = result.shard_stats
        assert stats is not None
        assert_shard_stats_schema(stats)
        assert stats["num_shards"] == 2
        assert stats["cut_links"] > 0
        assert stats["window_ns"] == config.clos.link_delay_ns
        assert stats["sync"] == "conservative"
        assert stats["requested_sync"] == "conservative"
        assert "speculation" not in stats
        assert stats["barriers"] > 0
        assert stats["boundary_packets"] > 0
        assert sum(int(v) for v in stats["events_per_shard"].values()) == (
            result.events_processed
        )


class TestSpeculativeEqualsSerial:
    """Time-warp sync produces the same bytes as conservative and serial.

    ``adaptive`` resolves to speculative on the golden pod split (1 us
    window), so both requested modes exercise the optimistic runtime; the
    stats record which mode was requested vs what actually ran.
    """

    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("sync", ["speculative", "adaptive"])
    def test_byte_identical_records(self, serial_records, scheme, shards, sync):
        config = replace(golden_configs()[scheme], shards=shards,
                         shard_sync=sync)
        result = run_experiment(config)
        sharded = shard_canonical(result)
        serial = serial_records[scheme]
        for key in serial:
            assert sharded[key] == serial[key], (
                f"{scheme} shards={shards} sync={sync}: {key} diverged "
                "from the single-process run"
            )
        assert sharded == serial
        stats = result.shard_stats
        assert_shard_stats_schema(stats)
        assert stats["sync"] == "speculative"
        assert stats["requested_sync"] == sync
        speculation = stats["speculation"]
        assert speculation["snapshots"] > 0
        assert speculation["max_leap"] >= 1

    def test_speculation_makes_progress_and_saves_barriers(self):
        config = replace(golden_configs()["BFC"], shards=2,
                         shard_sync="speculative")
        speculative = run_experiment(config)
        conservative = run_experiment(replace(config, shard_sync="conservative"))
        # The committed simulation is the same; only the sync path differs.
        assert shard_canonical(speculative) == shard_canonical(conservative)
        assert (speculative.shard_stats["boundary_packets"]
                == conservative.shard_stats["boundary_packets"])
        stats = speculative.shard_stats["speculation"]
        # On the dense pod cut the runtime genuinely speculates: it leaps
        # multiple windows, takes checkpoints, and pays real rollbacks.
        assert stats["max_leap_used"] > 1
        assert stats["snapshots"] > 0
        assert stats["rollbacks"] > 0
        assert stats["events_reexecuted"] > 0
        assert stats["barriers_avoided"] > 0
        # ... and the point of it all: fewer synchronization barriers.
        assert (speculative.shard_stats["barriers"]
                < conservative.shard_stats["barriers"])
        assert (speculative.shard_stats["barriers"]
                + stats["barriers_avoided"]
                >= conservative.shard_stats["barriers"])

    def test_speculative_run_is_deterministic_run_to_run(self):
        config = replace(golden_configs()["BFC"], shards=2,
                         shard_sync="speculative")
        first = shard_canonical(run_experiment(config))
        second = shard_canonical(run_experiment(config))
        assert first == second


class TestSingleShardDegradesToPlainRunner:
    def test_shards_1_is_byte_identical_including_event_count(self):
        config = golden_configs()["DCQCN"]
        plain = run_experiment(config)
        one_shard = run_experiment(replace(config, shards=1))
        a = json.loads(json.dumps(canonical_records(plain), sort_keys=True))
        b = json.loads(json.dumps(canonical_records(one_shard), sort_keys=True))
        assert a == b  # includes events_processed: same engine, same schedule
        assert one_shard.shard_stats is None


class TestCrossDcSharding:
    """Per-DC sharding: the inter-DC link is the (large) lookahead window."""

    @pytest.fixture(scope="class")
    def fig9_config(self):
        config = fig9_configs("tiny", schemes=("BFC",), seed=3)["BFC"]
        return replace(
            config,
            duration_ns=units.microseconds(150),
            drain_ns=units.microseconds(75),
        )

    def test_two_dc_shards_byte_identical(self, fig9_config):
        serial = shard_canonical(run_experiment(fig9_config))
        sharded_result = run_experiment(replace(fig9_config, shards=2))
        assert shard_canonical(sharded_result) == serial
        stats = sharded_result.shard_stats
        assert stats["strategy"] == "dc"
        assert stats["cut_links_by_class"] == {"inter-dc": 1}
        # Lookahead equals the cross-DC propagation delay.
        assert stats["window_ns"] == fig9_config.cross_dc.gateway_delay_ns

    def test_pod_sharding_across_dcs_byte_identical(self, fig9_config):
        serial = shard_canonical(run_experiment(fig9_config))
        sharded = run_experiment(
            replace(fig9_config, shards=4, shard_strategy="pod")
        )
        assert shard_canonical(sharded) == serial

    def test_adaptive_resolves_conservative_on_wide_window(self, fig9_config):
        # The 20 us inter-DC window is far above the adaptive threshold:
        # speculating across it would roll back constantly, so the policy
        # keeps conservative sync — and records both the request and the
        # resolution.
        serial = shard_canonical(run_experiment(fig9_config))
        result = run_experiment(replace(fig9_config, shards=2,
                                        shard_sync="adaptive"))
        assert shard_canonical(result) == serial
        stats = result.shard_stats
        assert_shard_stats_schema(stats)
        assert stats["requested_sync"] == "adaptive"
        assert stats["sync"] == "conservative"
        assert "speculation" not in stats

    def test_forced_speculative_across_dcs_byte_identical(self, fig9_config):
        # Explicitly requested speculation runs even on the wide window and
        # still commits identical bytes.
        serial = shard_canonical(run_experiment(fig9_config))
        result = run_experiment(replace(fig9_config, shards=2,
                                        shard_sync="speculative"))
        assert shard_canonical(result) == serial
        stats = result.shard_stats
        assert stats["sync"] == "speculative"
        assert stats["speculation"]["snapshots"] > 0

    def test_adaptive_speculates_on_pod_split(self, fig9_config):
        # Pod-splitting the same cross-DC scenario cuts 1 us intra-DC links,
        # which is under the adaptive threshold: the policy picks time-warp.
        serial = shard_canonical(run_experiment(fig9_config))
        result = run_experiment(replace(fig9_config, shards=4,
                                        shard_strategy="pod",
                                        shard_sync="adaptive"))
        assert shard_canonical(result) == serial
        stats = result.shard_stats
        assert_shard_stats_schema(stats)
        assert stats["requested_sync"] == "adaptive"
        assert stats["sync"] == "speculative"
        assert stats["window_ns"] == (
            fig9_config.cross_dc.dc_params.link_delay_ns
        )


class TestCampaignComposition:
    """Sharded trials ride through Serial/Parallel executors unchanged."""

    def test_parallel_executor_runs_sharded_trials(self):
        configs = {
            scheme: replace(config, shards=2)
            for scheme, config in golden_configs().items()
            if scheme in ("BFC", "DCQCN")
        }
        serial = Campaign.from_configs("shard-camp", configs).run(
            executor=SerialExecutor()
        )
        parallel = Campaign.from_configs("shard-camp", configs).run(
            executor=ParallelExecutor(workers=2)
        )
        assert serial == parallel
        for scheme in configs:
            label = f"shard-camp/{scheme}"
            a = shard_canonical(serial.experiment_result(label))
            b = shard_canonical(parallel.experiment_result(label))
            assert a == b, f"{scheme}: serial vs parallel sharded records diverged"


class TestFlowGraphSharding:
    """Dependency-driven workloads (collectives, RPC trees) under sharding.

    A flow graph launches flows at run time when prerequisites complete, so
    these scenarios prove the launcher's shard-locality invariant end to
    end: every prerequisite terminates at its dependent's source host, hence
    completions (and the launches they trigger) happen on the owning shard
    and the merged records are byte-identical to a single-process run —
    including ``start_ns``, which is stamped dynamically at launch.
    """

    @pytest.fixture(scope="class")
    def collective_config(self):
        from repro.experiments.scenarios import collective_configs

        config = collective_configs(
            "tiny", kinds=("all-to-all",), schemes=("BFC",), iterations=2,
            seed=7,
        )["all-to-all/BFC"]
        return replace(config, duration_ns=units.microseconds(300))

    @pytest.fixture(scope="class")
    def rpc_config(self):
        from repro.experiments.scenarios import rpc_fanout_configs

        config = rpc_fanout_configs(
            "tiny", schemes=("BFC",), background_load=0.20, seed=7
        )["BFC"]
        return replace(config, duration_ns=units.microseconds(300))

    @pytest.mark.parametrize("sync", ["conservative", "speculative"])
    def test_collective_two_shards_byte_identical(self, collective_config, sync):
        serial = shard_canonical(run_experiment(collective_config))
        result = run_experiment(
            replace(collective_config, shards=2, shard_sync=sync)
        )
        sharded = shard_canonical(result)
        for key in serial:
            assert sharded[key] == serial[key], (
                f"collective sync={sync}: {key} diverged from single-process"
            )
        assert sharded == serial
        assert_shard_stats_schema(result.shard_stats)
        assert result.shard_stats["sync"] == sync

    @pytest.mark.parametrize("sync", ["conservative", "speculative"])
    def test_rpc_two_shards_byte_identical(self, rpc_config, sync):
        serial = shard_canonical(run_experiment(rpc_config))
        result = run_experiment(replace(rpc_config, shards=2, shard_sync=sync))
        sharded = shard_canonical(result)
        for key in serial:
            assert sharded[key] == serial[key], (
                f"rpc sync={sync}: {key} diverged from single-process"
            )
        assert sharded == serial
        assert_shard_stats_schema(result.shard_stats)
        assert result.shard_stats["sync"] == sync

    def test_dynamic_start_times_survive_the_merge(self, collective_config):
        """Dependent flows' stamped start_ns reach the coordinator's records."""
        serial = run_experiment(collective_config)
        sharded = run_experiment(replace(collective_config, shards=2))
        starts_serial = sorted(
            (r.flow_id, r.start_ns) for r in serial.flow_stats.records
        )
        starts_sharded = sorted(
            (r.flow_id, r.start_ns) for r in sharded.flow_stats.records
        )
        assert starts_serial == starts_sharded
        # Dependency launches really happened: not every start is at time 0.
        assert len({start for _, start in starts_serial}) > 1
