"""Tests for the leaf-spine and cross-DC topology builders."""

import pytest

from repro.sim import units
from repro.sim.disciplines import FifoDiscipline
from repro.sim.flow import Flow
from repro.sim.host import Host, HostConfig
from repro.sim.switch import Switch
from repro.topology.clos import (
    ClosParams,
    build_leaf_spine,
    paper_t1_params,
    paper_t2_params,
    scaled_params,
)
from repro.topology.crossdc import CrossDcParams, build_cross_dc


def fifo_switch_factory(sim):
    def factory(name, tier):
        return Switch(
            sim,
            name,
            buffer_bytes=1_000_000,
            discipline_factory=lambda iface: FifoDiscipline(),
        )

    return factory


def host_factory(sim, registry):
    def factory(name, host_id):
        return Host(sim, name, host_id, config=HostConfig(), flow_registry=registry)

    return factory


def build(sim, params):
    registry = {}
    return build_leaf_spine(
        sim, params, fifo_switch_factory(sim), host_factory(sim, registry)
    )


class TestClosParams:
    def test_paper_t1_shape(self):
        params = paper_t1_params()
        assert params.num_hosts == 128
        assert params.num_tors == 8
        assert params.num_spines == 8
        assert params.oversubscription() == pytest.approx(2.0)
        assert params.base_rtt_ns() == 8_000

    def test_paper_t2_shape(self):
        params = paper_t2_params()
        assert params.num_hosts == 64
        assert params.num_tors == 4
        assert params.oversubscription() == pytest.approx(2.0)

    def test_t1_bdp_is_100kb(self):
        assert paper_t1_params().bdp_bytes() == pytest.approx(100_000, rel=0.01)

    def test_scaled_keeps_oversubscription(self):
        assert scaled_params().oversubscription() == pytest.approx(2.0)


class TestLeafSpineBuilder:
    @pytest.fixture
    def topo(self, sim):
        return build(sim, ClosParams(num_tors=2, hosts_per_tor=4, num_spines=2,
                                     link_rate_bps=units.gbps(10), link_delay_ns=1_000))

    def test_node_counts(self, topo):
        assert len(topo.hosts) == 8
        assert len(topo.switches_in_tier("tor")) == 2
        assert len(topo.switches_in_tier("spine")) == 2

    def test_every_host_has_a_tor(self, topo):
        for host_id in topo.host_ids():
            tor = topo.tor_switch_of(host_id)
            assert tor is not None
            assert topo.tor_of_host[host_id] == tor.name

    def test_tor_routes_cover_all_hosts(self, topo):
        for tor in topo.switches_in_tier("tor"):
            assert set(tor.routes) == set(topo.host_ids())

    def test_spine_routes_are_single_path(self, topo):
        for spine in topo.switches_in_tier("spine"):
            for host_id, choices in spine.routes.items():
                assert len(choices) == 1

    def test_tor_uses_ecmp_for_remote_hosts(self, topo):
        tor = topo.switches_in_tier("tor")[0]
        local = {h for h, name in topo.tor_of_host.items() if name == tor.name}
        remote = set(topo.host_ids()) - local
        for host_id in remote:
            assert len(tor.routes[host_id]) == 2  # one per spine
        for host_id in local:
            assert len(tor.routes[host_id]) == 1

    def test_same_rack_delay(self, topo):
        hosts = [h for h, name in topo.tor_of_host.items() if name == "tor0"]
        assert topo.one_way_delay_ns(hosts[0], hosts[1]) == 2_000

    def test_cross_rack_delay(self, topo):
        tor0_host = next(h for h, n in topo.tor_of_host.items() if n == "tor0")
        tor1_host = next(h for h, n in topo.tor_of_host.items() if n == "tor1")
        assert topo.one_way_delay_ns(tor0_host, tor1_host) == 4_000
        assert topo.base_rtt_ns(tor0_host, tor1_host) == 8_000

    def test_packets_actually_reach_any_destination(self, sim, topo):
        # End-to-end sanity: a flow between every pair of racks completes.
        src = 0
        for dst in (1, 4, 7):
            flow = Flow(src=src, dst=dst, size=2_000, start_ns=0, src_port=dst)
            topo.start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert all(f.completed for f in topo.flow_registry.values())

    def test_start_flows_batch(self, sim, topo):
        flows = [Flow(src=0, dst=5, size=1_000, start_ns=i * 1_000) for i in range(3)]
        topo.start_flows(flows)
        sim.run(until=units.microseconds(100))
        assert all(f.completed for f in flows)

    def test_buffer_occupancy_helpers(self, topo):
        assert topo.total_buffer_occupancy() == 0
        assert topo.max_buffer_occupancy() == 0
        assert topo.total_dropped_packets() == 0


class TestCrossDcBuilder:
    @pytest.fixture
    def topo(self, sim):
        registry = {}
        params = CrossDcParams(
            dc_params=ClosParams(
                num_tors=2, hosts_per_tor=2, num_spines=2,
                link_rate_bps=units.gbps(10), link_delay_ns=1_000,
            ),
            gateway_link_rate_bps=units.gbps(10),
            gateway_delay_ns=50_000,
        )
        return build_cross_dc(
            sim, params, fifo_switch_factory(sim), host_factory(sim, registry)
        )

    def test_two_dcs_and_gateways(self, topo):
        assert len(topo.hosts) == 8
        assert len(topo.switches_in_tier("gateway")) == 2
        assert {topo.dc_of_host[h] for h in topo.host_ids()} == {0, 1}

    def test_intra_dc_delay_unchanged(self, topo):
        dc0 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 0]
        assert topo.one_way_delay_ns(dc0[0], dc0[-1]) in (2_000, 4_000)

    def test_inter_dc_delay_includes_gateway_link(self, topo):
        dc0 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 0]
        dc1 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 1]
        delay = topo.one_way_delay_ns(dc0[0], dc1[0])
        assert delay > 50_000

    def test_intra_dc_flow_completes(self, sim, topo):
        dc0 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 0]
        flow = Flow(src=dc0[0], dst=dc0[-1], size=5_000, start_ns=0)
        topo.start_flow(flow)
        sim.run(until=units.microseconds(500))
        assert flow.completed

    def test_inter_dc_flow_completes(self, sim, topo):
        dc0 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 0]
        dc1 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 1]
        flow = Flow(src=dc0[0], dst=dc1[-1], size=5_000, start_ns=0)
        topo.start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert flow.completed

    def test_reverse_direction_inter_dc_flow(self, sim, topo):
        dc0 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 0]
        dc1 = [h for h in topo.host_ids() if topo.dc_of_host[h] == 1]
        flow = Flow(src=dc1[0], dst=dc0[0], size=5_000, start_ns=0)
        topo.start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert flow.completed

    def test_gateway_routes_cover_all_hosts(self, topo):
        for gateway in topo.switches_in_tier("gateway"):
            assert set(gateway.routes) == set(topo.host_ids())
