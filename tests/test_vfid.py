"""Unit tests for VFID hashing and the virtual-flow hash table."""

from repro.core.config import BfcConfig
from repro.core.vfid import FlowEntry, FlowTable, packet_vfid
from repro.sim.packet import FlowKey, Packet, PacketKind


def make_packet(src=1, dst=2, sport=10):
    return Packet(
        kind=PacketKind.DATA,
        flow_id=1,
        key=FlowKey(src=src, dst=dst, src_port=sport, dst_port=4791),
        size=1_000,
    )


class TestPacketVfid:
    def test_matches_key_vfid(self):
        packet = make_packet()
        assert packet_vfid(packet, 16_384) == packet.key.vfid(16_384)

    def test_cached_value_reused(self):
        packet = make_packet()
        first = packet_vfid(packet, 16_384)
        packet.key = FlowKey(src=9, dst=9, src_port=9, dst_port=9)  # cache should win
        assert packet_vfid(packet, 16_384) == first

    def test_cache_invalidated_for_different_space(self):
        packet = make_packet()
        a = packet_vfid(packet, 16_384)
        b = packet_vfid(packet, 1_024)
        assert b == packet.key.vfid(1_024)
        assert 0 <= b < 1_024


class TestFlowTable:
    def make_table(self, **overrides) -> FlowTable:
        config = BfcConfig(**overrides) if overrides else BfcConfig()
        return FlowTable(config)

    def test_insert_and_lookup(self):
        table = self.make_table()
        entry = table.lookup_or_insert(5, ingress=1, egress=2)
        assert isinstance(entry, FlowEntry)
        assert table.lookup(5, 1, 2) is entry
        assert table.active_entries() == 1

    def test_lookup_missing_returns_none(self):
        table = self.make_table()
        assert table.lookup(5, 1, 2) is None

    def test_same_vfid_different_ports_distinct_entries(self):
        table = self.make_table()
        a = table.lookup_or_insert(5, ingress=1, egress=2)
        b = table.lookup_or_insert(5, ingress=3, egress=2)
        c = table.lookup_or_insert(5, ingress=1, egress=4)
        assert a is not b and a is not c and b is not c
        assert table.active_entries() == 3

    def test_same_identity_returns_same_entry(self):
        table = self.make_table()
        a = table.lookup_or_insert(5, 1, 2)
        b = table.lookup_or_insert(5, 1, 2)
        assert a is b
        assert table.stats.inserts == 1

    def test_remove_reclaims_entry(self):
        table = self.make_table()
        entry = table.lookup_or_insert(5, 1, 2)
        table.remove(entry)
        assert table.lookup(5, 1, 2) is None
        assert table.active_entries() == 0

    def test_bucket_overflow_goes_to_cache(self):
        table = self.make_table(table_bucket_size=2)
        entries = [table.lookup_or_insert(5, ingress=i, egress=0) for i in range(4)]
        assert all(e is not None for e in entries)
        assert table.stats.bucket_overflows == 2
        assert sum(1 for e in entries if e.in_overflow_cache) == 2

    def test_cache_overflow_returns_none(self):
        table = self.make_table(table_bucket_size=1, overflow_cache_entries=2)
        results = [table.lookup_or_insert(5, ingress=i, egress=0) for i in range(5)]
        assert results[0] is not None            # bucket
        assert results[1] is not None and results[2] is not None  # cache
        assert results[3] is None and results[4] is None          # overflow queue
        assert table.stats.cache_overflows == 2

    def test_cache_entry_lookup_and_remove(self):
        table = self.make_table(table_bucket_size=1)
        first = table.lookup_or_insert(5, ingress=0, egress=0)
        cached = table.lookup_or_insert(5, ingress=1, egress=0)
        assert cached.in_overflow_cache
        assert table.lookup(5, 1, 0) is cached
        table.remove(cached)
        assert table.lookup(5, 1, 0) is None
        assert table.lookup(5, 0, 0) is first

    def test_vfid_collision_counted(self):
        table = self.make_table()
        key_a = FlowKey(src=1, dst=2, src_port=1, dst_port=1)
        key_b = FlowKey(src=3, dst=4, src_port=9, dst_port=9)
        entry = table.lookup_or_insert(5, 1, 2, key=key_a)
        entry.packets = 3  # the first flow still has packets queued
        table.lookup_or_insert(5, 1, 2, key=key_b)
        assert table.stats.vfid_collisions == 1

    def test_no_collision_when_entry_idle(self):
        table = self.make_table()
        key_a = FlowKey(src=1, dst=2, src_port=1, dst_port=1)
        key_b = FlowKey(src=3, dst=4, src_port=9, dst_port=9)
        table.lookup_or_insert(5, 1, 2, key=key_a)
        table.lookup_or_insert(5, 1, 2, key=key_b)  # previous flow has no packets
        assert table.stats.vfid_collisions == 0

    def test_max_active_entries_tracked(self):
        table = self.make_table()
        entries = [table.lookup_or_insert(v, 0, 0) for v in range(10)]
        for entry in entries:
            table.remove(entry)
        assert table.stats.max_active_entries == 10
        assert table.active_entries() == 0

    def test_entries_listing(self):
        table = self.make_table(table_bucket_size=1)
        table.lookup_or_insert(1, 0, 0)
        table.lookup_or_insert(1, 1, 0)  # lands in the cache
        assert len(table.entries()) == 2

    def test_memory_budget_matches_paper(self):
        # 16K VFIDs x 4-entry buckets x 4 bytes/entry = 256 KB (paper §3.8).
        table = self.make_table()
        assert table.memory_bytes(entry_bytes=4) == 256 * 1024


class TestFlowEntry:
    def test_identity_tuple(self):
        entry = FlowEntry(vfid=7, ingress=1, egress=2)
        assert entry.identity() == (7, 1, 2)

    def test_is_idle(self):
        entry = FlowEntry(vfid=7, ingress=1, egress=2)
        assert entry.is_idle()
        entry.packets = 1
        assert not entry.is_idle()
