"""Tests for workload synthesis: distributions, generators, incast, traces."""

import random

import pytest

from repro.sim import units
from repro.workloads.distributions import (
    FB_HADOOP,
    GOOGLE,
    WEBSEARCH,
    WORKLOADS,
    EmpiricalSizeDistribution,
    byte_weighted_cdf,
)
from repro.workloads.generator import WorkloadSpec, generate_workload, load_to_arrival_rate
from repro.workloads.incast import IncastSpec, generate_incast_series, incast_period_for_load
from repro.workloads.longlived import long_lived_flows, many_to_one_flows
from repro.workloads.trace import FlowTrace


class TestDistributions:
    def test_registry_contains_the_three_workloads(self):
        assert set(WORKLOADS) == {"google", "fb_hadoop", "websearch"}

    @pytest.mark.parametrize("dist", [GOOGLE, FB_HADOOP, WEBSEARCH])
    def test_samples_within_support(self, dist):
        rng = random.Random(1)
        for _ in range(300):
            size = dist.sample(rng)
            assert 1 <= size <= dist.max_size()

    def test_google_is_dominated_by_small_flows(self):
        # Paper: in the Google workload more than 80% of flows are < 1 KB.
        assert GOOGLE.cdf(1_000) >= 0.8

    def test_websearch_flows_are_much_larger(self):
        assert WEBSEARCH.cdf(1_000) < 0.1
        assert WEBSEARCH.mean() > 10 * GOOGLE.mean()

    def test_quantile_monotone(self):
        qs = [GOOGLE.quantile(u / 20) for u in range(21)]
        assert qs == sorted(qs)

    def test_quantile_extremes(self):
        assert GOOGLE.quantile(0.0) >= 1
        assert GOOGLE.quantile(1.0) == GOOGLE.max_size()

    def test_cdf_monotone(self):
        sizes = [10, 100, 1_000, 10_000, 100_000, 1_000_000]
        values = [GOOGLE.cdf(s) for s in sizes]
        assert values == sorted(values)
        assert values[-1] <= 1.0

    def test_sampling_matches_cdf_roughly(self):
        rng = random.Random(7)
        samples = GOOGLE.sample_many(rng, 4_000)
        empirical = sum(1 for s in samples if s <= 1_000) / len(samples)
        assert empirical == pytest.approx(GOOGLE.cdf(1_000), abs=0.05)

    def test_mean_is_positive_and_below_max(self):
        for dist in (GOOGLE, FB_HADOOP, WEBSEARCH):
            assert 0 < dist.mean() < dist.max_size()

    def test_invalid_distributions_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(100, 0.5)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(100, 0.7), (200, 0.5)])
        with pytest.raises(ValueError):
            EmpiricalSizeDistribution("bad", [(100, 0.5), (200, 0.9)])

    def test_byte_weighted_cdf_shape(self):
        points = byte_weighted_cdf(GOOGLE)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        # Byte-weighting shifts mass to larger flows: at 1 KB the byte CDF is
        # far below the flow-count CDF (0.82).
        at_1kb = next(f for size, f in points if size >= 1_000)
        assert at_1kb < GOOGLE.cdf(1_000)


class TestGenerator:
    def test_arrival_rate_formula(self):
        rate = load_to_arrival_rate(0.5, num_hosts=10, host_link_rate_bps=units.gbps(10),
                                    mean_flow_size_bytes=10_000)
        # 0.5 * 10 * 1.25 GB/s / 10 KB = 625k flows/s
        assert rate == pytest.approx(625_000, rel=0.01)

    def test_generated_load_close_to_target(self):
        spec = WorkloadSpec(
            distribution=GOOGLE,
            target_load=0.6,
            duration_ns=units.milliseconds(5),
            sigma=0.0,
            max_flow_size=None,
        )
        hosts = list(range(16))
        trace = generate_workload(spec, hosts, units.gbps(10), seed=3)
        load = trace.offered_load(16, units.gbps(10), spec.duration_ns)
        assert load == pytest.approx(0.6, rel=0.35)

    def test_flows_within_duration_and_hosts(self):
        spec = WorkloadSpec(distribution=GOOGLE, target_load=0.4,
                            duration_ns=units.milliseconds(1))
        hosts = [3, 5, 7, 11]
        trace = generate_workload(spec, hosts, units.gbps(10), seed=1)
        assert len(trace) > 0
        for flow in trace:
            assert 0 <= flow.start_ns < spec.duration_ns
            assert flow.src in hosts and flow.dst in hosts
            assert flow.src != flow.dst

    def test_max_flow_size_cap(self):
        spec = WorkloadSpec(distribution=WEBSEARCH, target_load=0.5,
                            duration_ns=units.milliseconds(1), max_flow_size=50_000)
        trace = generate_workload(spec, list(range(8)), units.gbps(10), seed=2)
        assert all(f.size <= 50_000 for f in trace)

    def test_seed_determinism(self):
        spec = WorkloadSpec(distribution=GOOGLE, target_load=0.5,
                            duration_ns=units.milliseconds(1))
        a = generate_workload(spec, list(range(8)), units.gbps(10), seed=5)
        b = generate_workload(spec, list(range(8)), units.gbps(10), seed=5)
        assert [(f.src, f.dst, f.size, f.start_ns) for f in a] == [
            (f.src, f.dst, f.size, f.start_ns) for f in b
        ]

    def test_different_seeds_differ(self):
        spec = WorkloadSpec(distribution=GOOGLE, target_load=0.5,
                            duration_ns=units.milliseconds(1))
        a = generate_workload(spec, list(range(8)), units.gbps(10), seed=5)
        b = generate_workload(spec, list(range(8)), units.gbps(10), seed=6)
        assert [(f.size, f.start_ns) for f in a] != [(f.size, f.start_ns) for f in b]

    def test_restricted_src_dst_sets(self):
        spec = WorkloadSpec(distribution=GOOGLE, target_load=0.5,
                            duration_ns=units.milliseconds(1))
        srcs, dsts = [0, 1], [6, 7]
        trace = generate_workload(
            spec, list(range(8)), units.gbps(10), seed=1, src_hosts=srcs, dst_hosts=dsts
        )
        assert all(f.src in srcs and f.dst in dsts for f in trace)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(distribution=GOOGLE, target_load=0.0, duration_ns=1_000).validate()
        with pytest.raises(ValueError):
            WorkloadSpec(distribution=GOOGLE, target_load=0.5, duration_ns=0).validate()
        with pytest.raises(ValueError):
            generate_workload(
                WorkloadSpec(distribution=GOOGLE, target_load=0.5, duration_ns=1_000),
                [1],
                units.gbps(10),
            )


class TestIncast:
    def test_period_for_load(self):
        period = incast_period_for_load(0.05, 20_000_000, 64, units.gbps(100))
        # 20 MB / (0.05 * 64 * 12.5 GB/s) = 500 us.
        assert period == pytest.approx(units.microseconds(500), rel=0.01)

    def test_event_structure(self):
        spec = IncastSpec(fan_in=5, aggregate_bytes=50_000, period_ns=100_000,
                          duration_ns=300_000)
        trace = generate_incast_series(spec, list(range(10)), seed=1)
        events = {}
        for flow in trace:
            events.setdefault(flow.start_ns, []).append(flow)
        assert len(events) == 3
        for flows in events.values():
            assert len(flows) == 5
            dsts = {f.dst for f in flows}
            assert len(dsts) == 1
            assert all(f.src != f.dst for f in flows)
            assert all(f.is_incast for f in flows)
            assert sum(f.size for f in flows) == pytest.approx(50_000, abs=5)

    def test_fixed_receiver(self):
        spec = IncastSpec(fan_in=3, aggregate_bytes=30_000, period_ns=100_000,
                          duration_ns=200_000)
        trace = generate_incast_series(spec, list(range(6)), seed=1, receiver=4)
        assert all(f.dst == 4 for f in trace)

    def test_fan_in_clamped_to_available_senders(self):
        spec = IncastSpec(fan_in=100, aggregate_bytes=10_000, period_ns=100_000,
                          duration_ns=100_000)
        trace = generate_incast_series(spec, list(range(5)), seed=1)
        events = {}
        for flow in trace:
            events.setdefault(flow.start_ns, []).append(flow)
        assert all(len(flows) == 4 for flows in events.values())

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            IncastSpec(fan_in=0, aggregate_bytes=1, period_ns=1, duration_ns=1).validate()
        with pytest.raises(ValueError):
            incast_period_for_load(0.0, 1_000, 8, units.gbps(10))


class TestLongLived:
    def test_long_lived_flows_per_receiver(self):
        trace = long_lived_flows(list(range(8)), flows_per_receiver=4, size_bytes=1_000_000)
        assert len(trace) == 32
        per_dst = {}
        for flow in trace:
            per_dst.setdefault(flow.dst, []).append(flow)
            assert flow.src != flow.dst
        assert all(len(flows) == 4 for flows in per_dst.values())
        # Senders of one receiver are distinct.
        for flows in per_dst.values():
            assert len({f.src for f in flows}) == 4

    def test_many_to_one(self):
        trace = many_to_one_flows(list(range(10)), receiver=0, num_flows=6, size_bytes=10_000)
        assert len(trace) == 6
        assert all(f.dst == 0 and f.src != 0 for f in trace)
        assert len({f.src for f in trace}) == 6

    def test_many_to_one_more_flows_than_hosts(self):
        trace = many_to_one_flows(list(range(4)), receiver=0, num_flows=9, size_bytes=10_000)
        assert len(trace) == 9
        assert all(f.dst == 0 and f.src != 0 for f in trace)

    def test_invalid_receiver(self):
        with pytest.raises(ValueError):
            many_to_one_flows([0, 1], receiver=5, num_flows=2, size_bytes=100)


class TestFlowTrace:
    def test_sorted_by_start_time(self):
        from repro.sim.flow import Flow

        trace = FlowTrace([
            Flow(src=0, dst=1, size=10, start_ns=500),
            Flow(src=0, dst=1, size=10, start_ns=100),
        ])
        assert [f.start_ns for f in trace] == [100, 500]

    def test_merge_and_filter(self):
        from repro.sim.flow import Flow

        a = FlowTrace([Flow(src=0, dst=1, size=10, start_ns=0)])
        b = FlowTrace([Flow(src=1, dst=0, size=10, start_ns=5, is_incast=True)])
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(merged.incast_flows()) == 1
        assert len(merged.normal_flows()) == 1

    def test_total_bytes_and_load(self):
        from repro.sim.flow import Flow

        trace = FlowTrace([Flow(src=0, dst=1, size=1_250, start_ns=0)])
        assert trace.total_bytes() == 1_250
        load = trace.offered_load(1, units.gbps(10), units.microseconds(10))
        assert load == pytest.approx(0.1, rel=0.01)

    def test_json_roundtrip(self, tmp_path):
        from repro.sim.flow import Flow

        trace = FlowTrace([
            Flow(src=0, dst=1, size=10, start_ns=0, tag="x", is_incast=True, src_port=5),
            Flow(src=2, dst=3, size=99, start_ns=7),
        ])
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = FlowTrace.load(str(path))
        assert len(loaded) == 2
        assert [(f.src, f.dst, f.size, f.start_ns, f.is_incast, f.tag) for f in loaded] == [
            (f.src, f.dst, f.size, f.start_ns, f.is_incast, f.tag) for f in trace
        ]
