"""Unit tests for the metric collectors."""

import pytest

from repro.sim import units
from repro.sim.stats import (
    BufferSampler,
    ByteMeter,
    Counters,
    FlowRecord,
    FlowStats,
    PauseMeter,
    QueueSampler,
    percentile,
)


class TestCounters:
    def test_incr_and_get(self):
        counters = Counters()
        counters.incr("x")
        counters.incr("x", 4)
        assert counters.get("x") == 5
        assert counters.get("missing") == 0

    def test_as_dict_is_a_copy(self):
        counters = Counters()
        counters.incr("a")
        snapshot = counters.as_dict()
        snapshot["a"] = 99
        assert counters.get("a") == 1


class TestByteMeter:
    def test_records_split_by_class(self):
        meter = ByteMeter()
        meter.record(1_000, is_control=False)
        meter.record(64, is_control=True)
        assert meter.data_bytes == 1_000
        assert meter.control_bytes == 64
        assert meter.total_bytes() == 1_064
        assert meter.data_packets == 1
        assert meter.control_packets == 1

    def test_utilization_full_link(self):
        meter = ByteMeter()
        # 10 Gbps for 1 us carries 1250 bytes.
        meter.record(1_250, is_control=False)
        util = meter.utilization(units.gbps(10), units.microseconds(1))
        assert util == pytest.approx(1.0, rel=0.01)

    def test_utilization_excludes_control_by_default(self):
        meter = ByteMeter()
        meter.record(625, is_control=False)
        meter.record(625, is_control=True)
        util = meter.utilization(units.gbps(10), units.microseconds(1))
        assert util == pytest.approx(0.5, rel=0.01)
        util_all = meter.utilization(units.gbps(10), units.microseconds(1), include_control=True)
        assert util_all == pytest.approx(1.0, rel=0.01)

    def test_utilization_capped_at_one(self):
        meter = ByteMeter()
        meter.record(10_000, is_control=False)
        assert meter.utilization(units.gbps(10), 100) == 1.0

    def test_zero_duration(self):
        assert ByteMeter().utilization(units.gbps(10), 0) == 0.0


class TestPauseMeter:
    def test_accumulates_paused_time(self):
        meter = PauseMeter()
        meter.set_paused(True, 100)
        meter.set_paused(False, 400)
        assert meter.paused_time(1_000) == 300
        assert meter.pause_events == 1

    def test_open_interval_counts_until_now(self):
        meter = PauseMeter()
        meter.set_paused(True, 100)
        assert meter.paused_time(250) == 150
        assert meter.paused

    def test_redundant_transitions_ignored(self):
        meter = PauseMeter()
        meter.set_paused(True, 100)
        meter.set_paused(True, 200)
        meter.set_paused(False, 300)
        meter.set_paused(False, 400)
        assert meter.paused_time(500) == 200
        assert meter.pause_events == 1

    def test_paused_fraction(self):
        meter = PauseMeter()
        meter.set_paused(True, 0)
        meter.set_paused(False, 250)
        assert meter.paused_fraction(1_000) == pytest.approx(0.25)

    def test_fraction_with_zero_window(self):
        assert PauseMeter().paused_fraction(0) == 0.0


class TestSamplers:
    def test_buffer_sampler_percentiles(self):
        sampler = BufferSampler()
        for value in range(1, 101):
            sampler.record("s1", value * 1_000)
        assert sampler.max_occupancy() == 100_000
        assert sampler.percentile(50) == pytest.approx(51_000, rel=0.05)
        assert "s1" in sampler.per_switch

    def test_empty_buffer_sampler(self):
        sampler = BufferSampler()
        assert sampler.max_occupancy() == 0
        assert sampler.percentile(99) == 0.0

    def test_queue_sampler(self):
        sampler = QueueSampler()
        for value in [10, 20, 30, 40]:
            sampler.record_queue(value)
        sampler.record_occupied(7)
        assert sampler.queue_percentile(99) == 40
        assert sampler.occupied_queues == [7]

    def test_buffer_percentile_cache_invalidated_by_record(self):
        # percentile() caches its sorted snapshot; a new sample must refresh it.
        sampler = BufferSampler()
        sampler.record("s1", 10)
        sampler.record("s1", 20)
        assert sampler.percentile(100) == 20
        sampler.record("s1", 5)
        assert sampler.percentile(0) == 5
        assert sampler.percentile(100) == 20

    def test_buffer_percentile_repeated_queries_stay_consistent(self):
        sampler = BufferSampler()
        for value in (3, 1, 2):
            sampler.record("s1", value)
        first = [sampler.percentile(q) for q in (0, 50, 100)]
        second = [sampler.percentile(q) for q in (0, 50, 100)]
        assert first == second == [1, 2, 3]

    def test_queue_percentile_cache_invalidated_by_record(self):
        sampler = QueueSampler()
        sampler.record_queue(100)
        assert sampler.queue_percentile(50) == 100
        sampler.record_queue(50)
        assert sampler.queue_percentile(0) == 50


class TestFlowStats:
    def _record(self, flow_id, slowdown, incast=False, finished=True):
        return FlowRecord(
            flow_id=flow_id,
            src=0,
            dst=1,
            size=1_000,
            start_ns=0,
            finish_ns=100 if finished else None,
            slowdown=slowdown if finished else None,
            is_incast=incast,
            tag="normal",
        )

    def test_completion_rate(self):
        stats = FlowStats()
        stats.add(self._record(1, 1.0))
        stats.add(self._record(2, 2.0, finished=False))
        assert stats.completion_rate() == pytest.approx(0.5)

    def test_slowdowns_exclude_incast_by_default(self):
        stats = FlowStats()
        stats.add(self._record(1, 5.0))
        stats.add(self._record(2, 50.0, incast=True))
        assert stats.slowdowns() == [5.0]
        assert sorted(stats.slowdowns(include_incast=True)) == [5.0, 50.0]

    def test_empty_stats(self):
        stats = FlowStats()
        assert stats.completion_rate() == 0.0
        assert stats.slowdowns() == []
        assert stats.slowdown_percentile(99.0) == 0.0
        assert stats.mean_slowdown() == 0.0

    def test_shared_streaming_surface(self):
        # The metric surface StreamingFlowStats mirrors (see repro.results).
        stats = FlowStats()
        stats.add(self._record(1, 2.0))
        stats.add(self._record(2, 4.0))
        stats.add(self._record(3, 99.0, incast=True))
        assert list(stats.iter_records()) == stats.records
        assert stats.mean_slowdown() == pytest.approx(3.0)
        assert stats.slowdown_percentile(100.0) == 4.0
        assert stats.slowdown_percentile(100.0, include_incast=True) == 99.0


class TestPercentile:
    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_single_value(self):
        assert percentile([42.0], 99) == 42.0
        assert percentile([42.0], 1) == 42.0

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_median_of_uniform(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 50) == pytest.approx(50.0, abs=1.0)

    def test_p99_of_uniform(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 99) == pytest.approx(99.0, abs=1.0)

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0
