"""Unit tests for flow descriptors and FCT/slowdown accounting."""

import pytest

from repro.sim import units
from repro.sim.flow import Flow, reset_flow_ids


class TestFlowIdentity:
    def test_ids_are_unique_and_increasing(self):
        flows = [Flow(src=0, dst=1, size=100, start_ns=0) for _ in range(5)]
        ids = [f.flow_id for f in flows]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_reset_flow_ids(self):
        Flow(src=0, dst=1, size=100, start_ns=0)
        reset_flow_ids()
        assert Flow(src=0, dst=1, size=100, start_ns=0).flow_id == 1

    def test_key_uses_rocev2_port(self):
        flow = Flow(src=3, dst=4, size=100, start_ns=0)
        assert flow.key().dst_port == 4791
        assert flow.key().src == 3
        assert flow.key().dst == 4

    def test_explicit_ports_respected(self):
        flow = Flow(src=3, dst=4, size=100, start_ns=0, src_port=111, dst_port=222)
        key = flow.key()
        assert key.src_port == 111
        assert key.dst_port == 222


class TestCompletion:
    def test_not_completed_initially(self):
        flow = Flow(src=0, dst=1, size=100, start_ns=10)
        assert not flow.completed
        assert flow.fct_ns() is None
        assert flow.slowdown(units.gbps(10), 1000) is None

    def test_fct_is_finish_minus_start(self):
        flow = Flow(src=0, dst=1, size=100, start_ns=1_000)
        flow.finish_ns = 6_000
        assert flow.completed
        assert flow.fct_ns() == 5_000


class TestIdealFct:
    def test_single_packet_flow(self):
        flow = Flow(src=0, dst=1, size=500, start_ns=0)
        # 500 B payload + 48 B header at 10 Gbps = 438.4 ns, plus 2000 ns delay
        ideal = flow.ideal_fct_ns(units.gbps(10), base_delay_ns=2_000, mtu=1000)
        assert ideal == pytest.approx(2_000 + (500 + 48) * 8 / 10, rel=1e-6)

    def test_multi_packet_flow_counts_headers(self):
        flow = Flow(src=0, dst=1, size=3_000, start_ns=0)
        ideal = flow.ideal_fct_ns(units.gbps(10), base_delay_ns=0, mtu=1000)
        wire_bytes = 3_000 + 3 * 48
        assert ideal == pytest.approx(wire_bytes * 8 / 10, rel=1e-6)

    def test_ideal_fct_scales_with_rate(self):
        flow = Flow(src=0, dst=1, size=100_000, start_ns=0)
        slow = flow.ideal_fct_ns(units.gbps(10), 0)
        fast = flow.ideal_fct_ns(units.gbps(100), 0)
        assert slow == pytest.approx(10 * fast, rel=1e-6)


class TestSlowdown:
    def test_slowdown_of_ideal_completion_is_one(self):
        flow = Flow(src=0, dst=1, size=1_000, start_ns=0)
        ideal = flow.ideal_fct_ns(units.gbps(10), base_delay_ns=4_000)
        flow.finish_ns = int(ideal)
        assert flow.slowdown(units.gbps(10), 4_000) == pytest.approx(1.0, rel=0.01)

    def test_slowdown_never_below_one(self):
        flow = Flow(src=0, dst=1, size=1_000, start_ns=0)
        flow.finish_ns = 1  # impossibly fast
        assert flow.slowdown(units.gbps(10), 4_000) == 1.0

    def test_slowdown_doubles_with_double_fct(self):
        flow = Flow(src=0, dst=1, size=10_000, start_ns=0)
        ideal = flow.ideal_fct_ns(units.gbps(10), base_delay_ns=4_000)
        flow.finish_ns = int(2 * ideal)
        assert flow.slowdown(units.gbps(10), 4_000) == pytest.approx(2.0, rel=0.01)

    def test_incast_flag_and_tag(self):
        flow = Flow(src=0, dst=1, size=10, start_ns=0, is_incast=True, tag="incast")
        assert flow.is_incast
        assert flow.tag == "incast"
