"""Equivalence and analyzer tests for the streaming results subsystem.

The load-bearing contract: routing the harvest through a ``SpillSink``
changes *where* measurements live, never *what* is measured.  A spilled run
must reproduce the in-memory run record for record, event for event.
"""

import math
import os
from dataclasses import replace

import pytest

from repro.experiments.runner import make_sink, run_experiment
from repro.experiments.scenarios import fig5a_configs
from repro.results import (
    InMemorySink,
    ResultsAnalyzer,
    SpillSink,
    StreamingFlowStats,
)
from repro.sim import units
from repro.workloads import GOOGLE, OpenLoopSpec

DURATION_NS = units.microseconds(100)


def trace_config(tmp_path=None, scheme="DCQCN"):
    config = fig5a_configs("tiny", schemes=[scheme], seed=5)[scheme]
    results_dir = None if tmp_path is None else str(tmp_path / "spill")
    return replace(config, duration_ns=DURATION_NS, results_dir=results_dir)


def openloop_config(tmp_path=None, duration_us=400):
    base = fig5a_configs("tiny", schemes=["DCQCN"], seed=7)["DCQCN"]
    duration = units.microseconds(duration_us)
    spec = OpenLoopSpec(
        distribution=GOOGLE,
        duration_ns=duration,
        target_load=0.4,
        max_flow_size=20_000,
    )
    results_dir = None if tmp_path is None else str(tmp_path / "spill")
    return replace(
        base,
        name="openloop-test",
        duration_ns=duration,
        drain_ns=duration // 2,
        traffic=replace(base.traffic, workload=None, incast_load=None, open_loop=spec),
        results_dir=results_dir,
    )


def series_equal(a, b):
    """slowdown_series tuples compare equal, treating NaN == NaN."""
    if len(a) != len(b):
        return False
    for (la, va, ca), (lb, vb, cb) in zip(a, b):
        if la != lb or ca != cb:
            return False
        if not (va == vb or (math.isnan(va) and math.isnan(vb))):
            return False
    return True


class TestSpillEquivalence:
    def test_trace_run_identical_to_in_memory(self, tmp_path):
        mem = run_experiment(trace_config())
        spill = run_experiment(trace_config(tmp_path))
        assert spill.results_ref is not None
        assert spill.events_processed == mem.events_processed
        assert spill.dropped_packets == mem.dropped_packets
        assert spill.switch_counters == mem.switch_counters
        assert spill.host_counters == mem.host_counters
        assert spill.flow_stats.records == mem.flow_stats.records
        assert spill.completion_rate() == mem.completion_rate()
        # below the sketch's exact cap the percentile is bit-identical
        assert spill.p99_slowdown() == mem.p99_slowdown()
        assert spill.mean_slowdown() == pytest.approx(mem.mean_slowdown())

    def test_open_loop_run_identical_to_in_memory(self, tmp_path):
        mem = run_experiment(openloop_config())
        spill = run_experiment(openloop_config(tmp_path))
        assert mem.flows_offered > 100
        assert spill.flows_offered == mem.flows_offered
        assert spill.events_processed == mem.events_processed
        assert spill.flow_stats.records == mem.flow_stats.records

    def test_sink_choice_never_changes_simulation(self, tmp_path):
        # Same config, explicit sinks of both kinds: identical event counts.
        mem = run_experiment(trace_config(), sink=InMemorySink())
        spill = run_experiment(
            trace_config(), sink=SpillSink(str(tmp_path / "explicit"))
        )
        assert spill.events_processed == mem.events_processed

    def test_streaming_result_supports_series_api(self, tmp_path):
        mem = run_experiment(trace_config())
        spill = run_experiment(trace_config(tmp_path))
        assert series_equal(spill.slowdown_series(), mem.slowdown_series())


class TestResultsAnalyzer:
    def test_analyzer_matches_run(self, tmp_path):
        result = run_experiment(trace_config(tmp_path))
        analyzer = ResultsAnalyzer(result.results_ref)
        assert analyzer.flow_count() == len(result.flow_stats.records)
        assert analyzer.completion_rate() == result.completion_rate()
        assert analyzer.slowdown_percentile(99.0) == result.p99_slowdown()
        assert analyzer.slowdown_percentile(99.0, exact=True) == result.p99_slowdown()
        assert series_equal(analyzer.slowdown_series(), result.slowdown_series())
        assert analyzer.extras["scheme"] == "DCQCN"
        assert analyzer.max_buffer_occupancy() == result.buffer_sampler.max_occupancy()

    def test_summarize_has_campaign_shape(self, tmp_path):
        result = run_experiment(trace_config(tmp_path))
        metrics = ResultsAnalyzer(result.results_ref).summarize()
        for key in (
            "flows_offered",
            "completion_rate",
            "p99_slowdown",
            "mean_slowdown",
            "p99_buffer_bytes",
            "max_buffer_bytes",
            "events_processed",
        ):
            assert key in metrics
        assert metrics["flows_offered"] == result.flows_offered

    def test_crashed_run_rebuilds_from_records(self, tmp_path):
        result = run_experiment(trace_config(tmp_path))
        n = len(result.flow_stats.records)
        # Simulate a crash before finalize: summary never written.
        os.remove(os.path.join(result.results_ref, "summary.json"))
        analyzer = ResultsAnalyzer(result.results_ref)
        assert not analyzer.has_summary()
        assert analyzer.flow_count() == n
        assert analyzer.completion_rate() == result.completion_rate()
        # sampler aggregates lived only in the summary
        with pytest.raises(ValueError):
            analyzer.buffer_sampler

    def test_records_property_materializes(self, tmp_path):
        result = run_experiment(trace_config(tmp_path))
        stats = result.flow_stats
        assert isinstance(stats, StreamingFlowStats)
        assert stats.records == list(stats.iter_records())

    def test_streaming_stats_without_spill_dir_refuses_records(self):
        with pytest.raises(RuntimeError):
            StreamingFlowStats().iter_records()


class TestMakeSink:
    def test_default_is_in_memory(self):
        assert isinstance(make_sink(trace_config()), InMemorySink)

    def test_results_dir_selects_spill(self, tmp_path):
        sink = make_sink(trace_config(tmp_path))
        assert isinstance(sink, SpillSink)

    def test_run_dir_sanitizes_scheme_slashes(self, tmp_path):
        config = replace(trace_config(tmp_path), name="fig9/DCQCN+Win weird\\x")
        sink = make_sink(config)
        base = os.path.basename(sink.run_dir)
        assert "/" not in base and " " not in base and "\\" not in base
        assert base.endswith("-s5")

    def test_finalize_is_idempotent(self, tmp_path):
        sink = SpillSink(str(tmp_path / "run"))
        first = sink.finalize({"scheme": "X"})
        second = sink.finalize({"scheme": "ignored"})
        assert first is not None and second is not None
        assert ResultsAnalyzer(str(tmp_path / "run")).extras["scheme"] == "X"


class TestCampaignArtifacts:
    def test_trial_record_round_trips_artifacts(self):
        from repro.campaign.results import TrialRecord

        rec = TrialRecord(
            name="t", label="t", scheme="BFC", artifacts={"results_dir": "/x/y"}
        )
        clone = TrialRecord.from_dict(rec.to_dict())
        assert clone.artifacts == {"results_dir": "/x/y"}
        # absence stays absent (old-format files unchanged)
        bare = TrialRecord(name="u", label="u", scheme="BFC")
        assert "artifacts" not in bare.to_dict()
        assert TrialRecord.from_dict(bare.to_dict()).artifacts == {}

    def test_result_set_opens_analyzer_for_artifact(self, tmp_path):
        from repro.campaign.results import ResultSet, TrialRecord

        result = run_experiment(trace_config(tmp_path))
        rs = ResultSet(
            [
                TrialRecord(
                    name="a",
                    label="spilled",
                    scheme="DCQCN",
                    artifacts={"results_dir": result.results_ref},
                ),
                TrialRecord(name="b", label="plain", scheme="BFC"),
            ]
        )
        assert rs.artifacts_by_label() == {"spilled": result.results_ref}
        analyzer = rs.analyzer_for("spilled")
        assert analyzer.flow_count() == len(result.flow_stats.records)
        with pytest.raises(KeyError):
            rs.analyzer_for("plain")
        with pytest.raises(KeyError):
            rs.analyzer_for("missing")

    def test_execute_trial_attaches_results_dir(self, tmp_path):
        from repro.campaign.executors import execute_trial

        class StubTrial:
            name = "t/0"
            label = "t"
            scheme = "DCQCN"
            params = {}
            repeat = 0
            seed = 5
            config = trace_config(tmp_path)

        record, result = execute_trial(StubTrial())
        assert record.artifacts == {"results_dir": result.results_ref}
