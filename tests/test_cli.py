"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import FIGURE_FACTORIES, build_parser, main
from repro.experiments.schemes import available_schemes


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "NotAScheme"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scale", "huge"])

    def test_figure_names_match_registry(self):
        args = build_parser().parse_args(["figure", "fig5a"])
        assert args.name == "fig5a"
        assert "fig5a" in FIGURE_FACTORIES
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_campaign_parses_sweep_axes(self):
        args = build_parser().parse_args(
            ["campaign", "mysweep", "--schemes", "BFC", "DCQCN",
             "--load", "0.6", "0.8", "--repeats", "2", "--workers", "4"]
        )
        assert args.name == "mysweep"
        assert args.schemes == ["BFC", "DCQCN"]
        assert args.load == [0.6, 0.8]
        assert args.repeats == 2
        assert args.workers == 4

    def test_sweep_is_an_alias_for_campaign(self):
        args = build_parser().parse_args(["sweep", "--schemes", "BFC"])
        assert args.command == "sweep"
        assert args.schemes == ["BFC"]

    def test_campaign_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--schemes", "NotAScheme"])

    def test_campaign_bad_input_is_a_clean_error_not_a_traceback(self, capsys):
        code, _ = run_cli(["campaign", "--schemes", "BFC", "--load", "0.6", "0.6"])
        assert code == 2
        err = capsys.readouterr().err
        assert "duplicate trial name" in err
        assert "Traceback" not in err


class TestInformationalCommands:
    def test_schemes_lists_everything(self):
        code, output = run_cli(["schemes"])
        assert code == 0
        for scheme in available_schemes():
            assert scheme in output

    def test_workloads_table(self):
        code, output = run_cli(["workloads"])
        assert code == 0
        for name in ("Google", "FB_Hadoop", "WebSearch"):
            assert name in output
        assert "BDP" in output


class TestRunCommand:
    def test_run_text_output(self):
        code, output = run_cli(
            ["run", "--scheme", "BFC", "--scale", "tiny", "--load", "0.3",
             "--incast", "0", "--seed", "2"]
        )
        assert code == 0
        assert "p99_slowdown" in output
        assert "flow size" in output

    def test_run_json_output(self):
        code, output = run_cli(
            ["run", "--scheme", "DCQCN+Win", "--scale", "tiny", "--load", "0.3",
             "--incast", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["scheme"] == "DCQCN+Win"
        assert payload["completion_rate"] > 0.8
        assert payload["flows_offered"] > 0

    def test_run_different_workload(self):
        code, output = run_cli(
            ["run", "--scheme", "BFC", "--workload", "fb_hadoop", "--load", "0.3",
             "--incast", "0", "--json"]
        )
        assert code == 0
        assert json.loads(output)["dropped_packets"] == 0


class TestOpenLoopAndAnalyze:
    def test_openloop_spills_and_analyze_reads_back(self, tmp_path):
        results_dir = str(tmp_path / "spill")
        code, output = run_cli(
            ["openloop", "--scheme", "DCQCN", "--flows", "300",
             "--seed", "3", "--results-dir", results_dir, "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["flows_offered"] == 300
        assert payload["results_dir"].startswith(results_dir)

        code, output = run_cli(["analyze", payload["results_dir"], "--json"])
        assert code == 0
        analyzed = json.loads(output)
        assert analyzed["flows_offered"] == 300
        assert analyzed["scheme"] == "DCQCN"
        assert any(point["count"] > 0 for point in analyzed["slowdown_series"])

    def test_openloop_in_memory_text_output(self):
        code, output = run_cli(
            ["openloop", "--scheme", "DCQCN", "--flows", "200", "--seed", "2"]
        )
        assert code == 0
        assert "flows offered" in output
        assert "p99_slowdown" in output
        assert "results_dir" not in output

    def test_analyze_text_table(self, tmp_path):
        results_dir = str(tmp_path / "spill")
        code, payload_text = run_cli(
            ["openloop", "--scheme", "DCQCN", "--flows", "200",
             "--results-dir", results_dir, "--json"]
        )
        assert code == 0
        run_dir = json.loads(payload_text)["results_dir"]
        code, output = run_cli(["analyze", run_dir])
        assert code == 0
        assert "flow size" in output
        assert "completion_rate" in output


class TestCampaignCommand:
    def test_campaign_json_records(self):
        code, output = run_cli(
            ["campaign", "clitest", "--schemes", "BFC", "--load", "0.3",
             "--incast", "0", "--json"]
        )
        assert code == 0
        records = json.loads(output)
        assert [r["name"] for r in records] == ["clitest/BFC/load=0.3"]
        assert records[0]["scheme"] == "BFC"
        assert records[0]["metrics"]["completion_rate"] > 0.8

    def test_campaign_text_table_and_save(self, tmp_path):
        path = tmp_path / "records.jsonl"
        code, output = run_cli(
            ["campaign", "--schemes", "BFC", "--load", "0.3", "--incast", "0",
             "--save", str(path)]
        )
        assert code == 0
        assert "p99 FCT slowdown by scheme and load" in output
        assert path.exists()
        from repro.campaign import ResultSet

        assert len(ResultSet.load(path)) == 1

    def test_campaign_dry_run_prints_plan_and_runs_nothing(self, tmp_path):
        path = tmp_path / "records.jsonl"
        code, output = run_cli(
            ["campaign", "--schemes", "BFC", "DCQCN", "--load", "0.6", "0.8",
             "--cores", "2", "--dry-run", "--save", str(path)]
        )
        assert code == 0
        assert "4 trial(s) on 2 core(s)" in output
        assert "wave 1" in output
        assert not path.exists()  # nothing simulated, nothing written

    def test_campaign_cores_runs_and_reports_cores(self, tmp_path):
        path = tmp_path / "records.jsonl"
        code, output = run_cli(
            ["campaign", "--schemes", "BFC", "--load", "0.3", "--incast", "0",
             "--cores", "2", "--save", str(path)]
        )
        assert code == 0
        assert "cores=2" in output
        assert path.exists()
        assert path.with_name("records.costs.json").exists()

    def test_campaign_rejects_workers_plus_cores(self):
        code, _ = run_cli(
            ["campaign", "--schemes", "BFC", "--workers", "2", "--cores", "2",
             "--dry-run"]
        )
        assert code == 2

    def test_campaign_dry_run_json_is_machine_readable(self):
        code, output = run_cli(
            ["campaign", "--schemes", "BFC", "DCQCN", "--load", "0.6",
             "--cores", "2", "--dry-run", "--json"]
        )
        assert code == 0
        plan = json.loads(output)
        assert plan["cores"] == 2
        assert plan["num_trials"] == 2
        assert plan["max_live_processes"] <= 2
        assert [t["name"] for w in plan["waves"] for t in w["trials"]] == [
            "campaign/BFC/load=0.6", "campaign/DCQCN/load=0.6",
        ]

    def test_dry_run_without_cores_is_a_clean_error(self, capsys):
        # A plan preview describes scheduled execution; without --cores the
        # real run would use the --workers pool, so previewing would mislead.
        code, _ = run_cli(["campaign", "--schemes", "BFC", "--dry-run"])
        assert code == 2
        assert "--cores" in capsys.readouterr().err

    def test_cores_flag_validates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--cores", "lots"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--cores", "0"])
        args = build_parser().parse_args(["campaign", "--cores", "auto"])
        assert args.cores == "auto"


class TestCompareAndFigure:
    def test_compare_json(self):
        code, output = run_cli(
            ["compare", "--schemes", "BFC", "DCQCN", "--load", "0.3", "--incast", "0",
             "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert set(payload) == {"BFC", "DCQCN"}
        assert all("p99_slowdown" in row for row in payload.values())

    def test_compare_text_table(self):
        code, output = run_cli(
            ["compare", "--schemes", "BFC", "Ideal-FQ", "--load", "0.3", "--incast", "0"]
        )
        assert code == 0
        assert "p99 FCT slowdown" in output
        assert "Ideal-FQ" in output

    def test_figure_with_scheme_subset(self):
        code, output = run_cli(
            ["figure", "fig5a", "--schemes", "BFC", "DCQCN", "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert set(payload) == {"BFC", "DCQCN"}

    def test_figure_text_output(self):
        code, output = run_cli(["figure", "fig13", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert len(payload) >= 3

    def test_figure_dry_run_previews_plan(self):
        code, output = run_cli(
            ["figure", "fig5a", "--schemes", "BFC", "DCQCN", "--cores", "2",
             "--dry-run"]
        )
        assert code == 0
        assert "2 trial(s) on 2 core(s)" in output
        assert "wave 1" in output


class TestTopologyCommand:
    def test_info_text_output(self):
        code, output = run_cli(["topology", "info", "--shards", "2"])
        assert code == 0
        assert "hosts" in output
        assert "oversubscription" in output
        assert "cut links" in output
        assert "window (lookahead)" in output

    def test_info_json_cross_dc(self):
        code, output = run_cli(
            ["topology", "info", "--figure", "fig9", "--shards", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["hosts"] == 16
        assert payload["switches_by_tier"]["gateway"] == 2
        assert payload["partition"]["strategy"] == "dc"
        assert payload["partition"]["cut_links_by_class"] == {"inter-dc": 1}
        # Lookahead = the cross-DC propagation delay.
        assert payload["partition"]["window_ns"] == 20_000

    def test_info_single_shard_has_no_cuts(self):
        code, output = run_cli(["topology", "info", "--shards", "1", "--json"])
        assert code == 0
        payload = json.loads(output)
        assert payload["partition"]["cut_links"] == 0
        assert payload["partition"]["window_ns"] is None

    def test_info_reports_adaptive_sync_resolution(self):
        # Pod split (1 us window): adaptive picks time-warp.
        code, output = run_cli(
            ["topology", "info", "--shards", "2", "--sync", "adaptive",
             "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["sync"]["requested"] == "adaptive"
        assert payload["sync"]["mode"] == "speculative"
        assert "1000 ns < " in payload["sync"]["reason"]
        # Cross-DC split (20 us window): adaptive stays conservative.
        code, output = run_cli(
            ["topology", "info", "--figure", "fig9", "--shards", "2",
             "--sync", "adaptive", "--json"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["sync"]["mode"] == "conservative"
        assert "20000 ns >= " in payload["sync"]["reason"]

    def test_info_text_shows_sync_policy(self):
        code, output = run_cli(
            ["topology", "info", "--shards", "2", "--sync", "speculative"]
        )
        assert code == 0
        assert "Sync policy for --sync speculative:" in output
        assert "max leap" in output
        assert "snapshot cadence" in output

    def test_info_rejects_unknown_sync(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["topology", "info", "--sync", "clairvoyant"]
            )


class TestShardCommand:
    def test_shard_json_reports_partition_and_barriers(self):
        code, output = run_cli(
            ["shard", "--scheme", "DCQCN", "--shards", "2", "--json",
             "--load", "0.3", "--incast", "0"]
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["summary"]["scheme"] == "DCQCN"
        stats = payload["shard_stats"]
        assert stats["num_shards"] == 2
        assert stats["barriers"] > 0
        assert stats["window_ns"] == 1_000
        assert len(stats["events_per_shard"]) == 2

    def test_shard_text_output(self):
        code, output = run_cli(
            ["shard", "--scheme", "DCQCN", "--shards", "2",
             "--load", "0.3", "--incast", "0"]
        )
        assert code == 0
        assert "Partition:" in output
        assert "window (lookahead)" in output
        assert "barriers" in output

    def test_shard_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--strategy", "magic"])

    def test_shard_rejects_unknown_sync(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["shard", "--sync", "psychic"])

    def test_shard_speculative_reports_speculation_stats(self):
        code, output = run_cli(
            ["shard", "--scheme", "DCQCN", "--shards", "2", "--json",
             "--load", "0.3", "--incast", "0", "--sync", "speculative"]
        )
        assert code == 0
        payload = json.loads(output)
        stats = payload["shard_stats"]
        assert stats["sync"] == "speculative"
        assert stats["requested_sync"] == "speculative"
        speculation = stats["speculation"]
        assert speculation["snapshots"] > 0
        assert speculation["snapshot_every"] >= 1
        assert speculation["rollbacks"] >= 0

    def test_shard_speculative_text_output(self):
        code, output = run_cli(
            ["shard", "--scheme", "DCQCN", "--shards", "2",
             "--load", "0.3", "--incast", "0", "--sync", "speculative"]
        )
        assert code == 0
        assert "sync                   speculative" in output
        assert "Speculation:" in output
        assert "snapshot cadence" in output
        assert "rollbacks" in output
        assert "max leap used" in output
