"""Unit tests for the shared switch buffer and PFC policy."""

import pytest

from repro.sim.buffer import PfcPolicy, SharedBuffer


class TestSharedBuffer:
    def test_admit_updates_occupancy(self):
        buf = SharedBuffer(10_000)
        assert buf.admit(4_000, ingress=0)
        assert buf.occupancy() == 4_000
        assert buf.ingress_occupancy(0) == 4_000
        assert buf.free == 6_000

    def test_admit_rejects_overflow(self):
        buf = SharedBuffer(5_000)
        assert buf.admit(3_000, ingress=0)
        assert not buf.admit(3_000, ingress=1)
        assert buf.stats.dropped_packets == 1
        assert buf.stats.dropped_bytes == 3_000
        assert buf.occupancy() == 3_000

    def test_admit_exactly_full(self):
        buf = SharedBuffer(1_000)
        assert buf.admit(1_000, ingress=0)
        assert buf.free == 0

    def test_release_returns_memory(self):
        buf = SharedBuffer(10_000)
        buf.admit(4_000, ingress=2)
        buf.release(4_000, ingress=2)
        assert buf.occupancy() == 0
        assert buf.ingress_occupancy(2) == 0

    def test_release_more_than_used_rejected(self):
        buf = SharedBuffer(10_000)
        buf.admit(1_000, ingress=0)
        with pytest.raises(ValueError):
            buf.release(2_000, ingress=0)

    def test_release_wrong_ingress_rejected(self):
        buf = SharedBuffer(10_000)
        buf.admit(1_000, ingress=0)
        buf.admit(1_000, ingress=1)
        with pytest.raises(ValueError):
            buf.release(2_000, ingress=0)

    def test_per_ingress_accounting_is_independent(self):
        buf = SharedBuffer(10_000)
        buf.admit(1_000, ingress=0)
        buf.admit(2_000, ingress=1)
        assert buf.ingress_occupancy(0) == 1_000
        assert buf.ingress_occupancy(1) == 2_000

    def test_max_occupancy_statistic(self):
        buf = SharedBuffer(10_000)
        buf.admit(6_000, ingress=0)
        buf.release(6_000, ingress=0)
        buf.admit(2_000, ingress=0)
        assert buf.stats.max_occupancy == 6_000

    def test_infinite_buffer_never_drops(self):
        buf = SharedBuffer.infinite()
        for _ in range(1_000):
            assert buf.admit(1_000_000, ingress=0)
        assert buf.stats.dropped_packets == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SharedBuffer(0)

    def test_negative_size_rejected(self):
        buf = SharedBuffer(1_000)
        with pytest.raises(ValueError):
            buf.admit(-1, ingress=0)
        with pytest.raises(ValueError):
            buf.release(-1, ingress=0)


class TestPfcPolicy:
    def test_pause_threshold_is_fraction_of_free(self):
        buf = SharedBuffer(100_000)
        policy = PfcPolicy(threshold_fraction=0.11)
        assert policy.pause_threshold(buf) == pytest.approx(11_000)
        buf.admit(50_000, ingress=0)
        assert policy.pause_threshold(buf) == pytest.approx(5_500)

    def test_should_pause_when_ingress_exceeds_threshold(self):
        buf = SharedBuffer(100_000)
        policy = PfcPolicy(threshold_fraction=0.11)
        buf.admit(5_000, ingress=3)
        assert not policy.should_pause(buf, 3)
        buf.admit(10_000, ingress=3)
        assert policy.should_pause(buf, 3)

    def test_resume_uses_hysteresis(self):
        buf = SharedBuffer(100_000)
        policy = PfcPolicy(threshold_fraction=0.11, resume_ratio=0.5)
        buf.admit(12_000, ingress=0)
        assert policy.should_pause(buf, 0)
        assert not policy.should_resume(buf, 0)
        buf.release(9_000, ingress=0)
        assert policy.should_resume(buf, 0)

    def test_disabled_policy_never_pauses(self):
        buf = SharedBuffer(1_000)
        policy = PfcPolicy(enabled=False)
        buf.admit(1_000, ingress=0)
        assert not policy.should_pause(buf, 0)
        assert policy.should_resume(buf, 0)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            PfcPolicy(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            PfcPolicy(threshold_fraction=1.5)
        with pytest.raises(ValueError):
            PfcPolicy(resume_ratio=0.0)
