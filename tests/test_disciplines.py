"""Unit tests for the baseline queueing disciplines and the DRR scheduler."""

import itertools

import pytest

from repro.sim.disciplines import (
    DeficitRoundRobin,
    FifoDiscipline,
    IdealFqDiscipline,
    SfqDiscipline,
)
from repro.sim.packet import FlowKey, Packet, PacketKind


def make_packet(flow_id: int, size: int = 1048, src: int = 1) -> Packet:
    return Packet(
        kind=PacketKind.DATA,
        flow_id=flow_id,
        key=FlowKey(src=src, dst=99, src_port=flow_id, dst_port=4791),
        size=size,
        flow_size=size,
    )


class TestDeficitRoundRobin:
    def test_single_queue_served_repeatedly(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        sizes = {0: 500}
        for _ in range(5):
            assert drr.select(lambda q: sizes[q]) == 0

    def test_two_queues_alternate(self):
        """The regression that motivated the DRR rewrite: equal-demand queues
        must be interleaved rather than one queue monopolising the scheduler."""
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        drr.activate(1)
        sizes = {0: 1000, 1: 1000}
        served = [drr.select(lambda q: sizes[q]) for _ in range(10)]
        assert served.count(0) == 5
        assert served.count(1) == 5
        # ... and no long monopolising runs.
        longest_run = max(len(list(group)) for _, group in itertools.groupby(served))
        assert longest_run <= 2

    def test_byte_fairness_with_unequal_packet_sizes(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)  # sends 1000-byte packets
        drr.activate(1)  # sends 250-byte packets
        sizes = {0: 1000, 1: 250}
        bytes_served = {0: 0, 1: 0}
        for _ in range(200):
            q = drr.select(lambda q: sizes[q])
            bytes_served[q] += sizes[q]
        ratio = bytes_served[0] / bytes_served[1]
        assert 0.8 <= ratio <= 1.25

    def test_empty_queue_skipped(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        drr.activate(1)
        sizes = {0: None, 1: 500}
        assert drr.select(lambda q: sizes[q]) == 1

    def test_ineligible_queue_skipped(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        drr.activate(1)
        sizes = {0: 500, 1: 500}
        served = [
            drr.select(lambda q: sizes[q], eligible=lambda q: q != 0) for _ in range(4)
        ]
        assert served == [1, 1, 1, 1]

    def test_all_blocked_returns_none(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        assert drr.select(lambda q: 500, eligible=lambda q: False) is None
        assert drr.select(lambda q: None) is None

    def test_no_active_queues(self):
        drr = DeficitRoundRobin()
        assert drr.select(lambda q: 100) is None

    def test_deactivate_removes_queue(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        drr.activate(1)
        drr.deactivate(0)
        assert drr.active_queues() == [1]
        assert drr.select(lambda q: 100) == 1

    def test_deactivate_current_queue_is_safe(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(0)
        drr.activate(1)
        first = drr.select(lambda q: 1000)
        drr.deactivate(first)
        other = 1 - first
        assert drr.select(lambda q: 1000) == other

    def test_reactivation_after_deactivate(self):
        drr = DeficitRoundRobin(quantum=1000)
        drr.activate(5)
        drr.deactivate(5)
        drr.activate(5)
        assert drr.select(lambda q: 100) == 5

    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0)

    def test_three_queues_round_robin_order(self):
        drr = DeficitRoundRobin(quantum=1000)
        for q in range(3):
            drr.activate(q)
        served = [drr.select(lambda q: 1000) for _ in range(9)]
        assert served.count(0) == served.count(1) == served.count(2) == 3


class TestFifoDiscipline:
    def test_fifo_order(self):
        fifo = FifoDiscipline()
        packets = [make_packet(i) for i in range(5)]
        for p in packets:
            fifo.enqueue(p, ingress=0)
        out = [fifo.dequeue() for _ in range(5)]
        assert out == packets

    def test_backlog_accounting(self):
        fifo = FifoDiscipline()
        fifo.enqueue(make_packet(1, size=100), 0)
        fifo.enqueue(make_packet(2, size=200), 0)
        assert fifo.backlog_bytes() == 300
        assert fifo.backlog_packets() == 2
        fifo.dequeue()
        assert fifo.backlog_bytes() == 200

    def test_dequeue_empty(self):
        assert FifoDiscipline().dequeue() is None


class TestSfqDiscipline:
    def test_same_flow_same_queue(self):
        sfq = SfqDiscipline(num_queues=8)
        a = make_packet(1)
        b = make_packet(1)
        assert sfq.queue_for(a) == sfq.queue_for(b)

    def test_flows_spread_across_queues(self):
        sfq = SfqDiscipline(num_queues=32)
        queues = {sfq.queue_for(make_packet(i, src=i)) for i in range(200)}
        assert len(queues) > 16

    def test_round_robin_between_flows(self):
        sfq = SfqDiscipline(num_queues=32)
        # Find two flows that hash to different queues.
        flow_a, flow_b = 1, 2
        while sfq.queue_for(make_packet(flow_a)) == sfq.queue_for(make_packet(flow_b)):
            flow_b += 1
        for _ in range(3):
            sfq.enqueue(make_packet(flow_a), 0)
        for _ in range(3):
            sfq.enqueue(make_packet(flow_b), 0)
        served = [sfq.dequeue().flow_id for _ in range(6)]
        # Interleaved service, not 3 then 3.
        assert served != [flow_a] * 3 + [flow_b] * 3

    def test_backlog_and_occupied_queues(self):
        sfq = SfqDiscipline(num_queues=8)
        sfq.enqueue(make_packet(1, size=100), 0)
        sfq.enqueue(make_packet(2, size=100, src=7), 0)
        assert sfq.backlog_bytes() == 200
        assert sfq.backlog_packets() == 2
        assert 1 <= sfq.occupied_queues() <= 2
        while sfq.dequeue() is not None:
            pass
        assert sfq.backlog_bytes() == 0
        assert sfq.occupied_queues() == 0

    def test_rejects_bad_queue_count(self):
        with pytest.raises(ValueError):
            SfqDiscipline(num_queues=0)


class TestIdealFqDiscipline:
    def test_per_flow_queues(self):
        fq = IdealFqDiscipline()
        for flow in range(10):
            fq.enqueue(make_packet(flow, src=flow), 0)
        assert fq.occupied_queues() == 10

    def test_fair_interleaving(self):
        fq = IdealFqDiscipline()
        for _ in range(5):
            fq.enqueue(make_packet(1), 0)
        for _ in range(5):
            fq.enqueue(make_packet(2, src=2), 0)
        served = [fq.dequeue().flow_id for _ in range(10)]
        # Perfectly alternating service between the two flows.
        assert served[:6] in ([1, 2, 1, 2, 1, 2], [2, 1, 2, 1, 2, 1])

    def test_queue_reclaimed_when_empty(self):
        fq = IdealFqDiscipline()
        fq.enqueue(make_packet(1), 0)
        fq.dequeue()
        assert fq.occupied_queues() == 0
        assert fq.dequeue() is None

    def test_backlog_accounting(self):
        fq = IdealFqDiscipline()
        fq.enqueue(make_packet(1, size=700), 0)
        fq.enqueue(make_packet(2, size=300, src=2), 0)
        assert fq.backlog_bytes() == 1_000
        assert fq.backlog_packets() == 2
