"""Property-test safety net: every registered scheme x every workload shape.

Scheme-specific suites pin each scheme's *mechanism* (marking thresholds,
pause bitmaps, INT fields); this module pins the *contract* every scheme and
workload shape must honour regardless of mechanism:

* a smoke run at micro scale completes without error and makes progress;
* every emitted record is schema-valid and internally consistent;
* every flow the config offered is accounted for in the records;
* the parallel campaign executor reproduces the serial records exactly;
* ``BFC-Est`` at telemetry staleness 0 degenerates to plain ``BFC``
  byte-for-byte (it is the same kernel reading exact state).

The matrix is registry-driven: a newly registered scheme or a new workload
shape is covered the moment it exists, with no test edits.  Keep the smoke
configs micro — the value here is breadth, not depth.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

import pytest
from golden_kernel import canonical_records

from repro.campaign.core import Trial
from repro.campaign.executors import ParallelExecutor
from repro.experiments.runner import ExperimentConfig, TrafficSpec, run_experiment
from repro.experiments.scenarios import _background_traffic, get_scale
from repro.experiments.schemes import available_schemes
from repro.sim import units
from repro.workloads.collectives import CollectiveSpec
from repro.workloads.distributions import GOOGLE
from repro.workloads.openloop import OpenLoopSpec
from repro.workloads.rpc import RpcFanoutSpec

SMOKE_DURATION_NS = units.microseconds(120)

#: The graph shapes carry no background load (runtime is per-flow, and the
#: graphs are a few dozen flows) but their dependency chains must fully
#: drain, and the slower windowed schemes need headroom for that.
GRAPH_DURATION_NS = units.microseconds(600)

SMOKE_SEED = 3

#: The workload shapes of the matrix.  "trace" is the paper's closed-loop
#: background + incast mix; "openloop" drives lazy run-time arrivals through
#: the streaming-harvest path; "collective" and "rpc" launch dependency-driven
#: flow graphs through the FlowGraphLauncher hook.
WORKLOAD_SHAPES = ("trace", "openloop", "collective", "rpc")


def _smoke_scale():
    return replace(get_scale("tiny"), duration_ns=SMOKE_DURATION_NS)


def _smoke_traffic(shape: str) -> TrafficSpec:
    scale = _smoke_scale()
    if shape == "trace":
        return _background_traffic(
            scale, GOOGLE, 0.50, incast_load=0.05, seed=SMOKE_SEED
        )
    if shape == "openloop":
        return TrafficSpec(
            open_loop=OpenLoopSpec(
                distribution=GOOGLE,
                duration_ns=scale.duration_ns,
                target_load=0.40,
                max_flow_size=scale.max_flow_size,
            ),
            seed=SMOKE_SEED,
        )
    if shape == "collective":
        return TrafficSpec(
            flow_graph=CollectiveSpec(
                kind="ring-allreduce",
                num_workers=4,
                chunk_bytes=20_000,
                iterations=1,
            ),
            seed=SMOKE_SEED,
        )
    if shape == "rpc":
        return TrafficSpec(
            flow_graph=RpcFanoutSpec(
                num_requests=2,
                fan_out=2,
                depth=2,
                mean_interarrival_ns=20_000,
            ),
            seed=SMOKE_SEED,
        )
    raise AssertionError(f"unknown workload shape {shape!r}")


def smoke_config(scheme: str, shape: str) -> ExperimentConfig:
    scale = _smoke_scale()
    duration = GRAPH_DURATION_NS if shape in ("collective", "rpc") else scale.duration_ns
    return ExperimentConfig(
        name=f"prop/{shape}/{scheme}",
        scheme=scheme,
        clos=scale.clos,
        traffic=_smoke_traffic(shape),
        buffer_bytes=scale.buffer_bytes(),
        duration_ns=duration,
        seed=SMOKE_SEED,
        mtu=scale.mtu,
    )


#: One shared run per (scheme, shape) cell: the smoke, accounting and
#: degenerate-equivalence tests all read the same result, so the matrix is
#: simulated once per cell no matter how many properties inspect it.
_RESULTS: Dict[Tuple[str, str], object] = {}


def run_cell(scheme: str, shape: str):
    key = (scheme, shape)
    if key not in _RESULTS:
        _RESULTS[key] = run_experiment(smoke_config(scheme, shape))
    return _RESULTS[key]


@pytest.mark.parametrize("shape", WORKLOAD_SHAPES)
@pytest.mark.parametrize("scheme", available_schemes())
class TestSchemeWorkloadMatrix:
    def test_run_completes_and_makes_progress(self, scheme, shape):
        result = run_cell(scheme, shape)
        assert result.events_processed > 0
        assert result.flows_offered > 0
        assert result.flow_stats.records, (scheme, shape)
        # A scheme that finishes nothing inside the window is broken, not slow.
        finished = [r for r in result.flow_stats.records if r.finish_ns is not None]
        assert finished, (scheme, shape)

    def test_records_are_schema_valid(self, scheme, shape):
        result = run_cell(scheme, shape)
        seen_ids = set()
        for rec in result.flow_stats.records:
            assert isinstance(rec.flow_id, int) and rec.flow_id >= 0
            assert rec.flow_id not in seen_ids, f"duplicate record {rec.flow_id}"
            seen_ids.add(rec.flow_id)
            assert isinstance(rec.src, int) and isinstance(rec.dst, int)
            assert rec.src != rec.dst
            assert isinstance(rec.size, int) and rec.size >= 1
            assert isinstance(rec.start_ns, int) and rec.start_ns >= 0
            assert isinstance(rec.tag, str) and rec.tag
            assert isinstance(rec.is_incast, bool)
            assert rec.retransmissions >= 0
            if rec.finish_ns is None:
                assert rec.slowdown is None
            else:
                assert rec.finish_ns > rec.start_ns
                assert rec.slowdown is not None and rec.slowdown >= 1.0

    def test_every_offered_flow_is_accounted(self, scheme, shape):
        result = run_cell(scheme, shape)
        # Every offered flow produced exactly one record — finished or not.
        assert len(result.flow_stats.records) == result.flows_offered
        if shape in ("collective", "rpc"):
            graph = smoke_config(scheme, shape).traffic.build_graph(
                sorted({r.src for r in result.flow_stats.records}
                       | {r.dst for r in result.flow_stats.records})
            )
            recorded = {r.flow_id for r in result.flow_stats.records}
            tagged = [r for r in result.flow_stats.records if r.tag in ("collective", "rpc")]
            assert len(tagged) == len(graph.flows)
            # Dependency-driven flows must actually have launched and drained:
            # a wedged launcher shows up as unfinished graph flows here.
            assert all(r.finish_ns is not None for r in tagged), (scheme, shape)
            assert recorded.issuperset({f.flow_id for f in graph.flows} & recorded)


class TestExecutorEquivalence:
    """The parallel campaign executor must not change what is simulated."""

    def test_parallel_records_match_serial(self):
        # One trial per workload shape, under a scheme with runtime state
        # rich enough to expose divergence (telemetry history + RNG draws).
        trials = [
            Trial(
                name=f"exec/{shape}",
                label=shape,
                scheme="BFC-Est",
                seed=SMOKE_SEED,
                config=smoke_config("BFC-Est", shape),
            )
            for shape in WORKLOAD_SHAPES
        ]
        parallel = ParallelExecutor(workers=2).run(trials)
        for trial, (record, result) in zip(trials, parallel):
            serial = canonical_records(run_cell("BFC-Est", trial.label))
            assert canonical_records(result) == serial, trial.label


class TestSpillSinkEquivalence:
    """Flow-graph workloads must compose with the streaming spill sink."""

    @pytest.mark.parametrize("shape", ("collective", "rpc"))
    def test_spilled_graph_records_match_in_memory(self, shape, tmp_path):
        mem = run_cell("BFC", shape)
        spill = run_experiment(
            replace(smoke_config("BFC", shape), results_dir=str(tmp_path))
        )
        assert spill.results_ref is not None
        assert spill.events_processed == mem.events_processed
        assert spill.flow_stats.records == mem.flow_stats.records


@pytest.mark.parametrize("shape", WORKLOAD_SHAPES)
class TestEstimatorDegeneratesToExact:
    """BFC-Est with fresh telemetry IS BFC — same kernel, exact state."""

    def test_zero_staleness_records_identical(self, shape):
        exact = canonical_records(run_cell("BFC", shape))
        est = canonical_records(run_cell("BFC-Est", shape))
        # Only the label may differ; every simulated byte must match.
        assert exact.pop("scheme") == "BFC"
        assert est.pop("scheme") == "BFC-Est"
        assert est == exact, shape
