"""Unit tests for physical-queue assignment and pause thresholds / resume lists."""

import random

import pytest

from repro.core.config import BfcConfig
from repro.core.pause import PauseThresholds, ResumeList
from repro.core.queues import PhysicalQueuePool
from repro.sim import units


class TestPhysicalQueuePool:
    def test_distinct_queues_until_exhausted(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=8))
        queues = [pool.assign(vfid=i) for i in range(8)]
        assert sorted(queues) == list(range(8))
        assert pool.stats.collisions == 0
        assert pool.occupied_queues() == 8
        assert pool.free_queues() == 0

    def test_collision_when_all_queues_taken(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=4))
        for i in range(4):
            pool.assign(i)
        extra = pool.assign(99)
        assert 0 <= extra < 4
        assert pool.stats.collisions == 1
        assert pool.assigned_flows(extra) == 2

    def test_release_returns_queue_to_free_pool(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=2))
        q0 = pool.assign(0)
        q1 = pool.assign(1)
        pool.release(q0)
        assert pool.free_queues() == 1
        q2 = pool.assign(2)
        assert q2 == q0
        assert pool.stats.collisions == 0

    def test_release_without_assignment_rejected(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=2))
        with pytest.raises(ValueError):
            pool.release(0)

    def test_shared_queue_released_only_when_last_flow_leaves(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=1))
        q = pool.assign(0)
        q2 = pool.assign(1)  # collision, same queue
        assert q == q2
        pool.release(q)
        assert pool.occupied_queues() == 1
        pool.release(q)
        assert pool.occupied_queues() == 0

    def test_static_assignment_uses_vfid_hash(self):
        config = BfcConfig(num_physical_queues=8, static_queue_assignment=True)
        pool = PhysicalQueuePool(config)
        assert pool.assign(vfid=13) == 13 % 8
        assert pool.assign(vfid=21) == 21 % 8
        # Same hash bucket counts as a collision if already occupied.
        pool2 = PhysicalQueuePool(config)
        pool2.assign(vfid=3)
        pool2.assign(vfid=3 + 8)
        assert pool2.stats.collisions == 1

    def test_static_assignment_collides_more_than_dynamic(self):
        rng = random.Random(0)
        vfids = [rng.randrange(16_384) for _ in range(24)]
        dynamic = PhysicalQueuePool(BfcConfig(num_physical_queues=32))
        static = PhysicalQueuePool(
            BfcConfig(num_physical_queues=32, static_queue_assignment=True)
        )
        for v in vfids:
            dynamic.assign(v)
            static.assign(v)
        assert dynamic.stats.collisions == 0
        assert static.stats.collisions > 0

    def test_collision_fraction(self):
        pool = PhysicalQueuePool(BfcConfig(num_physical_queues=1))
        pool.assign(0)
        pool.assign(1)
        assert pool.stats.collision_fraction() == pytest.approx(0.5)


class TestPauseThresholds:
    def test_threshold_formula(self):
        """Th = (HRTT + tau) * mu / Nactive with tau = HRTT/2."""
        config = BfcConfig(hop_rtt_ns=2_000, mtu=1000)
        thresholds = PauseThresholds(config, units.gbps(100), link_delay_ns=1_000)
        assert thresholds.hop_rtt_ns == 2_000
        assert thresholds.pause_interval_ns == 1_000
        # (2 us + 1 us) * 12.5 GB/s = 37.5 KB for one active queue.
        assert thresholds.threshold_bytes(1) == pytest.approx(37_500, rel=0.01)
        assert thresholds.threshold_bytes(10) == pytest.approx(3_750, rel=0.01)

    def test_nactive_floor_of_one(self):
        config = BfcConfig(hop_rtt_ns=2_000)
        thresholds = PauseThresholds(config, units.gbps(10), 1_000)
        assert thresholds.threshold_bytes(0) == thresholds.threshold_bytes(1)

    def test_derived_hop_rtt_includes_serialization(self):
        config = BfcConfig(mtu=1000)
        thresholds = PauseThresholds(config, units.gbps(10), link_delay_ns=1_000)
        # 2 * (1 us propagation + ~0.84 us serialization) ~ 3.7 us.
        assert 3_000 < thresholds.hop_rtt_ns < 4_500
        assert thresholds.pause_interval_ns == thresholds.hop_rtt_ns // 2

    def test_threshold_factor_scales(self):
        base = PauseThresholds(BfcConfig(hop_rtt_ns=2_000), units.gbps(10), 1_000)
        double = PauseThresholds(
            BfcConfig(hop_rtt_ns=2_000, pause_threshold_factor=2.0), units.gbps(10), 1_000
        )
        assert double.threshold_bytes(4) == pytest.approx(2 * base.threshold_bytes(4))

    def test_feedback_delay(self):
        thresholds = PauseThresholds(BfcConfig(hop_rtt_ns=2_000), units.gbps(10), 1_000)
        assert thresholds.feedback_delay_ns() == 3_000


class TestResumeList:
    def test_fifo_order(self):
        lst = ResumeList()
        lst.add(1, 0)
        lst.add(2, 0)
        lst.add(3, 1)
        assert lst.pop() == (1, 0)
        assert lst.pop() == (2, 0)
        assert lst.pop() == (3, 1)
        assert lst.pop() is None

    def test_duplicate_add_rejected(self):
        lst = ResumeList()
        assert lst.add(1, 0)
        assert not lst.add(1, 0)
        assert len(lst) == 1

    def test_same_vfid_different_ingress_are_distinct(self):
        lst = ResumeList()
        assert lst.add(1, 0)
        assert lst.add(1, 1)
        assert len(lst) == 2

    def test_discard(self):
        lst = ResumeList()
        lst.add(1, 0)
        lst.add(2, 0)
        lst.discard(1, 0)
        assert not lst.contains(1, 0)
        assert lst.pop() == (2, 0)

    def test_discard_missing_is_noop(self):
        lst = ResumeList()
        lst.discard(9, 9)
        assert len(lst) == 0

    def test_readd_after_pop(self):
        lst = ResumeList()
        lst.add(1, 0)
        lst.pop()
        assert lst.add(1, 0)
