"""Tests for the scheme registry and its switch/host factories."""

import pytest

from repro.congestion.dcqcn import DcqcnControl, DcqcnWindowedControl
from repro.congestion.hpcc import HpccControl
from repro.core.config import BfcConfig
from repro.core.nic import BfcNicScheduler
from repro.core.switchlogic import BfcSwitch
from repro.experiments.schemes import (
    SCHEMES,
    SchemeEnvironment,
    available_schemes,
    get_scheme,
)
from repro.sim import units
from repro.sim.disciplines import FifoDiscipline, IdealFqDiscipline, SfqDiscipline
from repro.sim.engine import Simulator
from repro.sim.host import WindowedCongestionControl
from repro.sim.port import connect


PAPER_SCHEMES = [
    "BFC",
    "Ideal-FQ",
    "DCQCN",
    "DCQCN+Win",
    "HPCC",
    "DCQCN+Win+SFQ",
    "BFC-VFID",
    "SFQ+InfBuffer",
    "BFC-HighPriorityQ",
    "BFC-BufferOpt",
]


def make_env(sim=None) -> SchemeEnvironment:
    sim = sim or Simulator(seed=1)
    return SchemeEnvironment(
        sim=sim,
        link_rate_bps=units.gbps(10),
        link_delay_ns=1_000,
        base_rtt_ns=8_000,
        bdp_bytes=12_500,
        buffer_bytes=200_000,
        bfc_config=BfcConfig(mtu=1000),
    )


def build_pairing(scheme_name):
    sim = Simulator(seed=1)
    env = make_env(sim)
    spec = get_scheme(scheme_name)
    switch = spec.switch_factory(env)("sw0", "tor")
    host = spec.host_factory(env)("h0", 0)
    connect(host, switch, rate_bps=env.link_rate_bps, delay_ns=env.link_delay_ns)
    return env, switch, host


class TestRegistry:
    def test_all_paper_schemes_available(self):
        for scheme in PAPER_SCHEMES:
            assert scheme in SCHEMES

    def test_available_schemes_listing(self):
        assert set(available_schemes()) == set(SCHEMES)

    def test_unknown_scheme_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_scheme("NotAScheme")

    def test_descriptions_present(self):
        for spec in SCHEMES.values():
            assert spec.description

    def test_bfc_schemes_flagged(self):
        assert SCHEMES["BFC"].uses_bfc
        assert SCHEMES["BFC-VFID"].uses_bfc
        assert not SCHEMES["DCQCN"].uses_bfc


class TestSwitchWiring:
    def test_dcqcn_switch_uses_fifo_and_ecn(self):
        _, switch, _ = build_pairing("DCQCN")
        assert isinstance(switch.interfaces[0].tx.discipline, FifoDiscipline)
        assert switch.ecn.enabled
        assert switch.pfc.enabled
        assert not switch.int_enabled

    def test_hpcc_switch_uses_int_not_ecn(self):
        _, switch, _ = build_pairing("HPCC")
        assert switch.int_enabled
        assert not switch.ecn.enabled

    def test_sfq_switch_has_32_queues(self):
        _, switch, _ = build_pairing("DCQCN+Win+SFQ")
        discipline = switch.interfaces[0].tx.discipline
        assert isinstance(discipline, SfqDiscipline)
        assert discipline.num_queues == 32

    def test_ideal_fq_switch_has_infinite_buffer_and_no_pfc(self):
        _, switch, _ = build_pairing("Ideal-FQ")
        assert isinstance(switch.interfaces[0].tx.discipline, IdealFqDiscipline)
        assert switch.buffer.capacity > 10**15
        assert not switch.pfc.enabled

    def test_sfq_infbuffer_switch(self):
        _, switch, _ = build_pairing("SFQ+InfBuffer")
        assert isinstance(switch.interfaces[0].tx.discipline, SfqDiscipline)
        assert switch.buffer.capacity > 10**15

    def test_bfc_switch_type_and_pfc_backstop(self):
        _, switch, _ = build_pairing("BFC")
        assert isinstance(switch, BfcSwitch)
        assert switch.pfc.enabled
        assert not switch.bfc_config.static_queue_assignment

    def test_bfc_ablation_configs(self):
        _, vfid_switch, _ = build_pairing("BFC-VFID")
        assert vfid_switch.bfc_config.static_queue_assignment
        _, hp_switch, _ = build_pairing("BFC-HighPriorityQ")
        assert not hp_switch.bfc_config.use_high_priority_queue
        _, bo_switch, _ = build_pairing("BFC-BufferOpt")
        assert not bo_switch.bfc_config.limit_resume_rate

    def test_dcqcn_ecn_thresholds_scale_with_bdp(self):
        env = make_env()
        ecn = env.ecn()
        assert ecn.kmin == env.bdp_bytes
        assert ecn.kmax == 4 * env.bdp_bytes


class TestHostWiring:
    def test_dcqcn_host_cc(self):
        _, _, host = build_pairing("DCQCN")
        assert isinstance(host.cc, DcqcnControl)
        assert not isinstance(host.cc, DcqcnWindowedControl)
        assert host.config.window_cap_bytes is None

    def test_dcqcn_win_host_has_bdp_window(self):
        env, _, host = build_pairing("DCQCN+Win")
        assert isinstance(host.cc, DcqcnWindowedControl)

    def test_hpcc_host_stamps_int(self):
        _, _, host = build_pairing("HPCC")
        assert isinstance(host.cc, HpccControl)
        assert host.config.int_enabled

    def test_ideal_fq_host_windowed(self):
        _, _, host = build_pairing("Ideal-FQ")
        assert isinstance(host.cc, WindowedCongestionControl)

    def test_bfc_host_uses_bfc_nic_and_marks_first_packet(self):
        _, _, host = build_pairing("BFC")
        assert isinstance(host.nic, BfcNicScheduler)
        assert host.config.mark_first_packet
        assert host.config.window_cap_bytes is None

    def test_pfc_scheme_line_rate_host(self):
        _, _, host = build_pairing("PFC")
        assert type(host.cc).__name__ == "CongestionControl"
