"""Tests for the analysis layer (FCT binning, buffer CDFs, report rendering)."""

import math

import pytest

from repro.analysis.buffers import cdf_points, occupancy_cdf, occupancy_percentiles, pause_time_by_link_class
from repro.analysis.fct import (
    PAPER_SIZE_BINS,
    FctBin,
    bin_slowdowns,
    slowdown_series,
    summarize_slowdowns,
)
from repro.analysis.report import (
    BROADCOM_TREND,
    format_comparison_table,
    format_series_table,
    hardware_trend_table,
    render_cdf_table,
)
from repro.sim.stats import FlowRecord


def record(size, slowdown, incast=False, finished=True):
    return FlowRecord(
        flow_id=size,
        src=0,
        dst=1,
        size=size,
        start_ns=0,
        finish_ns=100 if finished else None,
        slowdown=slowdown if finished else None,
        is_incast=incast,
        tag="normal",
    )


class TestBins:
    def test_paper_bins_cover_all_sizes(self):
        for size in (1, 500, 5_000, 50_000, 500_000, 5_000_000, 50_000_000):
            assert any(b.contains(size) for b in PAPER_SIZE_BINS)

    def test_bins_are_disjoint(self):
        for size in (1, 999, 1_000, 9_999, 123_456):
            matches = [b for b in PAPER_SIZE_BINS if b.contains(size)]
            assert len(matches) == 1

    def test_bin_labels(self):
        labels = [b.label for b in PAPER_SIZE_BINS]
        assert labels[0].startswith("<")
        assert labels[-1].startswith(">")


class TestSlowdownSeries:
    def test_grouping_by_size(self):
        records = [record(500, 2.0), record(600, 4.0), record(50_000, 8.0)]
        grouped = bin_slowdowns(records)
        assert grouped["<1KB"] == [2.0, 4.0]
        assert 8.0 in grouped["30-100KB"]

    def test_incast_excluded_by_default(self):
        records = [record(500, 2.0), record(500, 99.0, incast=True)]
        grouped = bin_slowdowns(records)
        assert grouped["<1KB"] == [2.0]
        grouped_all = bin_slowdowns(records, include_incast=True)
        assert sorted(grouped_all["<1KB"]) == [2.0, 99.0]

    def test_unfinished_flows_ignored(self):
        records = [record(500, 2.0), record(500, None, finished=False)]
        grouped = bin_slowdowns(records)
        assert grouped["<1KB"] == [2.0]

    def test_series_reports_percentile_and_count(self):
        records = [record(500, float(i)) for i in range(1, 101)]
        series = slowdown_series(records, quantile=99.0)
        label, value, count = series[0]
        assert label == "<1KB"
        assert count == 100
        assert value == pytest.approx(99.0, abs=1.0)

    def test_series_empty_bins_are_nan(self):
        series = slowdown_series([record(500, 2.0)])
        empty = [value for label, value, count in series if count == 0]
        assert all(math.isnan(v) for v in empty)

    def test_summary_statistics(self):
        records = [record(500, float(i)) for i in range(1, 11)]
        summary = summarize_slowdowns(records)
        assert summary["count"] == 10
        assert summary["mean"] == pytest.approx(5.5)
        assert summary["max"] == 10.0

    def test_summary_of_nothing(self):
        assert summarize_slowdowns([])["count"] == 0

    def test_custom_bins(self):
        bins = [FctBin(0, 1_000, "tiny"), FctBin(1_000, 1 << 62, "rest")]
        series = slowdown_series([record(10, 3.0), record(5_000, 7.0)], bins=bins)
        assert series[0][0] == "tiny" and series[0][1] == 3.0
        assert series[1][0] == "rest" and series[1][1] == 7.0


class TestBufferAnalysis:
    def test_cdf_points_monotone(self):
        samples = list(range(100))
        points = cdf_points(samples, points=10)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_of_empty(self):
        assert cdf_points([]) == []

    def test_occupancy_cdf_converts_to_mb(self):
        points = occupancy_cdf([1_000_000, 2_000_000, 3_000_000], points=3)
        assert points[-1][0] == pytest.approx(3.0)

    def test_occupancy_percentiles(self):
        stats = occupancy_percentiles(list(range(0, 1_000_000, 10_000)))
        assert stats["max"] == 990_000
        assert 0 < stats["p50"] < stats["p99"] <= stats["max"]
        assert occupancy_percentiles([])["p99"] == 0.0

    def test_pause_time_by_link_class(self):
        result = pause_time_by_link_class(
            {"tor->spine": [0.1, 0.3], "spine->tor": [], "host->tor": [0.0]}
        )
        assert result["tor->spine"] == pytest.approx(20.0)
        assert result["spine->tor"] == 0.0
        assert result["host->tor"] == 0.0


class TestReportRendering:
    def test_series_table_contains_schemes_and_bins(self):
        records_a = [record(500, 2.0), record(5_000, 4.0)]
        records_b = [record(500, 8.0), record(5_000, 16.0)]
        table = format_series_table(
            "Fig 5a",
            {
                "BFC": slowdown_series(records_a),
                "DCQCN": slowdown_series(records_b),
            },
        )
        assert "Fig 5a" in table
        assert "BFC" in table and "DCQCN" in table
        assert "<1KB" in table
        assert "8.00" in table

    def test_comparison_table(self):
        table = format_comparison_table(
            "Utilization",
            {"BFC": {"10": 0.99, "100": 0.97}, "DCQCN+Win": {"10": 0.9}},
            columns=["10", "100"],
        )
        assert "BFC" in table and "DCQCN+Win" in table
        assert "0.990" in table
        assert "-" in table  # missing value rendered as a dash

    def test_cdf_table(self):
        table = render_cdf_table(
            "Buffer occupancy",
            {"BFC": [(0.5, 0.5), (1.0, 1.0)], "DCQCN": [(2.0, 0.5), (4.0, 1.0)]},
        )
        assert "Buffer occupancy" in table
        assert "BFC" in table and "DCQCN" in table

    def test_hardware_trend_matches_paper_figure(self):
        rows = hardware_trend_table()
        assert len(rows) == len(BROADCOM_TREND) == 4
        by_chip = {r["chip"]: r for r in rows}
        # Fig. 1's claim: the buffer/capacity ratio halves from ~80 us to ~40 us.
        assert by_chip["Trident2"]["buffer_over_capacity_us"] > 70
        assert by_chip["Tomahawk3"]["buffer_over_capacity_us"] == pytest.approx(40, abs=5)
        assert (
            by_chip["Tomahawk3"]["buffer_over_capacity_us"]
            < by_chip["Trident2"]["buffer_over_capacity_us"] / 1.5
        )

    def test_hardware_trend_capacity_increases(self):
        rows = hardware_trend_table()
        capacities = [r["capacity_tbps"] for r in rows]
        assert capacities == sorted(capacities)
