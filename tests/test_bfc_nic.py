"""Unit tests for the BFC host NIC (Bloom-filter pause handling)."""

from repro.core.bloom import BloomFilterCodec
from repro.core.config import BfcConfig
from repro.core.nic import BfcNicScheduler, bfc_nic_class
from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.host import Host, HostConfig
from repro.sim.node import Node
from repro.sim.packet import FlowKey, Packet, PacketKind
from repro.sim.port import connect


class SinkNode(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, iface_index):
        self.received.append((self.sim.now, packet))


def make_host(sim, config=None, host_config=None):
    config = config or BfcConfig()
    host = Host(
        sim,
        "h0",
        host_id=0,
        config=host_config or HostConfig(mtu=1000, mark_first_packet=True),
        nic_class=bfc_nic_class(config),
    )
    sink = SinkNode(sim, "sink")
    connect(host, sink, rate_bps=units.gbps(10), delay_ns=1_000)
    return host, sink, config


def bloom_frame(codec: BloomFilterCodec, vfids) -> Packet:
    return Packet(
        kind=PacketKind.BLOOM,
        flow_id=0,
        key=FlowKey(-2, -2, 0, 0),
        size=codec.size_bytes + 18,
        bloom_bits=codec.encode(vfids),
    )


class TestBfcNic:
    def test_nic_class_binds_config(self):
        config = BfcConfig(num_vfids=1_024, bloom_filter_bytes=32)
        cls = bfc_nic_class(config)
        assert issubclass(cls, BfcNicScheduler)
        assert cls.CONFIG is config

    def test_unpaused_flow_sends(self, sim):
        host, sink, _ = make_host(sim)
        flow = Flow(src=0, dst=5, size=3_000, start_ns=0)
        host.start_flow(flow)
        sim.run(until=units.microseconds(50))
        data = [p for _, p in sink.received if p.kind is PacketKind.DATA]
        assert len(data) == 3

    def test_first_packet_is_marked(self, sim):
        host, sink, _ = make_host(sim)
        flow = Flow(src=0, dst=5, size=3_000, start_ns=0)
        host.start_flow(flow)
        sim.run(until=units.microseconds(50))
        data = sorted(
            (p for _, p in sink.received if p.kind is PacketKind.DATA),
            key=lambda p: p.seq,
        )
        assert data[0].first_of_flow
        assert not any(p.first_of_flow for p in data[1:])

    def test_paused_flow_stops_sending(self, sim):
        host, sink, config = make_host(sim)
        flow = Flow(src=0, dst=5, size=50_000, start_ns=0)
        state = host.start_flow(flow)
        codec = host.nic.codec
        vfid = flow.key().vfid(config.num_vfids)
        # Let a few packets out, then pause the flow.
        sim.run(until=units.microseconds(5))
        sent_before = len(sink.received)
        host.receive(bloom_frame(codec, [vfid]), 0)
        sim.run(until=units.microseconds(100))
        sent_after = len(sink.received)
        # Only packets already serialized or propagating when the pause
        # arrived may still show up (one on the wire, one in flight).
        assert sent_after - sent_before <= 2
        assert host.nic.paused_flow_count() == 1

    def test_other_flows_keep_sending_while_one_is_paused(self, sim):
        host, sink, config = make_host(sim)
        paused_flow = Flow(src=0, dst=5, size=50_000, start_ns=0, src_port=1)
        other_flow = Flow(src=0, dst=6, size=50_000, start_ns=0, src_port=2)
        host.start_flow(paused_flow)
        host.start_flow(other_flow)
        codec = host.nic.codec
        vfid = paused_flow.key().vfid(config.num_vfids)
        host.receive(bloom_frame(codec, [vfid]), 0)
        sim.run(until=units.microseconds(100))
        sent = [p for _, p in sink.received if p.kind is PacketKind.DATA]
        paused_sent = [p for p in sent if p.flow_id == paused_flow.flow_id]
        other_sent = [p for p in sent if p.flow_id == other_flow.flow_id]
        assert len(other_sent) > 20
        assert len(paused_sent) <= 1

    def test_resume_restarts_transmission(self, sim):
        host, sink, config = make_host(sim)
        flow = Flow(src=0, dst=5, size=20_000, start_ns=0)
        host.start_flow(flow)
        codec = host.nic.codec
        vfid = flow.key().vfid(config.num_vfids)
        host.receive(bloom_frame(codec, [vfid]), 0)
        sim.run(until=units.microseconds(50))
        sent_paused = len([p for _, p in sink.received if p.kind is PacketKind.DATA])
        host.receive(bloom_frame(codec, []), 0)  # all-clear
        sim.run(until=units.microseconds(200))
        sent_final = len([p for _, p in sink.received if p.kind is PacketKind.DATA])
        assert sent_final == 20
        assert sent_final > sent_paused

    def test_bloom_frame_counted(self, sim):
        host, sink, config = make_host(sim)
        codec = BloomFilterCodec(config.bloom_filter_bytes, config.bloom_hash_functions)
        host.receive(bloom_frame(codec, [1, 2, 3]), 0)
        assert host.nic.bloom_frames_received == 1

    def test_false_positive_pauses_unrelated_flow(self, sim):
        """A deliberately tiny filter makes false positives likely; the NIC
        treats them as pauses exactly as the paper describes."""
        config = BfcConfig(bloom_filter_bytes=1, bloom_hash_functions=1)
        host, sink, _ = make_host(sim, config=config)
        codec = host.nic.codec
        flow = Flow(src=0, dst=5, size=10_000, start_ns=0)
        host.start_flow(flow)
        vfid = flow.key().vfid(config.num_vfids)
        # Find a different VFID that collides with this flow's bits.
        other = next(
            v
            for v in range(20_000)
            if v != vfid
            and set(codec.bit_positions(v)) >= set(codec.bit_positions(vfid))
        )
        host.receive(bloom_frame(codec, [other]), 0)
        assert host.nic.paused_flow_count() == 1
