"""Unit tests for the CI bench-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def report(**pps):
    return {
        "schemes": {name: {"packets_per_sec": value} for name, value in pps.items()}
    }


class TestCompare:
    def test_identical_reports_pass(self):
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        result = check_regression.compare(base, report(BFC=100_000.0, DCQCN=200_000.0))
        assert result["passed"]
        assert result["machine_factor"] == pytest.approx(1.0)

    def test_uniformly_faster_machine_passes(self):
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        cur = report(BFC=250_000.0, DCQCN=500_000.0)
        result = check_regression.compare(base, cur)
        assert result["passed"]
        assert result["machine_factor"] == pytest.approx(2.5)

    def test_single_scheme_regression_fails_at_full_relative_drop(self):
        """A 30% drop in one scheme must fail even with only two schemes.

        (Geometric-mean normalization would have diluted this to a 16%
        normalized drop and let it pass; the max-ratio normalization judges
        the scheme by its full drop relative to the unregressed one.)
        """
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        cur = report(BFC=100_000.0, DCQCN=140_000.0)  # DCQCN at 0.70x
        result = check_regression.compare(base, cur)
        assert not result["passed"]
        assert result["failures"] == ["DCQCN"]
        dcqcn = next(r for r in result["rows"] if r["scheme"] == "DCQCN")
        assert dcqcn["normalized"] == pytest.approx(0.70)

    def test_regression_on_faster_machine_still_fails(self):
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        cur = report(BFC=200_000.0, DCQCN=200_000.0)  # 2x machine, DCQCN flat
        result = check_regression.compare(base, cur)
        assert not result["passed"]
        assert result["failures"] == ["DCQCN"]

    def test_uniform_regression_needs_absolute_mode(self):
        """The documented blind spot: a uniform slowdown passes the
        normalized gate and only --absolute catches it."""
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        cur = report(BFC=60_000.0, DCQCN=120_000.0)
        assert check_regression.compare(base, cur)["passed"]
        assert not check_regression.compare(base, cur, absolute=True)["passed"]

    def test_missing_scheme_fails(self):
        base = report(BFC=100_000.0, DCQCN=200_000.0)
        result = check_regression.compare(base, report(BFC=100_000.0))
        assert not result["passed"]
        assert result["missing"] == ["DCQCN"]

    def test_disjoint_schemes_raise(self):
        with pytest.raises(check_regression.RegressionCheckError):
            check_regression.compare(report(BFC=1.0), report(HPCC=1.0))


class TestMain:
    def test_exit_codes_and_table(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(report(BFC=100_000.0, DCQCN=200_000.0)))
        cur_path.write_text(json.dumps(report(BFC=101_000.0, DCQCN=199_000.0)))
        rc = check_regression.main(
            ["--baseline", str(base_path), "--current", str(cur_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out and "| BFC |" in out

        cur_path.write_text(json.dumps(report(BFC=50_000.0, DCQCN=200_000.0)))
        rc = check_regression.main(
            ["--baseline", str(base_path), "--current", str(cur_path)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "BFC" in out

    def test_unreadable_input_is_reported(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        good = tmp_path / "good.json"
        good.write_text(json.dumps(report(BFC=1.0)))
        rc = check_regression.main(
            ["--baseline", str(missing), "--current", str(good)]
        )
        assert rc == 1
        assert "check_regression" in capsys.readouterr().err
