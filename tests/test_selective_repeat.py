"""Tests for IRN-style selective-repeat loss recovery (HostConfig.loss_recovery).

The BFC paper's related-work section discusses replacing Go-Back-N with
selective retransmission (IRN); this optional mode implements it: the
receiver buffers out-of-order packets and the sender retransmits only what is
missing.
"""

import pytest

from repro.sim import units
from repro.sim.buffer import PfcPolicy
from repro.sim.flow import Flow
from repro.sim.host import HostConfig

from tests.test_host import build_pair, force_drops


def sr_config(**overrides):
    defaults = dict(loss_recovery="selective-repeat", rto_ns=units.microseconds(200))
    defaults.update(overrides)
    return HostConfig(**defaults)


class TestConfig:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            HostConfig(loss_recovery="hope-for-the-best")

    def test_default_is_go_back_n(self):
        assert HostConfig().loss_recovery == "go-back-n"


class TestSingleLoss:
    def test_single_loss_recovered_without_rewind(self, sim):
        hosts, switch, _ = build_pair(sim, host_config=sr_config())
        dropped = force_drops(
            switch,
            lambda p, seen=[]: p.seq == 10 and not seen and seen.append(1) is None,
        )
        flow = Flow(src=0, dst=1, size=30_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert len(dropped) == 1
        assert flow.completed
        assert flow.bytes_delivered == 30_000
        # Exactly one packet is retransmitted — no Go-Back-N rewind.
        assert flow.retransmitted_packets == 1
        assert hosts[0].counters.get("go_back_n_rewinds") == 0
        assert hosts[0].counters.get("selective_retransmissions") == 1

    def test_gbn_retransmits_more_than_selective_repeat(self, sim):
        """The headline benefit of IRN: far fewer retransmitted packets."""

        def run(mode):
            from repro.sim.engine import Simulator

            local_sim = Simulator(seed=5)
            hosts, switch, _ = build_pair(
                local_sim,
                host_config=HostConfig(loss_recovery=mode, rto_ns=units.microseconds(200)),
            )
            force_drops(
                switch,
                lambda p, seen=[]: p.seq == 5 and not seen and seen.append(1) is None,
            )
            flow = Flow(src=0, dst=1, size=40_000, start_ns=0)
            hosts[0].start_flow(flow)
            local_sim.run(until=units.milliseconds(2))
            assert flow.completed
            return flow.retransmitted_packets

        gbn = run("go-back-n")
        irn = run("selective-repeat")
        assert irn == 1
        assert gbn > irn

    def test_tail_loss_recovered_by_rto(self, sim):
        hosts, switch, _ = build_pair(sim, host_config=sr_config(rto_ns=units.microseconds(100)))
        last_seq = 29
        dropped = force_drops(
            switch,
            lambda p, seen=[]: p.seq == last_seq and not seen and seen.append(1) is None,
        )
        flow = Flow(src=0, dst=1, size=30_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert len(dropped) == 1
        assert flow.completed
        assert hosts[0].counters.get("rto_rewinds") >= 1


class TestHeavyLoss:
    def test_overloaded_switch_still_completes(self, sim):
        config = sr_config(window_cap_bytes=12_500)
        hosts, switch, _ = build_pair(
            sim, buffer_bytes=5_000, num_hosts=3, host_config=config
        )
        switch.pfc = PfcPolicy(enabled=False)
        flows = [
            Flow(src=0, dst=2, size=40_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=40_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(10))
        assert switch.dropped_packets() > 0
        assert all(f.completed for f in flows)
        assert all(f.bytes_delivered == 40_000 for f in flows)

    def test_out_of_order_data_is_buffered_not_discarded(self, sim):
        """After a single loss, the packets that followed the lost one must
        not be retransmitted (they were buffered at the receiver)."""
        hosts, switch, _ = build_pair(sim, host_config=sr_config())
        force_drops(
            switch,
            lambda p, seen=[]: p.seq == 3 and not seen and seen.append(1) is None,
        )
        flow = Flow(src=0, dst=1, size=20_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert flow.completed
        # 20 data packets + 1 retransmission of seq 3.
        assert hosts[0].counters.get("data_packets_sent") == 21
