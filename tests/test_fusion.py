"""Event-fusion and packet-train semantics.

The fused egress port commits several packets per scheduling decision (a
"train"), each chosen by replaying the NIC's full scheduler scan at that
packet's future start instant.  The contract is *exact equivalence*: the
wire carries the same packets, in the same order, at the same times as
per-packet (``nic_train_packets=1``) operation — only the engine event count
changes.  These tests pin that contract end to end:

* delivered-packet sequences are identical with trains on and off, for
  uncontended, DRR-interleaved and mid-run flow-arrival scenarios;
* every mid-train invalidation (PFC pause, BFC Bloom pause, control frame)
  truncates the committed tail so reaction latency matches the unfused
  engine, and a Bloom re-broadcast that changes nothing preserves it;
* windowed/feedback congestion control disables trains entirely;
* the full golden-records scenario is invariant (minus event counts) to
  ``nic_train_packets``.
"""

from __future__ import annotations

import functools

import pytest

from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.host import HostConfig, WindowedCongestionControl
from repro.sim.packet import PacketKind

from test_bfc_nic import SinkNode, bloom_frame, make_host
from test_host import build_pair


def _delivered(seen):
    """Stable (time, receiver, flow, seq) view of a delivery spy log."""
    return list(seen)


def _spy_all_hosts(sim, hosts):
    seen = []
    for i, host in enumerate(hosts):
        original = host.handle_packet

        def spy(packet, iface_index, _orig=original, _hid=i):
            if packet.kind is PacketKind.DATA:
                seen.append((sim.now, _hid, packet.flow_id, packet.seq))
            _orig(packet, iface_index)

        host.handle_packet = spy
    return seen


def _run_pair_scenario(trains: bool, *, cc_factory=None, staggered=False):
    reset_flow_ids()
    sim = Simulator(seed=42)
    config = HostConfig(nic_train_packets=8 if trains else 1)
    hosts, switch, _ = build_pair(
        sim, num_hosts=3, host_config=config, cc_factory=cc_factory
    )
    seen = _spy_all_hosts(sim, hosts)
    # One sender fanning out to two receivers: both flows share the NIC, so
    # trains must interleave them exactly as per-packet DRR would.
    hosts[0].start_flow(Flow(src=0, dst=1, size=30_000, start_ns=0))
    hosts[0].start_flow(Flow(src=0, dst=2, size=18_000, start_ns=0))
    if staggered:
        # A third flow arriving mid-run: its start must truncate any
        # committed train built without it in the DRR rotation.
        sim.schedule(
            3_500, hosts[0].start_flow, Flow(src=0, dst=2, size=9_000, start_ns=0)
        )
    sim.run(until=units.microseconds(300))
    uplink = hosts[0]._uplink_port
    return seen, sim.events_processed, dict(uplink.train_counts)


class TestTrainEquivalence:
    def test_multi_flow_drr_interleaving_matches_per_packet(self):
        fused, fused_events, histogram = _run_pair_scenario(True)
        unfused, unfused_events, _ = _run_pair_scenario(False)
        assert fused == unfused
        assert max(int(k) for k in histogram) > 1  # trains actually formed
        assert fused_events < unfused_events

    def test_mid_run_flow_arrival_matches_per_packet(self):
        fused, _, _ = _run_pair_scenario(True, staggered=True)
        unfused, _, _ = _run_pair_scenario(False, staggered=True)
        assert fused == unfused

    def test_event_reduction_on_uncontended_transfer(self):
        """The headline claim: trains cut events per delivered packet."""
        _, fused_events, histogram = _run_pair_scenario(True)
        _, unfused_events, _ = _run_pair_scenario(False)
        assert fused_events < unfused_events
        assert sum(
            int(k) * v for k, v in histogram.items()
        ) >= sum(histogram.values())

    def test_train_histogram_recorded(self):
        _, _, histogram = _run_pair_scenario(True)
        assert histogram and all(
            length >= 1 and count > 0 for length, count in histogram.items()
        )


class TestContendedFallback:
    def test_windowed_cc_disables_trains(self):
        """A feedback-driven (windowed) sender must take the unfused path."""
        factory = lambda rate: WindowedCongestionControl(rate, window_bytes=3_000)
        fused, _, histogram = _run_pair_scenario(True, cc_factory=factory)
        unfused, _, _ = _run_pair_scenario(False, cc_factory=factory)
        assert fused == unfused
        # train_next refuses to extend: every "train" is a single packet.
        assert set(histogram) <= {1}

    def test_train_safe_detection(self, sim):
        from repro.sim.host import CongestionControl

        class AckReactiveControl(CongestionControl):
            def on_ack(self, fstate, packet, now_ns):  # feedback on every ACK
                pass

        hosts, _, _ = build_pair(sim, num_hosts=2)
        assert hosts[0]._train_safe_cc  # base line-rate cc: safe
        assert hosts[0]._no_window
        windowed, _, _ = build_pair(
            sim,
            num_hosts=2,
            cc_factory=lambda rate: WindowedCongestionControl(
                rate, window_bytes=3_000
            ),
        )
        # Windowed cc keeps the base hooks but is gated by the window check.
        assert not windowed[0]._no_window
        reactive, _, _ = build_pair(
            sim, num_hosts=2, cc_factory=lambda rate: AckReactiveControl(rate)
        )
        assert not reactive[0]._train_safe_cc


def _first_train_window(port):
    """(truncation instant, committed train length) for a busy port."""
    assert port._train, "expected a committed train"
    return port._train[0][0], len(port._train)


class TestMidTrainTruncation:
    def _start_big_flow(self, sim):
        host, sink, config = make_host(
            sim,
            host_config=HostConfig(
                mtu=1000, mark_first_packet=True, nic_train_packets=8
            ),
        )
        flow = Flow(src=0, dst=5, size=40_000, start_ns=0)
        host.start_flow(flow)
        # Let the first kick commit a train but nothing finish serializing.
        sim.run(until=200)
        return host, sink, config, flow

    def _data_seqs(self, sink):
        return [p.seq for _, p in sink.received if p.kind is PacketKind.DATA]

    def test_pfc_pause_truncates_and_resume_completes(self, sim):
        host, sink, _, flow = self._start_big_flow(sim)
        port = host._uplink_port
        cutoff, before_len = _first_train_window(port)
        port.set_pfc_paused(True)
        assert len(port._train) < before_len
        resume_at = sim.now + 30_000
        sim.schedule_at(resume_at, port.set_pfc_paused, False)
        sim.run(until=units.microseconds(200))
        seqs = self._data_seqs(sink)
        # Exactly once, in order, nothing lost to cancelled deliveries.
        assert seqs == list(range(40))
        # The pause actually created a serialization gap on the wire.
        times = [t for t, p in sink.received if p.kind is PacketKind.DATA]
        assert max(b - a for a, b in zip(times, times[1:])) >= 25_000

    def test_bloom_pause_truncates_and_resume_completes(self, sim):
        host, sink, config, flow = self._start_big_flow(sim)
        port = host._uplink_port
        codec = host.nic.codec
        vfid = flow.key().vfid(config.num_vfids)
        _, before_len = _first_train_window(port)
        host.handle_packet(bloom_frame(codec, [vfid]), 0)
        assert len(port._train) < before_len
        host.nic.paused_flow_count() == 1
        sim.schedule(30_000, host.handle_packet, bloom_frame(codec, []), 0)
        sim.run(until=units.microseconds(200))
        assert self._data_seqs(sink) == list(range(40))

    def test_bloom_rebroadcast_without_change_preserves_train(self, sim):
        host, sink, config, flow = self._start_big_flow(sim)
        port = host._uplink_port
        _, before_len = _first_train_window(port)
        # Same (empty) pause set as the implicit no-filter state: the NIC
        # must report "no change" and the committed train must survive.
        assert host.nic.on_bloom(bloom_frame(host.nic.codec, [])) is False
        assert len(port._train) == before_len

    def test_control_frame_truncates_train(self, sim):
        host, sink, config, flow = self._start_big_flow(sim)
        port = host._uplink_port
        cutoff, before_len = _first_train_window(port)
        control = bloom_frame(host.nic.codec, [])
        port.send_control(control)
        assert len(port._train) < before_len
        sim.run(until=units.microseconds(200))
        # Strict priority: the control frame left at the first free packet
        # boundary, ahead of every cancelled-and-recommitted data packet.
        control_time = next(
            t for t, p in sink.received if p.kind is PacketKind.BLOOM
        )
        later_data = [
            t
            for t, p in sink.received
            if p.kind is PacketKind.DATA and p.seq >= before_len
        ]
        assert control_time < min(later_data)
        assert self._data_seqs(sink) == list(range(40))


class TestGoldenInvariance:
    def test_golden_records_invariant_to_trains(self, monkeypatch):
        """The committed golden fixture (generated at the per-packet
        default), recomputed with 8-packet trains, differs only in
        events_processed — fusion never changes results."""
        import repro.experiments.schemes as schemes
        from golden_kernel import (
            canonical_records,
            golden_configs,
            load_golden_fixture,
        )
        from repro.experiments.runner import run_experiment

        monkeypatch.setattr(
            schemes,
            "HostConfig",
            functools.partial(HostConfig, nic_train_packets=8),
        )
        fixture = load_golden_fixture()
        for scheme, config in golden_configs().items():
            record = canonical_records(run_experiment(config))
            expected = dict(fixture[scheme])
            # Event counts legitimately differ (that is the whole point of
            # trains); everything observable must not.
            expected.pop("events_processed")
            record.pop("events_processed")
            # One more exclusion: max_active_entries is a high-water mark of
            # *instantaneous* flow co-residency at a switch, and trains change
            # packing (one flow's packets batch back-to-back), which can swing
            # same-instant entry overlap by one in sparse workloads — the
            # flow-graph entry sits exactly on that margin.  Every cumulative
            # VFID counter and every timed record must still match exactly.
            expected["vfid_stats"] = {
                k: v
                for k, v in expected["vfid_stats"].items()
                if k != "max_active_entries"
            }
            record["vfid_stats"] = {
                k: v
                for k, v in record["vfid_stats"].items()
                if k != "max_active_entries"
            }
            assert record == expected, f"{scheme} diverged with trains off"
