"""Unit tests for the DCQCN rate-control state machine."""

import pytest

from repro.congestion.dcqcn import DcqcnConfig, DcqcnControl, DcqcnWindowedControl
from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.host import SenderFlowState
from repro.sim.packet import FlowKey, Packet, PacketKind


LINE_RATE = units.gbps(10)


def make_fstate() -> SenderFlowState:
    return SenderFlowState(Flow(src=0, dst=1, size=1_000_000, start_ns=0), mtu=1000)


def make_packet(size=1048) -> Packet:
    return Packet(
        kind=PacketKind.DATA,
        flow_id=1,
        key=FlowKey(src=0, dst=1, src_port=1, dst_port=2),
        size=size,
    )


class TestConfig:
    def test_default_config_valid(self):
        DcqcnConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("g", 0.0),
            ("g", 2.0),
            ("alpha_timer_ns", 0),
            ("increase_timer_ns", -1),
            ("byte_counter_bytes", 0),
            ("fast_recovery_rounds", 0),
        ],
    )
    def test_invalid_configs_rejected(self, field, value):
        config = DcqcnConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()


class TestRateDecrease:
    def test_flow_starts_at_line_rate(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        assert cc.rate_bps(fstate) == LINE_RATE

    def test_cnp_cuts_rate(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 1_000)
        # alpha starts at 1.0, so the first CNP halves the rate.
        assert cc.rate_bps(fstate) == pytest.approx(LINE_RATE / 2, rel=0.01)

    def test_repeated_cnps_keep_cutting(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        previous = cc.rate_bps(fstate)
        for i in range(5):
            cc.on_cnp(fstate, (i + 1) * 1_000)
            current = cc.rate_bps(fstate)
            assert current < previous
            previous = current

    def test_rate_never_below_minimum(self):
        cc = DcqcnControl(LINE_RATE, DcqcnConfig(min_rate_fraction=0.01))
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        for i in range(100):
            cc.on_cnp(fstate, (i + 1) * 1_000)
        assert cc.rate_bps(fstate) >= 0.01 * LINE_RATE

    def test_alpha_increases_on_cnp(self):
        cc = DcqcnControl(LINE_RATE, DcqcnConfig(initial_alpha=0.5))
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        before = cc.current_alpha(fstate, 0)
        cc.on_cnp(fstate, 1_000)
        after = cc.current_alpha(fstate, 1_000)
        assert after > before * (1 - cc.config.g)


class TestAlphaDecay:
    def test_alpha_decays_without_cnps(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        alpha_early = cc.current_alpha(fstate, 10_000)
        alpha_late = cc.current_alpha(fstate, 200_000_000)  # 200 ms without CNPs
        assert alpha_late < alpha_early
        assert alpha_late < 0.1

    def test_decay_follows_geometric_form(self):
        config = DcqcnConfig(g=1 / 256, alpha_timer_ns=55_000)
        cc = DcqcnControl(LINE_RATE, config)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        alpha_at_cnp = 1.0  # alpha right after the first CNP: (1-g)*1 + g = 1
        periods = 10
        expected = alpha_at_cnp * (1 - config.g) ** periods
        measured = cc.current_alpha(fstate, periods * 55_000)
        assert measured == pytest.approx(expected, rel=0.01)


class TestRateRecovery:
    def test_rate_recovers_after_congestion_clears(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        low = cc.current_rate(fstate, 1_000)
        recovered = cc.current_rate(fstate, 50_000_000)  # 50 ms without CNPs
        assert recovered > low
        assert recovered == pytest.approx(LINE_RATE, rel=0.05)

    def test_fast_recovery_moves_toward_target(self):
        config = DcqcnConfig(increase_timer_ns=10_000)
        cc = DcqcnControl(LINE_RATE, config)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        # After one CNP, target = old rate (line rate), rate = half.  One
        # fast-recovery event should close half the gap.
        one_event = cc.current_rate(fstate, 10_500)
        assert one_event == pytest.approx(0.75 * LINE_RATE, rel=0.02)

    def test_byte_counter_drives_recovery(self):
        config = DcqcnConfig(byte_counter_bytes=10_000, increase_timer_ns=10**12)
        cc = DcqcnControl(LINE_RATE, config)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        low = cc.rate_bps(fstate)
        for _ in range(20):
            cc.on_packet_sent(fstate, make_packet(), 1_000)
        assert cc.rate_bps(fstate) > low

    def test_recovery_does_not_exceed_line_rate(self):
        cc = DcqcnControl(LINE_RATE)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 0)
        assert cc.current_rate(fstate, 10**9) <= LINE_RATE


class TestWindowedVariant:
    def test_window_is_reported(self):
        cc = DcqcnWindowedControl(LINE_RATE, window_bytes=12_500)
        fstate = make_fstate()
        assert cc.window_bytes(fstate) == 12_500

    def test_plain_dcqcn_has_no_window(self):
        cc = DcqcnControl(LINE_RATE)
        assert cc.window_bytes(make_fstate()) is None

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DcqcnWindowedControl(LINE_RATE, window_bytes=0)

    def test_windowed_variant_still_reacts_to_cnp(self):
        cc = DcqcnWindowedControl(LINE_RATE, window_bytes=12_500)
        fstate = make_fstate()
        cc.on_flow_start(fstate, 0)
        cc.on_cnp(fstate, 1_000)
        assert cc.rate_bps(fstate) < LINE_RATE
