"""Tests for the open-loop Poisson arrival source and its scenario."""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig5a_configs, openloop_crossdc_config
from repro.shard import ShardError
from repro.shard.coordinator import run_sharded_experiment
from repro.sim import units
from repro.workloads import GOOGLE, OpenLoopSpec


def spec_kwargs(**overrides):
    kwargs = dict(
        distribution=GOOGLE,
        duration_ns=units.microseconds(100),
        arrival_rate_per_s=1e6,
    )
    kwargs.update(overrides)
    return kwargs


class TestOpenLoopSpec:
    def test_requires_exactly_one_rate_mode(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(distribution=GOOGLE, duration_ns=100).validate()
        with pytest.raises(ValueError):
            OpenLoopSpec(
                distribution=GOOGLE,
                duration_ns=100,
                arrival_rate_per_s=1.0,
                target_load=0.5,
            ).validate()

    def test_users_fields_go_together(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(distribution=GOOGLE, duration_ns=100, users=10).validate()

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(**spec_kwargs(duration_ns=0)).validate()
        with pytest.raises(ValueError):
            OpenLoopSpec(**spec_kwargs(arrival_rate_per_s=-1.0)).validate()
        with pytest.raises(ValueError):
            OpenLoopSpec(
                distribution=GOOGLE, duration_ns=100, target_load=2.0
            ).validate()

    def test_superposition_rate(self):
        # N users at r flows/s superpose to one Poisson process at N*r.
        spec = OpenLoopSpec(
            distribution=GOOGLE,
            duration_ns=units.microseconds(100),
            users=2_000_000,
            flows_per_user_per_s=0.5,
        )
        assert spec.aggregate_rate_per_s(8, 5e9) == pytest.approx(1_000_000.0)

    def test_direct_rate_passthrough(self):
        spec = OpenLoopSpec(**spec_kwargs())
        assert spec.aggregate_rate_per_s(8, 5e9) == 1e6

    def test_target_load_calibration_positive(self):
        spec = OpenLoopSpec(
            distribution=GOOGLE,
            duration_ns=units.microseconds(100),
            target_load=0.5,
            max_flow_size=20_000,
        )
        assert spec.aggregate_rate_per_s(8, 5e9) > 0

    def test_expected_flows_caps_at_max_flows(self):
        spec = OpenLoopSpec(**spec_kwargs(max_flows=10))
        # 1e6 flows/s over 100us ~= 100 expected, capped at 10
        assert spec.expected_flows(8, 5e9) == 10.0


def openloop_experiment_config(duration_us=300, seed=7, **spec_overrides):
    base = fig5a_configs("tiny", schemes=["DCQCN"], seed=seed)["DCQCN"]
    duration = units.microseconds(duration_us)
    spec_fields = dict(
        distribution=GOOGLE,
        duration_ns=duration,
        target_load=0.4,
        max_flow_size=20_000,
    )
    spec_fields.update(spec_overrides)
    spec = OpenLoopSpec(**spec_fields)
    return replace(
        base,
        name="openloop-test",
        duration_ns=duration,
        drain_ns=duration // 2,
        traffic=replace(base.traffic, workload=None, incast_load=None, open_loop=spec),
    )


class TestOpenLoopRuns:
    def test_deterministic_across_runs(self):
        a = run_experiment(openloop_experiment_config())
        b = run_experiment(openloop_experiment_config())
        assert a.flows_offered == b.flows_offered
        assert a.events_processed == b.events_processed
        assert a.flow_stats.records == b.flow_stats.records

    def test_seed_changes_arrivals(self):
        a = run_experiment(openloop_experiment_config(seed=7))
        b = run_experiment(openloop_experiment_config(seed=8))
        assert a.flow_stats.records != b.flow_stats.records

    def test_max_flows_is_exact(self):
        result = run_experiment(openloop_experiment_config(max_flows=25))
        assert result.flows_offered == 25
        assert len(result.flow_stats.records) == 25

    def test_records_cover_unfinished_flows(self):
        # Offered == recorded even when some flows cannot finish in time.
        result = run_experiment(openloop_experiment_config(duration_us=150))
        assert len(result.flow_stats.records) == result.flows_offered
        assert result.completion_rate() > 0.5

    def test_flow_state_release_matches_retained(self):
        # Releasing completed receiver state is invisible in the records.
        keep = run_experiment(
            openloop_experiment_config(release_flow_state=False)
        )
        release = run_experiment(
            openloop_experiment_config(release_flow_state=True)
        )
        assert release.flow_stats.records == keep.flow_stats.records
        assert release.events_processed == keep.events_processed

    def test_rejected_with_shards(self):
        config = replace(openloop_experiment_config(), shards=2)
        with pytest.raises(ShardError):
            run_sharded_experiment(config)


class TestOpenLoopCrossDcScenario:
    def test_offers_exactly_target_flows(self, tmp_path):
        config = openloop_crossdc_config(
            "tiny", "DCQCN", seed=3, target_flows=400, results_dir=str(tmp_path)
        )
        result = run_experiment(config)
        assert result.flows_offered == 400
        assert result.completion_rate() > 0.9
        assert result.results_ref is not None

    def test_user_population_is_pure_bookkeeping(self):
        # Same aggregate rate, different population split: identical runs.
        a = openloop_crossdc_config("tiny", "DCQCN", users=1_000, target_flows=200)
        b = openloop_crossdc_config(
            "tiny", "DCQCN", users=1_000_000, target_flows=200
        )
        ra = run_experiment(a)
        rb = run_experiment(b)
        assert ra.flow_stats.records == rb.flow_stats.records
