"""Property-based tests (hypothesis) for the core data structures.

These check structural invariants under randomly generated operation
sequences: Bloom filters never produce false negatives, counting filters
support removal, DRR conserves work and is approximately fair, the flow table
and the shared buffer never lose track of their contents, and the empirical
distributions behave like CDFs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilterCodec, CountingBloomFilter
from repro.core.config import BfcConfig
from repro.core.queues import PhysicalQueuePool
from repro.core.vfid import FlowTable
from repro.sim.buffer import SharedBuffer
from repro.sim.disciplines import DeficitRoundRobin
from repro.sim.packet import FlowKey
from repro.sim.stats import percentile
from repro.workloads.distributions import GOOGLE, WEBSEARCH


# ---------------------------------------------------------------------------
# Bloom filters
# ---------------------------------------------------------------------------


@given(vfids=st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=64))
def test_bloom_encode_has_no_false_negatives(vfids):
    codec = BloomFilterCodec(size_bytes=128, num_hashes=4)
    bitmap = codec.encode(vfids)
    assert all(codec.contains(bitmap, v) for v in vfids)


@given(
    members=st.sets(st.integers(min_value=0, max_value=1 << 16), max_size=40),
    removed_count=st.integers(min_value=0, max_value=40),
)
def test_counting_bloom_membership_after_removals(members, removed_count):
    codec = BloomFilterCodec(size_bytes=64, num_hashes=4)
    filt = CountingBloomFilter(codec)
    members = list(members)
    for vfid in members:
        filt.add(vfid)
    removed = members[:removed_count]
    kept = members[removed_count:]
    for vfid in removed:
        filt.remove(vfid)
    # No false negatives for the members that remain.
    assert all(filt.contains(v) for v in kept)
    if not kept:
        assert filt.is_empty()


@given(
    members=st.sets(st.integers(min_value=0, max_value=1 << 16), min_size=0, max_size=32)
)
def test_counting_bloom_bitmap_agrees_with_codec_encode(members):
    codec = BloomFilterCodec(size_bytes=32, num_hashes=4)
    filt = CountingBloomFilter(codec)
    for vfid in members:
        filt.add(vfid)
    assert filt.to_bitmap() == codec.encode(members)


# ---------------------------------------------------------------------------
# Deficit round robin
# ---------------------------------------------------------------------------


@given(
    backlogs=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=8),
    packet_size=st.integers(min_value=64, max_value=1_048),
)
@settings(max_examples=50)
def test_drr_is_work_conserving(backlogs, packet_size):
    """Every queued packet is eventually served, and no extra selections happen."""
    drr = DeficitRoundRobin(quantum=1_048)
    remaining = {qid: count for qid, count in enumerate(backlogs)}
    for qid in remaining:
        drr.activate(qid)

    def head_size(qid):
        return packet_size if remaining.get(qid, 0) > 0 else None

    total = sum(backlogs)
    served = []
    for _ in range(total):
        qid = drr.select(head_size)
        assert qid is not None
        remaining[qid] -= 1
        assert remaining[qid] >= 0
        served.append(qid)
    assert drr.select(head_size) is None
    assert sum(remaining.values()) == 0


@given(num_queues=st.integers(min_value=2, max_value=8))
@settings(max_examples=30)
def test_drr_fairness_for_backlogged_queues(num_queues):
    """Continuously-backlogged queues with equal packet sizes get equal service."""
    drr = DeficitRoundRobin(quantum=1_000)
    for qid in range(num_queues):
        drr.activate(qid)
    counts = {qid: 0 for qid in range(num_queues)}
    rounds = 40 * num_queues
    for _ in range(rounds):
        qid = drr.select(lambda q: 1_000)
        counts[qid] += 1
    expected = rounds / num_queues
    assert all(abs(c - expected) <= 1 for c in counts.values())


# ---------------------------------------------------------------------------
# Physical queue pool
# ---------------------------------------------------------------------------


@given(
    vfids=st.lists(st.integers(min_value=0, max_value=16_383), min_size=1, max_size=64),
    num_queues=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=50)
def test_queue_pool_assign_release_invariants(vfids, num_queues):
    pool = PhysicalQueuePool(BfcConfig(num_physical_queues=num_queues))
    assigned = []
    for vfid in vfids:
        queue = pool.assign(vfid)
        assert 0 <= queue < num_queues
        assigned.append(queue)
    assert pool.occupied_queues() <= num_queues
    assert pool.occupied_queues() <= len(vfids)
    # Collisions happen exactly when demand exceeds the queue count.
    if len(vfids) <= num_queues:
        assert pool.stats.collisions == 0
    for queue in assigned:
        pool.release(queue)
    assert pool.occupied_queues() == 0
    assert pool.free_queues() == num_queues


# ---------------------------------------------------------------------------
# Flow table
# ---------------------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),   # vfid
            st.integers(min_value=0, max_value=3),    # ingress
            st.integers(min_value=0, max_value=3),    # egress
        ),
        max_size=120,
    )
)
@settings(max_examples=50)
def test_flow_table_insert_remove_invariants(operations):
    table = FlowTable(BfcConfig(num_vfids=64, table_bucket_size=2, overflow_cache_entries=8))
    live = {}
    overflowed = 0
    for vfid, ingress, egress in operations:
        entry = table.lookup_or_insert(vfid, ingress, egress)
        if entry is None:
            overflowed += 1
            continue
        live.setdefault((vfid, ingress, egress), entry)
        assert table.lookup(vfid, ingress, egress) is live[(vfid, ingress, egress)]
    assert table.active_entries() == len(live)
    for key, entry in live.items():
        table.remove(entry)
        assert table.lookup(*key) is None
    assert table.active_entries() == 0
    assert table.stats.cache_overflows == overflowed


# ---------------------------------------------------------------------------
# Shared buffer
# ---------------------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(st.integers(min_value=1, max_value=2_000), st.integers(min_value=0, max_value=4)),
        max_size=100,
    )
)
@settings(max_examples=50)
def test_shared_buffer_conservation(operations):
    buffer = SharedBuffer(capacity_bytes=10_000)
    admitted = []
    for size, ingress in operations:
        if buffer.admit(size, ingress):
            admitted.append((size, ingress))
        assert 0 <= buffer.used <= buffer.capacity
        assert buffer.used == sum(buffer.per_ingress.values())
    for size, ingress in admitted:
        buffer.release(size, ingress)
    assert buffer.used == 0
    assert all(v == 0 for v in buffer.per_ingress.values())


# ---------------------------------------------------------------------------
# Distributions and percentiles
# ---------------------------------------------------------------------------


@given(u=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_distribution_quantile_within_support(u):
    for dist in (GOOGLE, WEBSEARCH):
        size = dist.quantile(u)
        assert 1 <= size <= dist.max_size()


@given(
    a=st.floats(min_value=0, max_value=1, allow_nan=False),
    b=st.floats(min_value=0, max_value=1, allow_nan=False),
)
def test_distribution_quantile_monotone(a, b):
    lo, hi = min(a, b), max(a, b)
    assert GOOGLE.quantile(lo) <= GOOGLE.quantile(hi)


@given(
    values=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200),
    q=st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_percentile_bounded_by_extremes(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)
    assert not math.isnan(result)


@given(vfid_space=st.integers(min_value=1, max_value=1 << 20))
def test_flow_key_vfid_always_in_range(vfid_space):
    key = FlowKey(src=1, dst=2, src_port=3, dst_port=4)
    assert 0 <= key.vfid(vfid_space) < vfid_space
