"""Unit tests for packets and flow keys."""

import pytest

from repro.sim.packet import (
    DATA_HEADER_SIZE,
    FlowKey,
    IntHop,
    Packet,
    PacketKind,
)


def make_data_packet(**overrides) -> Packet:
    defaults = dict(
        kind=PacketKind.DATA,
        flow_id=1,
        key=FlowKey(src=1, dst=2, src_port=100, dst_port=200),
        size=1048,
        seq=0,
        flow_size=5000,
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestFlowKey:
    def test_vfid_is_deterministic(self):
        key = FlowKey(src=1, dst=2, src_port=3, dst_port=4)
        assert key.vfid(16384) == key.vfid(16384)

    def test_vfid_in_range(self):
        for i in range(100):
            key = FlowKey(src=i, dst=i + 1, src_port=i * 7, dst_port=4791)
            assert 0 <= key.vfid(1024) < 1024

    def test_vfid_differs_across_flows(self):
        keys = [FlowKey(src=i, dst=200, src_port=i, dst_port=4791) for i in range(50)]
        vfids = {k.vfid(1 << 20) for k in keys}
        assert len(vfids) > 45  # collisions in a 1M space should be very rare

    def test_reversed_swaps_endpoints(self):
        key = FlowKey(src=1, dst=2, src_port=3, dst_port=4, protocol=6)
        rev = key.reversed()
        assert rev == FlowKey(src=2, dst=1, src_port=4, dst_port=3, protocol=6)

    def test_reversed_twice_is_identity(self):
        key = FlowKey(src=9, dst=8, src_port=7, dst_port=6)
        assert key.reversed().reversed() == key

    def test_keys_are_hashable_and_comparable(self):
        a = FlowKey(src=1, dst=2, src_port=3, dst_port=4)
        b = FlowKey(src=1, dst=2, src_port=3, dst_port=4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestPacket:
    def test_data_packet_is_not_control(self):
        assert not make_data_packet().is_control

    @pytest.mark.parametrize(
        "kind", [PacketKind.ACK, PacketKind.NACK, PacketKind.CNP, PacketKind.PFC, PacketKind.BLOOM]
    )
    def test_non_data_kinds_are_control(self, kind):
        packet = make_data_packet(kind=kind, size=64)
        assert packet.is_control

    def test_payload_bytes_subtracts_header(self):
        packet = make_data_packet(size=1000 + DATA_HEADER_SIZE)
        assert packet.payload_bytes() == 1000

    def test_payload_bytes_zero_for_control(self):
        ack = make_data_packet(kind=PacketKind.ACK, size=64)
        assert ack.payload_bytes() == 0

    def test_clone_for_retransmit_copies_identity(self):
        original = make_data_packet(seq=5, first_of_flow=True, last_of_flow=True)
        clone = original.clone_for_retransmit()
        assert clone is not original
        assert clone.seq == 5
        assert clone.flow_id == original.flow_id
        assert clone.first_of_flow and clone.last_of_flow

    def test_clone_does_not_copy_transient_state(self):
        original = make_data_packet()
        original.ecn_marked = True
        original.cur_ingress = 3
        clone = original.clone_for_retransmit()
        assert clone.ecn_marked is False
        assert clone.cur_ingress == -1

    def test_int_stack_is_per_packet(self):
        a = make_data_packet()
        b = make_data_packet()
        a.int_stack.append(IntHop("s1", 1, 2, 3, 4.0))
        assert b.int_stack == []
