"""Unit tests for runner building blocks and multi-hop BFC pause propagation."""

from repro.core.config import BfcConfig
from repro.core.nic import bfc_nic_class
from repro.core.switchlogic import BfcSwitch
from repro.experiments.runner import ExperimentConfig, TrafficSpec
from repro.experiments.scenarios import get_scale
from repro.sim import units
from repro.sim.flow import Flow
from repro.sim.host import CongestionControl, Host, HostConfig
from repro.sim.port import connect
from repro.topology.clos import ClosParams
from repro.workloads.distributions import GOOGLE
from repro.workloads.generator import WorkloadSpec
from repro.workloads.longlived import many_to_one_flows
from repro.workloads.trace import FlowTrace


class TestTrafficSpec:
    HOSTS = list(range(8))
    RATE = units.gbps(10)

    def test_workload_only(self):
        spec = TrafficSpec(
            workload=WorkloadSpec(
                distribution=GOOGLE, target_load=0.4, duration_ns=units.microseconds(500)
            )
        )
        trace = spec.build(self.HOSTS, self.RATE, units.microseconds(500))
        assert len(trace) > 0
        assert all(not f.is_incast for f in trace)

    def test_incast_only(self):
        spec = TrafficSpec(incast_load=0.05, incast_fan_in=4, incast_aggregate_bytes=40_000)
        trace = spec.build(self.HOSTS, self.RATE, units.microseconds(500))
        assert len(trace) > 0
        assert all(f.is_incast for f in trace)

    def test_explicit_flows_merged_with_workload(self):
        explicit = FlowTrace([Flow(src=0, dst=1, size=5_000, start_ns=0, tag="pinned")])
        spec = TrafficSpec(
            workload=WorkloadSpec(
                distribution=GOOGLE, target_load=0.3, duration_ns=units.microseconds(300)
            ),
            explicit_flows=explicit,
        )
        trace = spec.build(self.HOSTS, self.RATE, units.microseconds(300))
        assert any(f.tag == "pinned" for f in trace)
        assert any(f.tag == "normal" for f in trace)

    def test_incast_period_override(self):
        spec = TrafficSpec(
            incast_period_ns=units.microseconds(100),
            incast_fan_in=3,
            incast_aggregate_bytes=9_000,
            incast_receiver=0,
        )
        trace = spec.build(self.HOSTS, self.RATE, units.microseconds(350))
        events = sorted({f.start_ns for f in trace})
        # Events every 100 us starting at half a period (50 us).
        assert events[0] == units.microseconds(50)
        assert len(events) == 4
        assert all(f.dst == 0 for f in trace)

    def test_empty_spec_builds_empty_trace(self):
        trace = TrafficSpec().build(self.HOSTS, self.RATE, units.microseconds(100))
        assert len(trace) == 0


class TestExperimentConfigHelpers:
    def _config(self, **overrides):
        defaults = dict(
            name="unit",
            scheme="BFC",
            clos=ClosParams(num_tors=2, hosts_per_tor=2, num_spines=2),
            traffic=TrafficSpec(),
            buffer_bytes=100_000,
            duration_ns=units.microseconds(400),
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    def test_total_duration_defaults_to_one_and_a_half(self):
        config = self._config()
        assert config.total_duration_ns() == units.microseconds(600)

    def test_explicit_drain(self):
        config = self._config(drain_ns=units.microseconds(100))
        assert config.total_duration_ns() == units.microseconds(500)

    def test_sample_interval_default_and_override(self):
        config = self._config()
        assert config.effective_sample_interval_ns() >= 1_000
        config = self._config(sample_interval_ns=12_345)
        assert config.effective_sample_interval_ns() == 12_345

    def test_scale_buffer_sizing_formula(self):
        scale = get_scale("tiny")
        ports = scale.clos.hosts_per_tor + scale.clos.num_spines
        expected = int(ports * scale.clos.link_rate_bps * scale.buffer_time_us * 1e-6 / 8)
        assert scale.buffer_bytes() == expected


def build_two_tier_bfc(sim, config=None):
    """h0, h1 -- sw_up -- sw_down -- h2.

    The receiver's access link is slower (2.5 Gbps) than the inter-switch
    link, so the congestion point is sw_down's egress to h2 and backpressure
    must propagate sw_down -> sw_up -> hosts.
    """
    config = config or BfcConfig(mtu=1000)
    registry = {}
    sw_up = BfcSwitch(sim, "sw_up", buffer_bytes=2_000_000, bfc_config=config)
    sw_down = BfcSwitch(sim, "sw_down", buffer_bytes=2_000_000, bfc_config=config)
    hosts = []
    for i in range(3):
        host = Host(
            sim,
            f"h{i}",
            host_id=i,
            config=HostConfig(mtu=1000, mark_first_packet=True),
            cc_factory=lambda rate: CongestionControl(rate),
            flow_registry=registry,
            nic_class=bfc_nic_class(config),
        )
        hosts.append(host)
    connect(hosts[0], sw_up, rate_bps=units.gbps(10), delay_ns=1_000)
    connect(hosts[1], sw_up, rate_bps=units.gbps(10), delay_ns=1_000)
    connect(sw_up, sw_down, rate_bps=units.gbps(10), delay_ns=1_000)
    connect(hosts[2], sw_down, rate_bps=units.gbps(2.5), delay_ns=1_000)
    sw_up.set_routes({
        0: [sw_up.interface_to(hosts[0]).index],
        1: [sw_up.interface_to(hosts[1]).index],
        2: [sw_up.interface_to(sw_down).index],
    })
    sw_down.set_routes({
        0: [sw_down.interface_to(sw_up).index],
        1: [sw_down.interface_to(sw_up).index],
        2: [sw_down.interface_to(hosts[2]).index],
    })
    return hosts, sw_up, sw_down, registry


class TestMultiHopPausePropagation:
    """The §3.4 rule: a congested downstream switch pauses flows one hop up;
    once the upstream switch's own queues exceed their threshold it pauses the
    senders in turn — and everything is resumed once congestion clears."""

    def test_pause_propagates_from_bottleneck_to_sources(self, sim):
        hosts, sw_up, sw_down, _ = build_two_tier_bfc(sim)
        flows = [
            Flow(src=0, dst=2, size=300_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=300_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.microseconds(400))
        # The bottleneck (sw_down, 2:1 into h2) paused flows toward sw_up ...
        assert sw_down.agent.counters.get("pauses") > 0
        assert sw_down.agent.counters.get("bloom_frames_sent") > 0
        # ... and the backlog that built at sw_up made it pause the hosts.
        assert sw_up.agent.counters.get("pauses") > 0
        assert hosts[0].nic.bloom_frames_received + hosts[1].nic.bloom_frames_received > 0

    def test_flows_complete_and_pauses_clear_after_congestion(self, sim):
        hosts, sw_up, sw_down, _ = build_two_tier_bfc(sim)
        flows = [
            Flow(src=0, dst=2, size=120_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=120_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert all(f.completed for f in flows)
        assert sw_up.agent.paused_flow_count() == 0
        assert sw_down.agent.paused_flow_count() == 0
        assert sw_up.dropped_packets() == 0 and sw_down.dropped_packets() == 0

    def test_bfc_preserves_in_order_delivery(self, sim):
        """§3.1 design constraint: packets of a flow leave each switch in
        arrival order, so without drops the receiver never sees reordering."""
        hosts, sw_up, sw_down, _ = build_two_tier_bfc(sim)
        flows = [
            Flow(src=0, dst=2, size=200_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=200_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert all(f.completed for f in flows)
        assert hosts[2].counters.get("out_of_order_packets") == 0
        assert hosts[2].counters.get("duplicate_packets") == 0

    def test_many_to_one_helper_on_two_tier(self, sim):
        hosts, sw_up, sw_down, _ = build_two_tier_bfc(sim)
        trace = many_to_one_flows([0, 1, 2], receiver=2, num_flows=4, size_bytes=40_000)
        for flow in trace:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert all(f.completed for f in trace)
