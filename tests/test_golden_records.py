"""Golden-records equivalence: the current kernel vs the checked-in fixture.

``tests/golden/kernel_records.json`` holds the records of the scenario
defined in :mod:`tests.golden_kernel`.  Its four kernel-family entries trace
back to the *seed* kernel (the pre-tuple-heap, dataclass-packet
implementation) and have survived every refactor since; entries for later
subsystems (stale-telemetry BFC-Est, the flow-graph launcher) were appended
when those subsystems landed, after verifying the existing entries byte-
identical.  These tests assert that today's kernel reproduces the fixture
byte-for-byte — flow completions, counters, samplers, event counts — so
every performance refactor is provably behaviour-preserving.  If a PR
*intends* to change behaviour, regenerate the fixture with
``python tests/golden_kernel.py --write`` and say so in the PR.
"""

import json

from repro.campaign import Campaign, ParallelExecutor, SerialExecutor

from tests.golden_kernel import (
    GOLDEN_PATH,
    GOLDEN_SCHEMES,
    canonical_records,
    compute_golden_records,
    golden_configs,
    load_golden_fixture,
)


class TestGoldenRecords:
    def test_fixture_exists_and_covers_all_schemes(self):
        fixture = load_golden_fixture()
        assert sorted(fixture) == sorted(GOLDEN_SCHEMES)
        for scheme, records in fixture.items():
            assert records["flows"], f"{scheme} fixture has no flow records"
            assert records["events_processed"] > 0

    def test_kernel_matches_seed_fixture(self):
        """The refactored kernel reproduces the seed kernel bit-for-bit."""
        fixture = load_golden_fixture()
        # Round-trip through JSON so float formatting and key stringification
        # match the fixture exactly (JSON round-trips doubles losslessly).
        computed = json.loads(json.dumps(compute_golden_records(), sort_keys=True))
        for scheme in GOLDEN_SCHEMES:
            for key in fixture[scheme]:
                assert computed[scheme][key] == fixture[scheme][key], (
                    f"{scheme}: {key} diverged from the seed kernel "
                    f"(fixture {GOLDEN_PATH})"
                )
        assert computed == fixture

    def test_serial_and_parallel_records_identical(self):
        """The same scenario through serial and process-pool executors."""
        configs = {
            scheme: config
            for scheme, config in golden_configs().items()
            if scheme in ("BFC", "DCQCN")
        }
        serial = Campaign.from_configs("golden-sp", configs).run(
            executor=SerialExecutor()
        )
        parallel = Campaign.from_configs("golden-sp", configs).run(
            executor=ParallelExecutor(workers=2)
        )
        assert serial == parallel
        # The full experiment payloads must agree too, not just the tidy
        # records: compare the canonical reduction per scheme.
        for scheme in configs:
            name = f"golden-sp/{scheme}"
            a = canonical_records(serial.experiment_result(name))
            b = canonical_records(parallel.experiment_result(name))
            assert a == b, f"{scheme}: serial vs parallel records diverged"
