"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import PureSimulator, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(30, order.append, "c")
        sim.schedule(10, order.append, "a")
        sim.schedule(20, order.append, "b")
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(100, order.append, label)
        sim.run_until_idle()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(50, lambda: times.append(sim.now))
        sim.schedule(75, lambda: times.append(sim.now))
        sim.run_until_idle()
        assert times == [50, 75]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(123, fired.append, 1)
        sim.run_until_idle()
        assert fired == [1]
        assert sim.now == 123

    def test_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(5, lambda: order.append("inner"))

        sim.schedule(10, outer)
        sim.run_until_idle()
        assert order == ["outer", "inner"]
        assert sim.now == 15

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(100, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(10, fired.append, "a")
        victim = sim.schedule(20, fired.append, "b")
        sim.schedule(30, fired.append, "c")
        victim.cancel()
        sim.run_until_idle()
        assert fired == ["a", "c"]

    def test_cancel_is_idempotent(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        event.cancel()
        event.cancel()
        assert event.cancelled
        sim.run_until_idle()
        assert fired == []

    def test_cancelled_flag_is_sticky(self, sim):
        event = sim.schedule(10, lambda: None)
        event.cancel()
        sim.run_until_idle()
        assert event.cancelled

    def test_handle_reports_fire_time(self, sim):
        event = sim.schedule(25, lambda: None)
        assert event.time == 25
        event = sim.schedule_at(123, lambda: None)
        assert event.time == 123

    def test_mass_cancellation_does_not_leak_heap_memory(self, sim):
        """Cancelled events must be compacted away, not retained until pop."""
        handles = [sim.schedule(1_000_000 + i, lambda: None) for i in range(10_000)]
        for handle in handles[:-1]:
            handle.cancel()
        # Compaction triggers once cancelled entries dominate; the heap must
        # not still hold ~10k dead entries.
        assert sim.pending_events() < 1_000
        fired = sim.run_until_idle()
        assert fired == 1

    def test_compaction_preserves_order_and_live_events(self, sim):
        order = []
        live = []
        for i in range(500):
            handle = sim.schedule(10 * i + 10, order.append, i)
            if i % 5 != 0:
                handle.cancel()
            else:
                live.append(i)
        sim.run_until_idle()
        assert order == live

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        event = sim.schedule(10, fired.append, "x")
        sim.run_until_idle()
        event.cancel()  # stale cancel: the event already ran
        assert fired == ["x"]
        sim.schedule(20, fired.append, "y")
        sim.run_until_idle()
        assert fired == ["x", "y"]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(10, fired.append, "early")
        sim.schedule(100, fired.append, "late")
        sim.run(until=50)
        assert fired == ["early"]
        assert sim.now == 50
        sim.run(until=200)
        assert fired == ["early", "late"]

    def test_run_until_returns_processed_count(self, sim):
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run(until=3) == 3

    def test_max_events_cap(self, sim):
        for i in range(100):
            sim.schedule(i + 1, lambda: None)
        processed = sim.run(max_events=10)
        assert processed == 10
        assert sim.pending_events() == 90

    def test_events_processed_counter(self, sim):
        for i in range(7):
            sim.schedule(i + 1, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 7

    def test_empty_run_is_harmless(self, sim):
        assert sim.run_until_idle() == 0
        assert sim.now == 0

    def test_clock_advances_to_until_even_with_no_events(self, sim):
        sim.run(until=5_000)
        assert sim.now == 5_000

    def test_until_with_cancelled_events_at_head(self, sim):
        """Cancelled events inside the window must not block the clock advance."""
        fired = []
        for i in range(5):
            sim.schedule(10 + i, fired.append, i).cancel()
        sim.schedule(40, fired.append, "live")
        sim.run(until=100)
        assert fired == ["live"]
        assert sim.now == 100

    def test_until_with_only_cancelled_events(self, sim):
        for i in range(3):
            sim.schedule(10 + i, lambda: None).cancel()
        processed = sim.run(until=50)
        assert processed == 0
        assert sim.now == 50

    def test_until_then_cancelled_beyond_window(self, sim):
        """A cancelled event beyond ``until`` must not stop the clock short."""
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(200, fired.append, "late").cancel()
        sim.run(until=100)
        assert fired == ["a"]
        assert sim.now == 100

    def test_max_events_cap_does_not_advance_clock_to_until(self, sim):
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        sim.run(until=1_000, max_events=5)
        # Stopped by the cap: the clock must stay at the last fired event so
        # the next run() call resumes where this one stopped.
        assert sim.now == 5
        assert sim.run(until=1_000) == 5
        assert sim.now == 1_000

    def test_post_is_fire_and_forget(self, sim):
        fired = []
        assert sim.post(10, fired.append, "x") is None
        sim.run_until_idle()
        assert fired == ["x"]

    def test_post_rejects_negative_delay(self, sim):
        with pytest.raises(SimulationError):
            sim.post(-5, lambda: None)

    def test_post_and_schedule_share_fifo_order(self, sim):
        fired = []
        sim.post(10, fired.append, "a")
        sim.schedule(10, fired.append, "b")
        sim.post(10, fired.append, "c")
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_reentrant_run_rejected(self, sim):
        def recurse():
            sim.run_until_idle()

        sim.schedule(1, recurse)
        with pytest.raises(SimulationError):
            sim.run_until_idle()


class TestDeterminism:
    def test_rng_is_seed_deterministic(self):
        a = Simulator(seed=7).rng().random()
        b = Simulator(seed=7).rng().random()
        c = Simulator(seed=8).rng().random()
        assert a == b
        assert a != c

    def test_rng_salt_changes_stream(self):
        sim = Simulator(seed=7)
        assert sim.rng(salt=1).random() != sim.rng(salt=1).random()  # fresh draws differ

    def test_identical_schedules_fire_identically(self):
        def run_once():
            sim = Simulator(seed=3)
            order = []
            rng = sim.rng()
            for _ in range(20):
                sim.schedule(rng.randint(1, 100), order.append, rng.random())
            sim.run_until_idle()
            return order

        assert run_once() == run_once()


class TestCalendarQueue:
    """Edge cases of the calendar-queue scheduler (ring + overflow heap)."""

    @pytest.fixture
    def sim(self):
        # These tests assert on calendar geometry (bucket widths, overflow
        # promotion, retunes), which only the pure backend has — pin it so
        # the class keeps testing the calendar under REPRO_ENGINE=accel.
        return PureSimulator(seed=42)

    def test_bucket_width_resize_mid_run(self, sim):
        """A dense event stream must retune the bucket width while running."""
        fired = []
        for i in range(40_000):
            sim.post(4 * i, fired.append, i)
        before = sim.calendar_stats()
        sim.run_until_idle()
        after = sim.calendar_stats()
        assert fired == list(range(40_000))
        assert after["retunes"] > 0
        # 4 ns gaps are far below the initial 512 ns width: the tuner must
        # have narrowed the buckets (and/or grown the ring) mid-run.
        assert (
            after["shift"] < before["shift"]
            or after["num_buckets"] > before["num_buckets"]
        )

    def test_resize_preserves_pending_event_order(self, sim):
        """Events already queued must survive a forced ring rebuild intact."""
        fired = []
        # Overstuff the ring (grow trigger fires on the insert path) with
        # events whose schedule order differs from their firing order.
        for i in range(3_000):
            sim.schedule(40 * (3_000 - i), fired.append, 3_000 - i)
        assert sim.calendar_stats()["retunes"] > 0
        sim.run_until_idle()
        assert fired == list(range(1, 3_001))

    def test_cancellation_inside_current_bucket(self, sim):
        """Cancelling a later event in the bucket being served must stick."""
        order = []
        handles = {}

        def first():
            order.append("a")
            handles["later"].cancel()

        sim.schedule(10, first)
        handles["later"] = sim.schedule(12, order.append, "b")  # same bucket
        sim.schedule(14, order.append, "c")
        sim.run_until_idle()
        assert order == ["a", "c"]

    def test_cancellation_of_same_bucket_insert_during_serve(self, sim):
        """Cancel an event that was added to the in-service bucket (extra heap)."""
        order = []

        def first():
            order.append("a")
            handle = sim.schedule(5, order.append, "b")  # lands in current bucket
            sim.schedule(6, order.append, "c")
            handle.cancel()

        sim.schedule(10, first)
        sim.run_until_idle()
        assert order == ["a", "c"]

    def test_overflow_promotion_preserves_order(self, sim):
        """Far-future events (overflow heap) fire in exact (time, seq) order."""
        import random as _random

        rng = _random.Random(7)
        expected = []
        times = [1_000_000 + 977 * i for i in range(500)]
        # Duplicate a few instants to exercise the FIFO (seq) tiebreak.
        times += times[:50]
        rng.shuffle(times)
        fired = []
        for idx, t in enumerate(times):
            sim.schedule_at(t, fired.append, (t, idx))
            expected.append((t, idx))
        # Everything beyond the ring horizon must start out in overflow.
        assert sim.calendar_stats()["overflow_entries"] > 0
        # A few near events keep the serve pointer busy before the jump.
        for t in (100, 200, 300):
            sim.schedule_at(t, fired.append, (t, -1))
            expected.append((t, -1))
        sim.run_until_idle()
        assert fired == sorted(expected, key=lambda p: (p[0], expected.index(p)))
        assert sim.calendar_stats()["overflow_entries"] == 0

    def test_until_on_exact_bucket_boundary(self, sim):
        """run(until=) landing exactly on a bucket edge must not over/under-run."""
        width = sim.calendar_stats()["bucket_width_ns"]
        fired = []
        sim.schedule_at(width - 1, fired.append, "before")
        sim.schedule_at(width, fired.append, "edge")
        sim.schedule_at(width + 1, fired.append, "after")
        sim.run(until=width)
        # `until` is inclusive: the event at exactly the boundary fires.
        assert fired == ["before", "edge"]
        assert sim.now == width
        sim.run(until=2 * width)
        assert fired == ["before", "edge", "after"]

    def test_far_future_peek_then_near_insert(self, sim):
        """Regression: a run(until=) that peeks a far-future event must not
        strand later near-term inserts behind the serve pointer."""
        order = []
        sim.schedule(2_000_000, order.append, "rto")
        sim.run(until=50_000)  # peeks the far event and puts it back
        assert order == []
        sim.post(838, order.append, "tx")  # now + 838 ns, behind the peek
        sim.run(until=3_000_000)
        assert order == ["tx", "rto"]

    def test_cancelled_tail_then_near_insert(self, sim):
        """Regression: draining a queue whose tail is cancelled must not
        leave the serve pointer ahead of the clock."""
        order = []
        sim.schedule(10, order.append, "w")
        sim.schedule(100_000, order.append, "x").cancel()
        sim.run_until_idle()
        assert order == ["w"]
        sim.schedule(20, order.append, "a")
        sim.schedule_at(102_400, order.append, "b")  # exact bucket multiple
        sim.run_until_idle()
        assert order == ["w", "a", "b"]
        assert sim.now == 102_400

    def test_mixed_storm_is_totally_ordered(self, sim):
        """Random storm across ring, current bucket and overflow stays sorted."""
        import random as _random

        rng = _random.Random(3)
        fired = []

        def record(label):
            fired.append((sim.now, label))
            # Occasionally schedule follow-ups from inside a callback.
            if label % 97 == 0:
                sim.post(rng.randrange(0, 5_000), record, label + 1_000_000)

        for i in range(2_000):
            delay = rng.choice((rng.randrange(0, 300), rng.randrange(0, 200_000)))
            handle = sim.schedule(delay, record, i)
            if i % 11 == 0:
                handle.cancel()
        sim.run_until_idle()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert not any(label % 11 == 0 for _, label in fired if label < 1_000_000)
