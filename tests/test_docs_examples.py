"""Docs cannot rot: lint links in docs/ and execute its fenced examples.

Two enforcement layers, both cheap enough for the tier-1 suite and run by
CI's dedicated ``docs-check`` job:

* **Dead-link lint** — every relative markdown link in ``docs/*.md`` and
  ``README.md`` must resolve to a file or directory in the repo (external
  ``http(s)``/``mailto`` links and pure anchors are skipped).
* **Executable examples** — every fenced code block tagged exactly
  ``python`` in ``docs/*.md`` is executed, blocks of one file sharing a
  namespace in file order (so a guide can build on its earlier snippets),
  with the working directory pointed at a temp dir so examples may write
  files with relative paths.  A block tagged ``python no-run`` is
  highlighted but skipped — use it only for deliberately illustrative
  fragments.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

DOC_FILES = sorted(DOCS_DIR.glob("*.md"))
LINK_CHECKED_FILES = DOC_FILES + [REPO_ROOT / "README.md"]

#: Inline markdown links: [text](target).  Good enough for these docs; image
#: links and reference-style links would need more, and we don't use them.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:")


def extract_links(path: Path):
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def extract_python_blocks(path: Path):
    """``(first_code_lineno, source)`` for every block fenced as ``python``."""
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    collecting = False
    start = 0
    chunk = []
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not collecting and stripped.startswith("```"):
            info = stripped[3:].strip()
            if info == "python":
                collecting = True
                start = lineno + 1
                chunk = []
            continue
        if collecting:
            if stripped.startswith("```"):
                blocks.append((start, "\n".join(chunk)))
                collecting = False
            else:
                chunk.append(line)
    assert not collecting, f"{path.name}: unterminated code fence starting at {start}"
    return blocks


def test_docs_directory_has_the_guides():
    names = {path.name for path in DOC_FILES}
    assert {
        "architecture.md",
        "determinism.md",
        "benchmarking.md",
        "campaigns.md",
    } <= names


@pytest.mark.parametrize(
    "path", LINK_CHECKED_FILES, ids=[p.name for p in LINK_CHECKED_FILES]
)
def test_relative_links_resolve(path):
    dead = []
    for lineno, target in extract_links(path):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            dead.append(f"{path.name}:{lineno}: {target}")
    assert not dead, "dead relative link(s):\n" + "\n".join(dead)


@pytest.mark.parametrize("path", DOC_FILES, ids=[p.name for p in DOC_FILES])
def test_python_examples_execute(path, tmp_path, monkeypatch):
    blocks = extract_python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python examples")
    # Examples may save campaign files etc. with relative paths; keep that
    # out of the repo checkout.
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"docs_example_{path.stem}"}
    for lineno, source in blocks:
        code = compile(source, f"{path.name}:{lineno}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"example in {path.name} starting at line {lineno} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
