"""Regression test for the ``NicScheduler._schedule_wakeup`` stale-handle bug.

The seed kernel's ``_arm_wakeup`` kept a reference to the last pacing
wake-up event and skipped re-arming when that handle's ``time`` was not
later than the new deadline — but a *fired* handle is never cancelled
(``cancelled`` is sticky-False) and its time lies in the past, so it always
looked "good enough".  A flow blocked purely on pacing (congestion-control
rate below line rate, no window) therefore got exactly one wake-up and then
stalled forever unless unrelated traffic kicked the port.

The fix treats ``handle.time <= now`` as dead and re-arms; this test pins
the repaired behaviour.  (It started life as a strict xfail documenting the
bug; the fix landed alongside the event-fusion work, so a regression now
fails outright.)
"""

from repro.sim.engine import Simulator
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.host import CongestionControl, Host, HostConfig
from repro.sim.port import connect
from repro.sim import units


class QuarterRateControl(CongestionControl):
    """Windowless congestion control pacing at a quarter of line rate."""

    name = "quarter-rate"

    def rate_bps(self, fstate):
        return self.line_rate_bps / 4


def build_host_pair(cc_factory=None):
    reset_flow_ids()
    sim = Simulator(seed=1)
    registry = {}
    sender = Host(
        sim, "sender", 0, HostConfig(mtu=1000), cc_factory, flow_registry=registry
    )
    receiver = Host(sim, "receiver", 1, HostConfig(mtu=1000), flow_registry=registry)
    connect(sender, receiver, rate_bps=units.gbps(10), delay_ns=1_000)
    return sim, sender, registry


def test_lone_paced_flow_completes():
    sim, sender, registry = build_host_pair(lambda rate: QuarterRateControl(rate))
    flow = Flow(src=0, dst=1, size=10_000, start_ns=0)
    registry[flow.flow_id] = flow
    sender.start_flow(flow)
    # 10 MTU packets at 2.5 Gbps effective rate need ~35 us; leave a wide
    # margin (including several RTO periods, which do not help: the rewind
    # path sees zero inflight packets and does not re-kick pacing).
    sim.run(until=units.milliseconds(20))
    assert flow.finish_ns is not None, "flow stalled on the pacing wake-up"


def test_line_rate_flow_completes():
    """Control case: without pacing gaps the same flow finishes quickly."""
    sim, sender, registry = build_host_pair()
    flow = Flow(src=0, dst=1, size=10_000, start_ns=0)
    registry[flow.flow_id] = flow
    sender.start_flow(flow)
    sim.run(until=units.milliseconds(20))
    assert flow.finish_ns is not None
