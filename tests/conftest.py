"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.flow import reset_flow_ids


@pytest.fixture(autouse=True)
def _fresh_flow_ids():
    """Keep flow IDs deterministic within each test."""
    reset_flow_ids()
    yield
    reset_flow_ids()


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=42)
