"""Unit/integration tests for hosts, NICs, Go-Back-N and windows.

Most tests use a minimal two-host topology joined by a single switch so that
real ACK/NACK round trips exercise the sender state machine.
"""

import pytest

from repro.sim import units
from repro.sim.buffer import PfcPolicy
from repro.sim.disciplines import FifoDiscipline
from repro.sim.flow import Flow
from repro.sim.host import Host, HostConfig, SenderFlowState, WindowedCongestionControl
from repro.sim.packet import PacketKind
from repro.sim.port import connect
from repro.sim.switch import Switch


def build_pair(
    sim,
    rate_bps=units.gbps(10),
    delay_ns=1_000,
    buffer_bytes=1_000_000,
    host_config=None,
    cc_factory=None,
    num_hosts=2,
):
    """``num_hosts`` hosts hanging off one switch, shared flow registry."""
    registry = {}
    hosts = []
    switch = Switch(
        sim,
        "sw",
        buffer_bytes=buffer_bytes,
        discipline_factory=lambda iface: FifoDiscipline(),
        pfc=PfcPolicy(enabled=True),
    )
    for i in range(num_hosts):
        host = Host(
            sim,
            f"h{i}",
            host_id=i,
            config=host_config or HostConfig(),
            cc_factory=cc_factory,
            flow_registry=registry,
        )
        connect(host, switch, rate_bps=rate_bps, delay_ns=delay_ns)
        hosts.append(host)
    switch.set_routes(
        {i: [switch.interface_to(hosts[i]).index] for i in range(num_hosts)}
    )
    return hosts, switch, registry


class TestBasicTransfer:
    def test_single_packet_flow_completes(self, sim):
        hosts, _, registry = build_pair(sim)
        flow = Flow(src=0, dst=1, size=500, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(100))
        assert flow.completed
        assert flow.bytes_delivered == 500

    def test_multi_packet_flow_completes(self, sim):
        hosts, _, registry = build_pair(sim)
        flow = Flow(src=0, dst=1, size=25_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert flow.completed
        assert flow.bytes_delivered == 25_000

    def test_fct_close_to_ideal_on_idle_network(self, sim):
        hosts, _, _ = build_pair(sim)
        flow = Flow(src=0, dst=1, size=10_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        slowdown = flow.slowdown(units.gbps(10), 2_000)
        assert slowdown is not None
        assert slowdown < 1.5

    def test_completion_callback_invoked(self, sim):
        hosts, _, _ = build_pair(sim)
        finished = []
        hosts[1].on_flow_complete = lambda flow, now: finished.append((flow.flow_id, now))
        flow = Flow(src=0, dst=1, size=500, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(100))
        assert finished and finished[0][0] == flow.flow_id

    def test_flow_on_wrong_host_rejected(self, sim):
        hosts, _, _ = build_pair(sim)
        flow = Flow(src=1, dst=0, size=500, start_ns=0)
        with pytest.raises(ValueError):
            hosts[0].start_flow(flow)

    def test_sender_counts_packets(self, sim):
        hosts, _, _ = build_pair(sim)
        flow = Flow(src=0, dst=1, size=5_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert hosts[0].counters.get("data_packets_sent") == 5
        assert hosts[1].counters.get("data_packets_received") == 5
        assert hosts[1].counters.get("acks_sent") >= 1

    def test_pacing_matches_units_formula(self, sim):
        """The pacing arithmetic inlined in build_data_packet must track
        units.transmission_time_ns exactly (same rounding, same >=1 clamp) —
        drift changes packet timing and breaks the golden-records guarantee."""
        rate = 7.3e9  # odd rate so rounding actually matters
        hosts, _, _ = build_pair(sim, rate_bps=rate)
        flow = Flow(src=0, dst=1, size=999, start_ns=0)
        # Build the sender state directly (start_flow would kick the port,
        # which pulls the first packet before we can observe the pacing).
        fstate = SenderFlowState(flow, hosts[0].config.mtu)
        packet = hosts[0].build_data_packet(fstate)
        assert fstate.next_allowed_ns == units.transmission_time_ns(
            packet.size, rate
        )

    def test_flow_state_removed_after_full_ack(self, sim):
        hosts, _, _ = build_pair(sim)
        flow = Flow(src=0, dst=1, size=500, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(100))
        assert hosts[0].nic.flow_state(flow.flow_id) is None
        assert hosts[0].nic.active_flow_count() == 0


class TestFairnessAtNic:
    def test_concurrent_flows_share_the_uplink(self, sim):
        hosts, _, _ = build_pair(sim)
        flows = [Flow(src=0, dst=1, size=20_000, start_ns=0, src_port=i + 1) for i in range(2)]
        for flow in flows:
            hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(500))
        assert all(f.completed for f in flows)
        # Both flows finish around the same time because the NIC round robins.
        finish_times = [f.finish_ns for f in flows]
        assert abs(finish_times[0] - finish_times[1]) < units.microseconds(5)

    def test_small_flow_not_starved_by_elephant(self, sim):
        hosts, _, _ = build_pair(sim)
        elephant = Flow(src=0, dst=1, size=200_000, start_ns=0, src_port=1)
        mouse = Flow(src=0, dst=1, size=1_000, start_ns=0, src_port=2)
        hosts[0].start_flow(elephant)
        hosts[0].start_flow(mouse)
        sim.run(until=units.milliseconds(1))
        assert mouse.completed and elephant.completed
        assert mouse.finish_ns < elephant.finish_ns
        # The mouse should finish in a handful of microseconds, not after the
        # elephant's 160+ us of serialization.
        assert mouse.fct_ns() < units.microseconds(20)


class TestWindowCap:
    def test_window_limits_inflight(self, sim):
        config = HostConfig(window_cap_bytes=4 * 1_048)
        hosts, switch, _ = build_pair(sim, host_config=config)
        flow = Flow(src=0, dst=1, size=100_000, start_ns=0)
        hosts[0].start_flow(flow)
        max_seen = 0

        def probe():
            nonlocal max_seen
            state = hosts[0].nic.flow_state(flow.flow_id)
            if state is not None:
                max_seen = max(max_seen, state.inflight_bytes())
            sim.schedule(1_000, probe)

        sim.schedule(1_000, probe)
        sim.run(until=units.microseconds(150))
        assert max_seen <= 4 * 1_048

    def test_windowed_cc_object(self, sim):
        cc = WindowedCongestionControl(units.gbps(10), window_bytes=10_000)
        hosts, _, _ = build_pair(sim, cc_factory=lambda rate: WindowedCongestionControl(rate, 10_000))
        flow = Flow(src=0, dst=1, size=50_000, start_ns=0)
        state = hosts[0].start_flow(flow)
        assert hosts[0].effective_window(state) == 10_000
        assert cc.window_bytes(state) == 10_000

    def test_effective_window_is_minimum(self, sim):
        config = HostConfig(window_cap_bytes=5_000)
        hosts, _, _ = build_pair(
            sim,
            host_config=config,
            cc_factory=lambda rate: WindowedCongestionControl(rate, 20_000),
        )
        flow = Flow(src=0, dst=1, size=50_000, start_ns=0)
        state = hosts[0].start_flow(flow)
        assert hosts[0].effective_window(state) == 5_000


def force_drops(switch, predicate):
    """Make the switch silently drop data packets matching ``predicate``."""
    original = switch._admit_data
    dropped = []

    def wrapper(packet, in_index, out_iface):
        if predicate(packet):
            dropped.append(packet)
            switch.counters.incr("dropped_packets")
            return
        original(packet, in_index, out_iface)

    switch._admit_data = wrapper
    return dropped


class TestGoBackN:
    def test_single_loss_recovered_via_nack(self, sim):
        """Drop one mid-flow packet; the NACK-triggered rewind must recover it."""
        hosts, switch, _ = build_pair(sim)
        dropped = force_drops(
            switch,
            lambda p, seen=[]: p.seq == 10 and not seen and seen.append(1) is None,
        )
        flow = Flow(src=0, dst=1, size=30_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert len(dropped) == 1
        assert flow.completed
        assert flow.bytes_delivered == 30_000
        assert flow.retransmitted_packets > 0
        assert hosts[1].counters.get("nacks_sent") >= 1

    def test_window_capped_incast_with_loss_completes(self, sim):
        # Two window-capped senders overload a tiny buffer: some packets drop,
        # Go-Back-N recovers, and both transfers finish.
        config = HostConfig(window_cap_bytes=12_500, rto_ns=units.microseconds(200))
        hosts, switch, _ = build_pair(
            sim, buffer_bytes=5_000, num_hosts=3, host_config=config
        )
        switch.pfc = PfcPolicy(enabled=False)
        flows = [
            Flow(src=0, dst=2, size=40_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=40_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(10))
        assert switch.dropped_packets() > 0
        assert all(f.completed for f in flows)
        assert sum(f.retransmitted_packets for f in flows) > 0

    def test_receiver_delivers_every_byte_exactly_once(self, sim):
        config = HostConfig(window_cap_bytes=12_500, rto_ns=units.microseconds(200))
        hosts, switch, _ = build_pair(
            sim, buffer_bytes=5_000, num_hosts=3, host_config=config
        )
        switch.pfc = PfcPolicy(enabled=False)
        flow = Flow(src=0, dst=2, size=60_000, start_ns=0, src_port=1)
        cross = Flow(src=1, dst=2, size=60_000, start_ns=0, src_port=2)
        hosts[0].start_flow(flow)
        hosts[1].start_flow(cross)
        sim.run(until=units.milliseconds(10))
        assert flow.completed
        assert flow.bytes_delivered == 60_000  # every byte delivered exactly once

    def test_rto_recovers_tail_loss(self, sim):
        """If the very last packet is lost and nothing follows, the RTO fires."""
        config = HostConfig(rto_ns=units.microseconds(100))
        hosts, switch, _ = build_pair(sim, host_config=config)
        flow = Flow(src=0, dst=1, size=30_000, start_ns=0)
        last_seq = 29
        dropped = force_drops(
            switch,
            lambda p, seen=[]: p.seq == last_seq and not seen and seen.append(1) is None,
        )
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(2))
        assert len(dropped) == 1
        assert flow.completed
        assert hosts[0].counters.get("rto_rewinds") >= 1


class TestPacketConservation:
    def test_no_duplicate_delivery_without_loss(self, sim):
        hosts, switch, _ = build_pair(sim)
        flow = Flow(src=0, dst=1, size=50_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.milliseconds(1))
        assert hosts[1].counters.get("duplicate_packets") == 0
        assert hosts[1].counters.get("data_packets_received") == 50

    def test_sent_equals_received_plus_dropped_plus_inflight(self, sim):
        config = HostConfig(window_cap_bytes=12_500, rto_ns=units.microseconds(200))
        hosts, switch, _ = build_pair(
            sim, buffer_bytes=5_000, num_hosts=3, host_config=config
        )
        switch.pfc = PfcPolicy(enabled=False)
        flows = [
            Flow(src=0, dst=2, size=50_000, start_ns=0, src_port=1),
            Flow(src=1, dst=2, size=50_000, start_ns=0, src_port=2),
        ]
        for flow in flows:
            hosts[flow.src].start_flow(flow)
        sim.run(until=units.milliseconds(10))
        sent = sum(h.counters.get("data_packets_sent") for h in hosts[:2])
        received = hosts[2].counters.get("data_packets_received")
        dropped = switch.dropped_packets()
        in_buffer = switch.buffer.occupancy() // 1_000
        # Every sent packet is accounted for: delivered, dropped, or still
        # buffered/in flight when the clock stops.
        assert 0 <= sent - (received + dropped + in_buffer) <= 4


class TestMarking:
    def test_first_packet_marked_when_configured(self, sim):
        config = HostConfig(mark_first_packet=True)
        hosts, switch, _ = build_pair(sim, host_config=config)
        seen = []
        hosts[1].handle_packet, original = _spy_data(hosts[1], seen)
        flow = Flow(src=0, dst=1, size=5_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        first = [p for p in seen if p.seq == 0]
        later = [p for p in seen if p.seq > 0]
        assert all(p.first_of_flow for p in first)
        assert all(not p.first_of_flow for p in later)

    def test_first_packet_not_marked_by_default(self, sim):
        hosts, switch, _ = build_pair(sim)
        seen = []
        hosts[1].handle_packet, original = _spy_data(hosts[1], seen)
        flow = Flow(src=0, dst=1, size=2_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert all(not p.first_of_flow for p in seen)

    def test_last_packet_flag(self, sim):
        hosts, switch, _ = build_pair(sim)
        seen = []
        hosts[1].handle_packet, original = _spy_data(hosts[1], seen)
        flow = Flow(src=0, dst=1, size=3_000, start_ns=0)
        hosts[0].start_flow(flow)
        sim.run(until=units.microseconds(200))
        assert [p.last_of_flow for p in sorted(seen, key=lambda p: p.seq)] == [False, False, True]


def _spy_data(host, seen):
    """Wrap a host's handle_packet to record incoming DATA packets."""
    original = host.handle_packet

    def wrapper(packet, iface_index):
        if packet.kind is PacketKind.DATA:
            seen.append(packet)
        return original(packet, iface_index)

    return wrapper, original


class TestInlinedDequeueEquivalence:
    """The inlined NIC dequeue must match the generic DRR reference exactly.

    ``NicScheduler.dequeue`` inlines ``DeficitRoundRobin.select`` with the
    ``_head_size`` / ``_eligible_id`` callbacks merged (plus the folded
    pacing-wakeup scan of ``_schedule_wakeup``).  These tests drive two
    identical scenarios — one through the stock inlined path, one through
    the retained reference helpers — and require identical packet sequences,
    which keeps the helpers honest as the executable specification.
    """

    @staticmethod
    def _use_reference_dequeue(host):
        nic = host.nic

        def reference_dequeue():
            now = nic.host.sim.now
            nic._select_now = now
            flow_id = nic._drr.select(nic._head_size, nic._eligible_id)
            if flow_id is None:
                nic._schedule_wakeup(now)
                return None
            return nic.host.build_data_packet(nic._flows[flow_id])

        nic.dequeue = reference_dequeue
        host._uplink_port.discipline = nic  # same object; dequeue now patched

    def _run_scenario(self, use_reference, cc_factory=None, config=None):
        from repro.sim.engine import Simulator
        from repro.sim.flow import reset_flow_ids

        reset_flow_ids()
        sim = Simulator(seed=42)
        hosts, switch, registry = build_pair(
            sim, num_hosts=3, cc_factory=cc_factory, host_config=config
        )
        if use_reference:
            for host in hosts:
                self._use_reference_dequeue(host)
        seen = []
        for i, host in enumerate(hosts):
            original = host.handle_packet

            def spy(packet, iface_index, _orig=original, _hid=i):
                if packet.kind is PacketKind.DATA:
                    seen.append((sim.now, _hid, packet.flow_id, packet.seq))
                _orig(packet, iface_index)

            host.handle_packet = spy
        # Competing flows from two senders to one receiver, staggered starts.
        hosts[0].start_flow(Flow(src=0, dst=2, size=12_000, start_ns=0))
        hosts[1].start_flow(Flow(src=1, dst=2, size=8_000, start_ns=0))
        sim.schedule(2_000, hosts[0].start_flow, Flow(src=0, dst=2, size=5_500, start_ns=0))
        sim.run(until=units.microseconds(200))
        return seen, sim.events_processed

    def test_line_rate_and_windowed_cc_match_reference(self):
        for cc_factory in (
            None,  # windowless fast path (_no_window True)
            lambda rate: WindowedCongestionControl(rate, window_bytes=3_000),
        ):
            inlined = self._run_scenario(False, cc_factory=cc_factory)
            reference = self._run_scenario(True, cc_factory=cc_factory)
            assert inlined == reference


class TestWindowlessDetection:
    def test_subclass_overriding_window_bytes_is_not_fast_pathed(self):
        from repro.sim.host import CongestionControl, _cc_is_windowless

        class SneakyWindow(CongestionControl):
            # Overrides window_bytes without restating has_window: must be
            # conservatively treated as windowed.
            def window_bytes(self, fstate):
                return 64_000

        class DeclaredWindowless(CongestionControl):
            has_window = False

            def window_bytes(self, fstate):
                return None

        assert _cc_is_windowless(CongestionControl(1e9))
        assert not _cc_is_windowless(SneakyWindow(1e9))
        assert _cc_is_windowless(DeclaredWindowless(1e9))
        assert not _cc_is_windowless(WindowedCongestionControl(1e9, 1_000))

    def test_dcqcn_keeps_fast_path_and_hpcc_does_not(self):
        from repro.congestion.dcqcn import DcqcnControl, DcqcnWindowedControl
        from repro.congestion.hpcc import HpccControl
        from repro.sim.host import _cc_is_windowless

        assert _cc_is_windowless(DcqcnControl(1e9))
        assert not _cc_is_windowless(DcqcnWindowedControl(1e9, window_bytes=1_000))
        assert not _cc_is_windowless(HpccControl(1e9))
