"""Bounded-memory smoke test for the streaming results path.

The tentpole claim is that a spilled open-loop run's peak memory does not
scale with the number of flows offered.  At pytest scale two effects still
grow with early flow count and then saturate: the quantile sketches buffer
raw values until ``exact_cap``, and each switch's ECMP route cache fills to
its (monkeypatched-small) limit before clearing.  So the assertion here is
*strong sub-linearity* across a 4x flow-count spread — the full flat-at-scale
check (1e5 vs 1e6 flows, where everything is saturated) lives in
``benchmarks/bench_streaming_scale.py --assert-flat`` and the CI
``memory-smoke`` job.
"""

import gc
import tracemalloc
from dataclasses import replace

import pytest

import repro.sim.switch as switch_mod
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import fig5a_configs
from repro.sim import units
from repro.workloads import GOOGLE, OpenLoopSpec


def _openloop_config(duration_us, results_dir):
    base = fig5a_configs("tiny", schemes=["DCQCN"], seed=7)["DCQCN"]
    duration = units.microseconds(duration_us)
    spec = OpenLoopSpec(
        distribution=GOOGLE,
        duration_ns=duration,
        target_load=0.4,
        max_flow_size=20_000,
    )
    return replace(
        base,
        name="memsmoke",
        duration_ns=duration,
        drain_ns=duration // 2,
        traffic=replace(base.traffic, workload=None, incast_load=None, open_loop=spec),
        results_dir=results_dir,
    )


def _peak_bytes(config):
    gc.collect()
    tracemalloc.start()
    try:
        result = run_experiment(config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result.flows_offered, peak


@pytest.fixture
def small_route_cache(monkeypatch):
    # The per-switch ECMP route cache legitimately holds up to
    # _ROUTE_CACHE_LIMIT FlowKey entries before clearing; at production scale
    # it saturates and is flat, but at pytest scale it would dominate the
    # measurement.  Shrink it so it saturates within the test window too.
    monkeypatch.setattr(switch_mod, "_ROUTE_CACHE_LIMIT", 1024)


class TestBoundedMemory:
    def test_spill_peak_is_sublinear_in_flow_count(self, tmp_path, small_route_cache):
        flows_small, peak_small = _peak_bytes(
            _openloop_config(1000, str(tmp_path / "small"))
        )
        flows_big, peak_big = _peak_bytes(
            _openloop_config(4000, str(tmp_path / "big"))
        )
        flow_ratio = flows_big / flows_small
        peak_ratio = peak_big / peak_small
        assert flow_ratio > 3.0, "test did not scale the workload as intended"
        # Measured ~2.3x peak for 4.0x flows (sketch/reservoir/route-cache
        # warm-up); linear growth would track the flow ratio.  Fail well
        # before linear.
        assert peak_ratio < 0.75 * flow_ratio, (
            f"peak grew {peak_ratio:.2f}x for {flow_ratio:.2f}x flows "
            f"({peak_small / 1e6:.2f}MB -> {peak_big / 1e6:.2f}MB)"
        )
        # Absolute backstop: thousands of flows in a few MB.
        assert peak_big < 20e6, f"peak {peak_big / 1e6:.1f}MB exceeds 20MB budget"

    def test_spill_artifacts_exist_and_are_complete(self, tmp_path, small_route_cache):
        config = _openloop_config(500, str(tmp_path / "check"))
        result = run_experiment(config)
        from repro.results import ResultsAnalyzer

        analyzer = ResultsAnalyzer(result.results_ref)
        assert analyzer.flow_count() == result.flows_offered
