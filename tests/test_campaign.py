"""Tests for the campaign layer: grid expansion, executors, results, registry."""

import json

import pytest

from repro.campaign import (
    Campaign,
    ParallelExecutor,
    ResultSet,
    SerialExecutor,
    TrialRecord,
    make_executor,
)
from repro.campaign.executors import Executor
from repro.experiments.runner import ExperimentConfig
from repro.experiments.schemes import (
    SCHEMES,
    DuplicateSchemeError,
    UnknownSchemeError,
    get_scheme,
    register_scheme,
    unregister_scheme,
)
from repro.experiments.scenarios import fig5a_configs, fig8_configs


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------


class TestCampaignExpansion:
    def test_grid_is_schemes_x_sweep_x_repeats(self):
        campaign = (
            Campaign("grid")
            .schemes("BFC", "DCQCN")
            .sweep(load=[0.6, 0.8])
            .repeats(3)
        )
        trials = campaign.trials()
        assert len(trials) == 2 * 2 * 3
        assert len({t.name for t in trials}) == len(trials)

    def test_trial_names_encode_scheme_sweep_and_repeat(self):
        trials = (
            Campaign("fig5a")
            .schemes("BFC")
            .sweep(load=[0.6])
            .repeats(2)
            .trials()
        )
        assert [t.name for t in trials] == [
            "fig5a/BFC/load=0.6/rep0",
            "fig5a/BFC/load=0.6/rep1",
        ]

    def test_single_repeat_omits_rep_suffix(self):
        (trial,) = Campaign("c").schemes("BFC").sweep(load=[0.6]).trials()
        assert trial.name == "c/BFC/load=0.6"

    def test_seeds_derived_per_repeat_shared_across_schemes(self):
        # Schemes of the same repeat must see the same seed (same workload),
        # while repeats differ.
        trials = (
            Campaign("c").schemes("BFC", "DCQCN").repeats(2).seeds(base=7).trials()
        )
        by_repeat = {}
        for trial in trials:
            by_repeat.setdefault(trial.repeat, set()).add(trial.seed)
        assert by_repeat == {0: {7}, 1: {8}}

    def test_explicit_seed_list_pins_repeats(self):
        trials = Campaign("c").schemes("BFC").seeds(11, 12, 13).trials()
        assert [t.seed for t in trials] == [11, 12, 13]
        assert [t.repeat for t in trials] == [0, 1, 2]

    def test_seeds_rejects_both_forms(self):
        with pytest.raises(ValueError):
            Campaign("c").seeds(1, 2, base=5)

    def test_seed_list_shorter_than_repeats_is_a_clear_error(self):
        # seeds() pins the repeat count to the list ...
        assert len(Campaign("c").schemes("BFC").repeats(3).seeds(11).trials()) == 1
        # ... and a later repeats() call that outgrows the list fails loudly.
        campaign = Campaign("c").schemes("BFC").seeds(11, 12).repeats(5)
        with pytest.raises(ValueError, match="explicit seed"):
            campaign.trials()

    def test_params_reach_the_config(self):
        (trial,) = (
            Campaign("c", workload="fb_hadoop")
            .schemes("DCQCN")
            .sweep(load=[0.8])
            .fixed(incast=0.0, pfc_enabled=False)
            .trials()
        )
        config = trial.config
        assert isinstance(config, ExperimentConfig)
        assert config.scheme == "DCQCN"
        assert config.traffic.workload.target_load == 0.8
        assert config.traffic.incast_load is None  # incast=0 disables it
        assert not config.pfc_enabled
        assert config.seed == trial.seed == config.traffic.seed

    def test_unknown_parameter_is_rejected(self):
        campaign = Campaign("c").schemes("BFC").sweep(frobnicate=[1, 2])
        with pytest.raises(ValueError, match="frobnicate"):
            campaign.trials()

    def test_duplicate_sweep_values_are_rejected(self):
        campaign = Campaign("c").schemes("BFC").sweep(load=[0.3, 0.3])
        with pytest.raises(ValueError, match="duplicate trial name"):
            campaign.trials()

    def test_custom_builder_configs_are_fingerprinted(self):
        from repro.experiments.scenarios import _background_traffic, _base_config, get_scale
        from repro.workloads.distributions import WORKLOADS

        def builder(campaign, scheme, params, seed, name):
            scale = get_scale(params["scale_name"])
            traffic = _background_traffic(scale, WORKLOADS["google"], 0.3, seed=seed)
            return _base_config(name, scheme, scale, traffic, seed=seed)

        def build(scale_name):
            return (
                Campaign("cb")
                .schemes("BFC")
                .fixed(scale_name=scale_name)
                .config_builder(builder)
                .trials()
            )

        (tiny,) = build("tiny")
        (small,) = build("small")
        # Same name/seed; the fingerprint must expose the different configs
        # so resume does not replay one scale's records as the other's.
        assert tiny.name == small.name
        assert tiny.params["config"] != small.params["config"]

    def test_builder_defaults_are_recorded_in_trial_params(self):
        # scale/workload become part of every record's identity, so resuming
        # a save file under a different scale or workload re-runs the trials.
        (trial,) = Campaign("c", scale="tiny", workload="fb_hadoop").schemes("BFC").trials()
        assert trial.params["scale"] == "tiny"
        assert trial.params["workload"] == "fb_hadoop"

    def test_campaign_managed_fields_are_rejected_as_params(self):
        with pytest.raises(ValueError, match="managed by the campaign"):
            Campaign("c").schemes("BFC").fixed(seed=7).trials()

    def test_any_remaining_config_field_is_overridable(self):
        (trial,) = (
            Campaign("c").schemes("BFC").fixed(incast=0.0, buffer_bytes=12_345).trials()
        )
        assert trial.config.buffer_bytes == 12_345

    def test_unknown_scheme_fails_fast(self):
        with pytest.raises(KeyError, match="available"):
            Campaign("c").schemes("NotAScheme")

    def test_no_schemes_is_an_error(self):
        with pytest.raises(ValueError, match="schemes"):
            Campaign("c").trials()

    def test_empty_sweep_axis_is_an_error(self):
        with pytest.raises(ValueError, match="no values"):
            Campaign("c").schemes("BFC").sweep(load=[])

    def test_from_configs_keeps_labels_and_configs(self):
        configs = fig5a_configs("tiny", schemes=["BFC", "DCQCN"])
        trials = Campaign.from_configs("fig5a", configs).trials()
        assert [t.label for t in trials] == ["BFC", "DCQCN"]
        assert [t.name for t in trials] == ["fig5a/BFC", "fig5a/DCQCN"]
        # Default seeding runs the configs verbatim (only the name is stamped).
        assert trials[0].config.traffic is configs["BFC"].traffic
        assert trials[0].seed == configs["BFC"].seed

    def test_from_configs_fingerprints_the_configs_for_resume_identity(self):
        tiny = Campaign.from_configs("f", fig5a_configs("tiny", schemes=["BFC"]))
        small = Campaign.from_configs("f", fig5a_configs("small", schemes=["BFC"]))
        (t_tiny,) = tiny.trials()
        (t_small,) = small.trials()
        # Same name/seed, different wrapped config: identity must differ ...
        assert t_tiny.name == t_small.name
        assert t_tiny.params["config"] != t_small.params["config"]
        # ... and be stable across re-expansion (it feeds resume skipping).
        (t_tiny2,) = Campaign.from_configs(
            "f", fig5a_configs("tiny", schemes=["BFC"])
        ).trials()
        assert t_tiny.params["config"] == t_tiny2.params["config"]

    def test_grid_methods_on_a_configs_campaign_fail_loudly(self):
        configs = fig5a_configs("tiny", schemes=["BFC"])
        campaign = Campaign.from_configs("fig5a", configs).sweep(load=[0.6, 0.8])
        with pytest.raises(ValueError, match="prebuilt configs"):
            campaign.trials()
        # Builder knobs are equally inert on prebuilt configs and must not
        # silently pretend to change the scale or workload.
        scaled = Campaign.from_configs("fig5a", configs).scale("paper")
        with pytest.raises(ValueError, match="prebuilt configs"):
            scaled.trials()

    def test_from_configs_flattens_nested_maps(self):
        configs = fig8_configs("tiny", schemes=("BFC",))
        trials = Campaign.from_configs("fig8", configs).trials()
        assert all(t.label.startswith("BFC/") for t in trials)
        assert len(trials) == len(configs["BFC"])

    def test_from_configs_base_seed_reseeds_even_at_one_repeat(self):
        configs = fig5a_configs("tiny", schemes=["BFC"])
        (trial,) = Campaign.from_configs("fig5a", configs).seeds(base=99).trials()
        assert trial.seed == 99
        assert trial.config.seed == 99
        assert trial.config.traffic.seed == 99

    def test_from_configs_repeats_reseed_the_traffic(self):
        configs = fig5a_configs("tiny", schemes=["BFC"])
        trials = Campaign.from_configs("fig5a", configs).repeats(2).seeds(base=5).trials()
        assert [t.name for t in trials] == ["fig5a/BFC/rep0", "fig5a/BFC/rep1"]
        assert [t.seed for t in trials] == [5, 6]
        for trial in trials:
            assert trial.config.seed == trial.seed
            assert trial.config.traffic.seed == trial.seed

    def test_figure_campaigns_honor_the_caller_seed_across_repeats(self):
        from repro.experiments.scenarios import fig5a_campaign

        trials = fig5a_campaign("tiny", schemes=["BFC"], seed=7, repeats=2).trials()
        assert [t.seed for t in trials] == [7, 8]
        assert all(t.config.traffic.seed == t.seed for t in trials)

    def test_figure_campaign_repeats_resample_explicit_flows(self):
        # fig9 bakes pre-generated flow lists into its configs; the factory
        # form must rebuild them per repeat, not replay one trace.
        from repro.experiments.scenarios import fig9_campaign

        trials = fig9_campaign("tiny", schemes=("BFC",), repeats=2).trials()
        rep0, rep1 = (t.config.traffic.explicit_flows for t in trials)
        assert [(f.size, f.start_ns) for f in rep0] != [
            (f.size, f.start_ns) for f in rep1
        ]


# ---------------------------------------------------------------------------
# ResultSet: round-trip, aggregation, resume
# ---------------------------------------------------------------------------


def _record(name, scheme, load, repeat=0, seed=1, p99=2.0, wall=1.0):
    return TrialRecord(
        name=name,
        label=name.split("/", 1)[1],
        scheme=scheme,
        # Mirror what a real grid campaign records: swept params plus the
        # baked-in builder defaults (part of resume identity).
        params={"load": load, "scale": "tiny", "workload": "google"},
        repeat=repeat,
        seed=seed,
        metrics={"p99_slowdown": p99, "completion_rate": 1.0},
        wall_seconds=wall,
    )


class TestResultSet:
    def test_save_handles_non_json_params(self, tmp_path):
        from repro.core.config import BfcConfig

        rec = _record("c/BFC/load=0.6", "BFC", 0.6)
        rec.params["bfc_config"] = BfcConfig(mtu=1000)
        path = ResultSet([rec], campaign="c").save(tmp_path / "c.jsonl")
        (reloaded,) = ResultSet.load(path).records
        assert reloaded.params["bfc_config"].startswith("BfcConfig(")

    def test_jsonl_round_trip(self, tmp_path):
        original = ResultSet(
            [
                _record("c/BFC/load=0.6", "BFC", 0.6, p99=2.5),
                _record("c/DCQCN/load=0.6", "DCQCN", 0.6, p99=9.0),
            ],
            campaign="c",
        )
        path = original.save(tmp_path / "campaign.jsonl")
        reloaded = ResultSet.load(path)
        assert reloaded == original
        assert reloaded.campaign == "c"
        assert not reloaded.has_experiment_results()

    def test_jsonl_is_one_record_per_line(self, tmp_path):
        rs = ResultSet([_record("c/BFC/load=0.6", "BFC", 0.6)], campaign="c")
        path = rs.save(tmp_path / "out.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # header + one record
        assert json.loads(lines[0])["campaign"] == "c"
        assert json.loads(lines[1])["name"] == "c/BFC/load=0.6"

    def test_equality_ignores_wall_clock_and_order(self):
        a = ResultSet([_record("c/x", "BFC", 0.6, wall=1.0), _record("c/y", "BFC", 0.8, wall=2.0)])
        b = ResultSet([_record("c/y", "BFC", 0.8, wall=9.0), _record("c/x", "BFC", 0.6, wall=5.0)])
        assert a == b

    def test_aggregate_by_scheme_and_param(self):
        rs = ResultSet(
            [
                _record("c/BFC/load=0.6/rep0", "BFC", 0.6, repeat=0, p99=2.0),
                _record("c/BFC/load=0.6/rep1", "BFC", 0.6, repeat=1, p99=4.0),
                _record("c/DCQCN/load=0.6/rep0", "DCQCN", 0.6, repeat=0, p99=10.0),
            ]
        )
        assert rs.p99_slowdown_by("scheme", "load") == {
            ("BFC", 0.6): 3.0,
            ("DCQCN", 0.6): 10.0,
        }
        assert rs.p99_slowdown_by("scheme") == {"BFC": 3.0, "DCQCN": 10.0}

    def test_filter_and_record_lookup(self):
        rs = ResultSet(
            [
                _record("c/BFC/load=0.6", "BFC", 0.6),
                _record("c/BFC/load=0.8", "BFC", 0.8),
            ]
        )
        assert rs.filter(load=0.8).names() == ["c/BFC/load=0.8"]
        assert rs.record("c/BFC/load=0.6").params["load"] == 0.6
        assert rs.records[0].get("wall_seconds") == 1.0
        with pytest.raises(KeyError):
            rs.record("c/nope")
        with pytest.raises(KeyError, match="metric"):
            rs.records[0].get("nonexistent")

    def test_results_by_label_rejects_duplicate_labels(self):
        a = _record("A/BFC/load=0.6", "BFC", 0.6)
        b = _record("B/BFC/load=0.6", "BFC", 0.6)
        rs = ResultSet([a, b], results={a.name: object(), b.name: object()})
        with pytest.raises(KeyError, match="not unique"):
            rs.experiment_results_by_label()
        assert len(rs.experiment_results()) == 2  # name-keyed access still works

    def test_merge_prefers_newer_records(self):
        old = ResultSet([_record("c/x", "BFC", 0.6, p99=1.0)])
        new = ResultSet([_record("c/x", "BFC", 0.6, p99=2.0), _record("c/y", "BFC", 0.8)])
        merged = old.merge(new)
        assert len(merged) == 2
        assert merged.record("c/x").metrics["p99_slowdown"] == 2.0


class _RecordingExecutor(Executor):
    """Executes nothing; remembers which trials it was asked to run."""

    def __init__(self):
        self.seen = []

    def run(self, trials):
        self.seen.extend(trials)
        return [
            (
                TrialRecord(
                    name=t.name, label=t.label, scheme=t.scheme,
                    params=dict(t.params), repeat=t.repeat, seed=t.seed,
                    metrics={"p99_slowdown": 1.0},
                ),
                None,
            )
            for t in trials
        ]


class TestResume:
    def test_resume_skips_recorded_trials(self, tmp_path):
        campaign = Campaign("c").schemes("BFC", "DCQCN").sweep(load=[0.6])
        path = tmp_path / "c.jsonl"

        first = _RecordingExecutor()
        campaign.run(executor=first, save=path)
        assert len(first.seen) == 2
        assert path.exists()

        second = _RecordingExecutor()
        result = campaign.run(executor=second, resume=path)
        assert second.seen == []  # everything already recorded
        assert len(result) == 2

    def test_narrower_resume_keeps_stale_history_on_disk(self, tmp_path):
        path = tmp_path / "c.jsonl"
        wide = Campaign("c").schemes("BFC").sweep(load=[0.3, 0.4])
        wide.run(executor=_RecordingExecutor(), save=path)

        narrow = Campaign("c").schemes("BFC").sweep(load=[0.3])
        result = narrow.run(executor=_RecordingExecutor(), resume=path)
        # The returned set describes only the narrow campaign ...
        assert result.names() == ["c/BFC/load=0.3"]
        # ... but the file still holds the load=0.4 record for later resumes.
        assert sorted(ResultSet.load(path).names()) == [
            "c/BFC/load=0.3",
            "c/BFC/load=0.4",
        ]

    def test_save_is_incremental_per_wave(self, tmp_path):
        path = tmp_path / "c.jsonl"

        class _FailsOnSecond(Executor):
            calls = 0

            def run(self, trials):
                type(self).calls += 1
                if type(self).calls > 1:
                    raise RuntimeError("killed mid-campaign")
                return _RecordingExecutor().run(trials)

        campaign = Campaign("c").schemes("BFC", "DCQCN").sweep(load=[0.6])
        with pytest.raises(RuntimeError):
            # Serial waves of 1: the first trial completes and must be
            # persisted before the second one blows up.
            campaign.run(executor=_FailsOnSecond(), save=path)
        assert ResultSet.load(path).names() == ["c/BFC/load=0.6"]

        # A resume after the interruption only runs what is missing.
        executor = _RecordingExecutor()
        result = campaign.run(executor=executor, resume=path)
        assert [t.name for t in executor.seen] == ["c/DCQCN/load=0.6"]
        assert len(result) == 2

    def test_resume_with_a_different_seed_reruns_the_trials(self, tmp_path):
        path = tmp_path / "c.jsonl"
        campaign = Campaign("c").schemes("BFC").sweep(load=[0.6])
        campaign.run(executor=_RecordingExecutor(), save=path)

        reseeded = Campaign("c").schemes("BFC").sweep(load=[0.6]).seeds(base=2)
        executor = _RecordingExecutor()
        result = reseeded.run(executor=executor, resume=path)
        # Same trial names, different seed: the stale records must not be
        # replayed as if they were the requested campaign.
        assert [t.seed for t in executor.seen] == [2]
        assert len(result) == 1
        assert result.record("c/BFC/load=0.6").seed == 2
        # The same-name seed-1 record is superseded on disk (names stay
        # unique per file so reloaded aggregates never blend two runs).
        assert [rec.seed for rec in ResultSet.load(path)] == [2]

    def test_interrupted_reseeded_resume_keeps_unreplaced_history(self, tmp_path):
        path = tmp_path / "c.jsonl"
        campaign = Campaign("c").schemes("BFC", "DCQCN").sweep(load=[0.6])
        campaign.run(executor=_RecordingExecutor(), save=path)

        class _DiesAfterFirstWave(Executor):
            calls = 0

            def run(self, trials):
                type(self).calls += 1
                if type(self).calls > 1:
                    raise RuntimeError("interrupted")
                return _RecordingExecutor().run(trials)

        reseeded = Campaign("c").schemes("BFC", "DCQCN").sweep(load=[0.6]).seeds(base=2)
        with pytest.raises(RuntimeError):
            reseeded.run(executor=_DiesAfterFirstWave(), resume=path)
        # Wave 1 re-ran the BFC trial under seed 2; the DCQCN trial was never
        # reached, so its seed-1 record must still be on disk.
        by_name = {rec.name: rec.seed for rec in ResultSet.load(path)}
        assert by_name == {"c/BFC/load=0.6": 2, "c/DCQCN/load=0.6": 1}

    def test_resume_with_different_fixed_params_reruns_the_trials(self, tmp_path):
        path = tmp_path / "c.jsonl"
        base = Campaign("c").schemes("BFC").sweep(load=[0.6]).fixed(workload="google")
        base.run(executor=_RecordingExecutor(), save=path)

        changed = Campaign("c").schemes("BFC").sweep(load=[0.6]).fixed(workload="fb_hadoop")
        executor = _RecordingExecutor()
        changed.run(executor=executor, resume=path)
        # Same trial name (fixed params are not in the label), different
        # workload: the stale google record must not satisfy the resume.
        assert [t.params["workload"] for t in executor.seen] == ["fb_hadoop"]

    def test_resume_drops_records_that_match_no_current_trial(self, tmp_path):
        path = tmp_path / "c.jsonl"
        one_repeat = Campaign("c").schemes("BFC").sweep(load=[0.6])
        one_repeat.run(executor=_RecordingExecutor(), save=path)

        # Growing to 2 repeats renames the trials (".../rep0", ".../rep1");
        # the stale rep-less record must not survive into the merged set,
        # where it would double-count seed 1 in aggregates.
        two_repeats = Campaign("c").schemes("BFC").sweep(load=[0.6]).repeats(2)
        result = two_repeats.run(executor=_RecordingExecutor(), resume=path)
        assert sorted(result.names()) == [
            "c/BFC/load=0.6/rep0",
            "c/BFC/load=0.6/rep1",
        ]

    def test_resume_runs_only_missing_trials(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ResultSet([_record("c/BFC/load=0.6", "BFC", 0.6)], campaign="c").save(path)

        campaign = Campaign("c").schemes("BFC", "DCQCN").sweep(load=[0.6])
        executor = _RecordingExecutor()
        result = campaign.run(executor=executor, resume=path)
        assert [t.name for t in executor.seen] == ["c/DCQCN/load=0.6"]
        assert len(result) == 2
        # The merged set was persisted back to the resume file.
        assert len(ResultSet.load(path)) == 2


# ---------------------------------------------------------------------------
# Scheme registry
# ---------------------------------------------------------------------------


class TestSchemeRegistry:
    def test_register_scheme_decorator_plugs_in(self):
        base = get_scheme("DCQCN")
        try:

            @register_scheme("UnitTestScheme", description="a plug-in scheme")
            def _unit_test_scheme():
                return base.make_switch, base.make_host

            spec = get_scheme("UnitTestScheme")
            assert spec.name == "UnitTestScheme"
            assert spec.description == "a plug-in scheme"
            assert "UnitTestScheme" in SCHEMES
            # A campaign accepts the plug-in like any built-in scheme.
            Campaign("c").schemes("UnitTestScheme")
        finally:
            unregister_scheme("UnitTestScheme")
        assert "UnitTestScheme" not in SCHEMES

    def test_duplicate_registration_is_rejected(self):
        base = get_scheme("DCQCN")
        with pytest.raises(DuplicateSchemeError):

            @register_scheme("DCQCN")
            def _clashing_scheme():
                return base.make_switch, base.make_host

    def test_aliasing_a_builtin_spec_does_not_mutate_it(self):
        try:

            @register_scheme("DcqcnAlias", description="alias")
            def _alias_scheme():
                return get_scheme("DCQCN")  # returns the registered spec itself

            assert get_scheme("DcqcnAlias").name == "DcqcnAlias"
            # The built-in registration must be untouched.
            assert get_scheme("DCQCN").name == "DCQCN"
            assert get_scheme("DCQCN").description.startswith("ECN-based")
        finally:
            unregister_scheme("DcqcnAlias")

    def test_override_replaces_existing_scheme(self):
        base = get_scheme("DCQCN")
        original = SCHEMES["BFC"]
        try:

            @register_scheme("BFC", description="patched", override=True)
            def _patched_bfc():
                return base.make_switch, base.make_host

            assert get_scheme("BFC").description == "patched"
        finally:
            SCHEMES["BFC"] = original

    def test_builder_must_return_spec_or_pair(self):
        with pytest.raises(TypeError, match="make_switch"):

            @register_scheme("BrokenScheme")
            def _broken_scheme():
                return None

        assert "BrokenScheme" not in SCHEMES

    def test_unknown_scheme_error_type_and_message(self):
        with pytest.raises(UnknownSchemeError, match="available"):
            get_scheme("NotAScheme")
        assert issubclass(UnknownSchemeError, KeyError)


# ---------------------------------------------------------------------------
# Executors: determinism and selection
# ---------------------------------------------------------------------------


class TestExecutors:
    def test_make_executor_resolution(self):
        assert isinstance(make_executor(None, None), SerialExecutor)
        assert isinstance(make_executor(None, 1), SerialExecutor)
        parallel = make_executor(None, 3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.workers == 3
        custom = SerialExecutor()
        assert make_executor(custom, 8) is custom

    def test_make_executor_applies_records_only_without_mutating_caller(self):
        custom = SerialExecutor()
        resolved = make_executor(custom, None, records_only=True)
        assert resolved is not custom
        assert resolved.records_only
        assert not custom.records_only

    def test_parallel_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_make_executor_rejects_explicit_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            make_executor(None, 0)
        with pytest.raises(ValueError, match="workers"):
            Campaign("c").schemes("BFC").run(workers=-4)

    def test_explicit_env_workers_1_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "1")
        assert ParallelExecutor().workers == 1
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert ParallelExecutor().workers == 3

    def test_invalid_env_workers_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "4x")
        with pytest.raises(ValueError, match="REPRO_BENCH_WORKERS"):
            ParallelExecutor()

    def test_keep_results_false_drops_full_results_but_keeps_records(self):
        campaign = Campaign("lean").schemes("BFC").sweep(load=[0.3]).fixed(incast=0.0)
        result_set = campaign.run(keep_results=False)
        assert len(result_set) == 1
        assert result_set.records[0].metrics["completion_rate"] > 0.9
        assert not result_set.has_experiment_results()
        with pytest.raises(KeyError, match="records only"):
            result_set.experiment_result("lean/BFC/load=0.3")
        # The label map refuses to return a partial/empty view silently.
        with pytest.raises(KeyError, match="not kept"):
            result_set.experiment_results_by_label()

    def test_keep_results_false_applies_to_explicit_executors_too(self):
        campaign = Campaign("lean2").schemes("BFC").sweep(load=[0.3]).fixed(incast=0.0)
        result_set = campaign.run(executor=SerialExecutor(), keep_results=False)
        assert len(result_set) == 1
        assert not result_set.has_experiment_results()

    def test_serial_and_parallel_results_are_identical(self):
        # The acceptance bar for the campaign layer: same seeds => the
        # process-pool path reproduces the serial records bit for bit.
        campaign = (
            Campaign("det")
            .schemes("BFC", "DCQCN")
            .sweep(load=[0.3])
            .fixed(incast=0.0)
        )
        serial = campaign.run(executor=SerialExecutor())
        parallel = campaign.run(executor=ParallelExecutor(workers=2))
        assert serial == parallel
        for name in serial.names():
            assert serial.record(name).metrics == parallel.record(name).metrics
        # Both paths retain the full per-trial experiment results.
        assert set(serial.experiment_results_by_label()) == set(
            parallel.experiment_results_by_label()
        )
        result = serial.experiment_result("det/BFC/load=0.3")
        assert result.flow_stats.completion_rate() > 0.9
