"""Unit tests for repro.sim.units."""

import pytest

from repro.sim import units


class TestTimeConversions:
    def test_microseconds(self):
        assert units.microseconds(1) == 1_000
        assert units.microseconds(2.5) == 2_500

    def test_milliseconds(self):
        assert units.milliseconds(1) == 1_000_000
        assert units.milliseconds(0.5) == 500_000

    def test_seconds(self):
        assert units.seconds(1) == 1_000_000_000

    def test_nanoseconds_rounds(self):
        assert units.nanoseconds(1.4) == 1
        assert units.nanoseconds(1.6) == 2

    def test_to_microseconds_roundtrip(self):
        assert units.to_microseconds(units.microseconds(12.5)) == pytest.approx(12.5)

    def test_to_seconds(self):
        assert units.to_seconds(units.seconds(2)) == pytest.approx(2.0)


class TestRateConversions:
    def test_gbps(self):
        assert units.gbps(100) == pytest.approx(100e9)

    def test_mbps(self):
        assert units.mbps(40) == pytest.approx(40e6)

    def test_to_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(25)) == pytest.approx(25)


class TestSizeConversions:
    def test_kilobytes(self):
        assert units.kilobytes(1) == 1_000

    def test_megabytes(self):
        assert units.megabytes(12) == 12_000_000

    def test_to_megabytes(self):
        assert units.to_megabytes(units.megabytes(3)) == pytest.approx(3.0)


class TestDerivedQuantities:
    def test_transmission_time_1kb_at_100g(self):
        # 1000 bytes at 100 Gbps = 80 ns
        assert units.transmission_time_ns(1000, units.gbps(100)) == 80

    def test_transmission_time_1kb_at_10g(self):
        assert units.transmission_time_ns(1000, units.gbps(10)) == 800

    def test_transmission_time_minimum_one_ns(self):
        assert units.transmission_time_ns(0, units.gbps(100)) == 1

    def test_transmission_time_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transmission_time_ns(1000, 0)

    def test_bandwidth_delay_product_paper_value(self):
        # The paper: 100 Gbps link, 12 us RTT -> 150 KB in flight.
        bdp = units.bandwidth_delay_product(units.gbps(100), units.microseconds(12))
        assert bdp == pytest.approx(150_000, rel=0.01)

    def test_bdp_8us_at_100g(self):
        bdp = units.bandwidth_delay_product(units.gbps(100), units.microseconds(8))
        assert bdp == pytest.approx(100_000, rel=0.01)

    def test_bytes_in_flight_scales_linearly(self):
        one = units.bytes_in_flight(units.gbps(10), 1_000)
        two = units.bytes_in_flight(units.gbps(10), 2_000)
        assert two == pytest.approx(2 * one, abs=1)
