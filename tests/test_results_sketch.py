"""Unit tests for the fixed-size streaming aggregators."""

import random

import pytest

from repro.results.sketch import QuantileSketch, ReservoirSampler, StreamingStats
from repro.sim.stats import percentile as exact_percentile


class TestQuantileSketchExact:
    def test_empty_sketch_returns_zero(self):
        assert QuantileSketch().percentile(99.0) == 0.0

    def test_exact_below_cap(self):
        # Below exact_cap the sketch must be *bit-identical* to the repo's
        # nearest-rank percentile on the raw list.
        rng = random.Random(3)
        values = [rng.lognormvariate(1.0, 1.5) for _ in range(500)]
        sketch = QuantileSketch(exact_cap=1000)
        for v in values:
            sketch.add(v)
        assert sketch.is_exact
        for q in (0.0, 10.0, 50.0, 90.0, 99.0, 100.0):
            assert sketch.percentile(q) == exact_percentile(values, q)

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            QuantileSketch(exact_cap=0)
        with pytest.raises(ValueError):
            QuantileSketch(max_centroids=1)


class TestQuantileSketchCompressed:
    def test_compresses_past_cap(self):
        sketch = QuantileSketch(exact_cap=100, max_centroids=16)
        for i in range(500):
            sketch.add(float(i))
        assert not sketch.is_exact
        # points re-accumulate between compressions but never exceed the
        # fixed compression trigger — that constant is the memory bound
        assert len(sketch._points) <= sketch._compress_at + 1
        assert sketch.count == 500

    def test_min_max_always_exact(self):
        sketch = QuantileSketch(exact_cap=10, max_centroids=4)
        rng = random.Random(9)
        values = [rng.uniform(-50, 50) for _ in range(1000)]
        for v in values:
            sketch.add(v)
        assert sketch.min == min(values)
        assert sketch.max == max(values)
        assert sketch.percentile(0.0) == min(values)
        assert sketch.percentile(100.0) == max(values)

    def test_rank_error_bound_lognormal(self):
        # 100k heavy-tailed values through a default-size sketch: the rank of
        # the estimate must stay within 1% of the requested rank.
        rng = random.Random(17)
        values = [rng.lognormvariate(1.0, 2.0) for _ in range(100_000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.add(v)
        assert not sketch.is_exact
        ordered = sorted(values)
        n = len(ordered)
        for q in (50.0, 90.0, 99.0, 99.9):
            estimate = sketch.percentile(q)
            # rank of the estimate in the true data
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) // 2
                if ordered[mid] < estimate:
                    lo = mid + 1
                else:
                    hi = mid
            rank_error = abs(lo / n - q / 100.0)
            assert rank_error < 0.01, f"q={q}: rank error {rank_error:.4f}"

    def test_merge_matches_union(self):
        rng = random.Random(5)
        a_vals = [rng.gauss(0, 1) for _ in range(3000)]
        b_vals = [rng.gauss(5, 2) for _ in range(3000)]
        a = QuantileSketch(exact_cap=500, max_centroids=128)
        b = QuantileSketch(exact_cap=500, max_centroids=128)
        for v in a_vals:
            a.add(v)
        for v in b_vals:
            b.add(v)
        a.merge(b)
        assert a.count == 6000
        union = sorted(a_vals + b_vals)
        for q in (10.0, 50.0, 90.0, 99.0):
            true = exact_percentile(union, q)
            est = a.percentile(q)
            # value comparison against the spread of the union
            spread = union[-1] - union[0]
            assert abs(est - true) < 0.05 * spread

    def test_merge_empty_is_noop(self):
        a = QuantileSketch()
        a.add(1.0)
        a.merge(QuantileSketch())
        assert a.count == 1
        assert a.percentile(50.0) == 1.0

    def test_serialization_round_trip(self):
        sketch = QuantileSketch(exact_cap=50, max_centroids=8)
        for i in range(200):
            sketch.add(float(i % 37))
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        assert clone.min == sketch.min
        assert clone.max == sketch.max
        for q in (1.0, 25.0, 50.0, 75.0, 99.0):
            assert clone.percentile(q) == sketch.percentile(q)

    def test_serialization_round_trip_exact_regime(self):
        sketch = QuantileSketch()
        for v in (3.0, 1.0, 2.0):
            sketch.add(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.is_exact
        assert clone.percentile(50.0) == sketch.percentile(50.0) == 2.0


class TestReservoirSampler:
    def test_keeps_everything_below_k(self):
        res = ReservoirSampler(k=10, seed=1)
        for i in range(7):
            res.add(float(i))
        assert sorted(res.values) == [float(i) for i in range(7)]
        assert res.count == 7

    def test_bounded_at_k(self):
        res = ReservoirSampler(k=16, seed=2)
        for i in range(10_000):
            res.add(float(i))
        assert len(res.values) == 16
        assert res.count == 10_000

    def test_deterministic_for_seed(self):
        a = ReservoirSampler(k=8, seed=42)
        b = ReservoirSampler(k=8, seed=42)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i))
        assert a.values == b.values

    def test_round_trip(self):
        res = ReservoirSampler(k=4, seed=0)
        for i in range(100):
            res.add(float(i))
        clone = ReservoirSampler.from_dict(res.to_dict())
        assert clone.values == res.values
        assert clone.count == res.count

    def test_rejects_zero_k(self):
        with pytest.raises(ValueError):
            ReservoirSampler(k=0)


class TestStreamingStats:
    def test_tracks_exact_moments(self):
        stats = StreamingStats()
        for v in (5.0, -2.0, 9.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.total == 12.0
        assert stats.minimum == -2.0
        assert stats.max == 9.0
        assert stats.mean() == 4.0

    def test_empty_defaults(self):
        stats = StreamingStats()
        assert stats.mean() == 0.0
        assert stats.max == 0.0

    def test_merge(self):
        a = StreamingStats()
        b = StreamingStats()
        a.add(1.0)
        b.add(10.0)
        b.add(-3.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == 8.0
        assert a.minimum == -3.0
        assert a.maximum == 10.0

    def test_round_trip(self):
        stats = StreamingStats()
        stats.add(7.0)
        clone = StreamingStats.from_dict(stats.to_dict())
        assert clone.count == 1
        assert clone.total == 7.0
        assert clone.minimum == 7.0
