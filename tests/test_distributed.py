"""Distributed campaign execution: fault paths and record identity.

The contract under test: no matter which workers run which trials, how
often a trial is retried, or whether the campaign degrades to local
execution, the final records are identical to a
:class:`~repro.campaign.executors.SerialExecutor` run (``wall_seconds``
excepted — it is excluded from record equality by design).

Fault injection used here:

* **SIGKILL mid-trial** — real ``repro worker serve`` subprocesses, one of
  which is killed the moment its /health shows a running trial;
* **hang past deadline** — a fake worker that answers /health but never
  /run, so only the per-trial timeout can unstick the coordinator;
* **coordinator restart** — a campaign resumed from the JSONL a previous
  (interrupted) run left behind;
* **every worker dead** — a roster of closed ports.
"""

import http.client
import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CostCache,
    DistributedError,
    DistributedExecutor,
    SerialExecutor,
    WorkerAgent,
    WorkerClient,
    load_workers_file,
)
from repro.campaign.core import _config_fingerprint
from repro.campaign.distributed import PROTOCOL_VERSION
from repro.results import pack_dir, unpack_dir

SRC = str(Path(__file__).resolve().parent.parent / "src")

LOADS = [0.4, 0.5, 0.6, 0.7]


def make_campaign(loads=tuple(LOADS), **fixed):
    """A small fig5a-style campaign; ``duration_ns`` keeps trials sub-second."""
    fixed.setdefault("duration_ns", 150_000)
    return (
        Campaign("dc")
        .schemes("BFC")
        .sweep(load=list(loads))
        .fixed(**fixed)
    )


@pytest.fixture(scope="module")
def serial_records():
    """The ground truth every distributed run must reproduce."""
    return sorted(
        make_campaign().run(executor=SerialExecutor()).records,
        key=lambda r: r.name,
    )


def spawn_worker(*extra_args):
    """A real ``repro worker serve`` subprocess; returns (process, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    assert "listening on " in line, f"unexpected worker banner: {line!r}"
    return proc, line.split("listening on ", 1)[1].split()[0]


def assert_jsonl_identical(path_a, path_b):
    """Line-identical JSONL modulo wall_seconds (excluded from equality)."""

    def canon(path):
        lines = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            payload = json.loads(line)
            payload.pop("wall_seconds", None)
            lines.append(json.dumps(payload, sort_keys=True))
        return lines

    assert canon(path_a) == canon(path_b)


# ---------------------------------------------------------------------------
# Happy path
# ---------------------------------------------------------------------------


class TestDistributedMatchesSerial:
    def test_in_process_agents_produce_identical_records(self, serial_records):
        agents = [WorkerAgent().start(), WorkerAgent().start()]
        try:
            executor = DistributedExecutor([a.url for a in agents])
            records = make_campaign().run(executor=executor).records
        finally:
            for agent in agents:
                agent.stop()
        assert sorted(records, key=lambda r: r.name) == serial_records
        # Work was actually distributed, not funneled to one agent.
        assert all(agent.state.completed > 0 for agent in agents)

    def test_artifacts_ship_back_from_workers(self, tmp_path, serial_records):
        spill = str(tmp_path / "spill")
        agent = WorkerAgent().start()
        try:
            executor = DistributedExecutor([agent.url])
            result_set = make_campaign(
                loads=LOADS[:1], results_dir=spill
            ).run(executor=executor)
        finally:
            agent.stop()
        (record,) = result_set.records
        run_dir = record.artifacts["results_dir"]
        assert os.path.isdir(run_dir)
        assert os.path.exists(os.path.join(run_dir, "flows.jsonl"))
        # The shipped metrics still match serial for the same trial.
        baseline = {r.name: r for r in serial_records}
        assert record.metrics == baseline[record.name].metrics

    def test_cost_cache_records_measured_costs(self, tmp_path):
        cache = CostCache(tmp_path / "c.costs.json")
        agent = WorkerAgent().start()
        try:
            executor = DistributedExecutor([agent.url], cost_cache=cache)
            make_campaign(loads=LOADS[:2]).run(executor=executor)
        finally:
            agent.stop()
        assert len(cache) == 2
        assert (tmp_path / "c.costs.json").exists()


# ---------------------------------------------------------------------------
# Fault paths
# ---------------------------------------------------------------------------


class TestWorkerLoss:
    def test_sigkill_mid_trial_completes_via_replanning(
        self, tmp_path, serial_records
    ):
        # Full-length trials here: the victim must be killable mid-trial.
        campaign = (
            Campaign("dc").schemes("BFC").sweep(load=list(LOADS))
        )
        serial_path = tmp_path / "serial.jsonl"
        campaign.run(executor=SerialExecutor(), save=serial_path)

        victim, victim_url = spawn_worker()
        survivor, survivor_url = spawn_worker()
        killed = threading.Event()

        def kill_when_running():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(
                        victim_url + "/health", timeout=2
                    ) as response:
                        if json.loads(response.read())["running"]:
                            os.kill(victim.pid, signal.SIGKILL)
                            killed.set()
                            return
                except OSError:
                    return  # victim already gone
                time.sleep(0.005)

        killer = threading.Thread(target=kill_when_running, daemon=True)
        killer.start()
        distributed_path = tmp_path / "distributed.jsonl"
        try:
            executor = DistributedExecutor(
                [victim_url, survivor_url], backoff_s=0.05
            )
            with pytest.warns(RuntimeWarning):
                result_set = campaign.run(
                    executor=executor, save=distributed_path
                )
        finally:
            victim.kill(), victim.wait()
            survivor.kill(), survivor.wait()
        killer.join(timeout=60)
        assert killed.is_set(), "victim was never observed running a trial"
        assert sorted(result_set.records, key=lambda r: r.name) == sorted(
            (r for r in campaign.run(executor=SerialExecutor()).records),
            key=lambda r: r.name,
        )
        # The acceptance bar: the persisted JSONL is byte-identical to the
        # serial run's (modulo wall_seconds, which equality also excludes).
        assert_jsonl_identical(serial_path, distributed_path)

    def test_hanging_worker_hits_timeout_and_work_moves_on(self, serial_records):
        hang = _start_hanging_worker()
        agent = WorkerAgent().start()
        try:
            executor = DistributedExecutor(
                [f"http://127.0.0.1:{hang.server_address[1]}", agent.url],
                trial_timeout=1.0,
                backoff_s=0.05,
            )
            with pytest.warns(RuntimeWarning, match="deadline"):
                records = make_campaign().run(executor=executor).records
            # The hung worker is banned for the campaign: probes must not
            # resurrect it even though its /health still answers.
            hung_client = executor.clients[0]
            assert hung_client.banned
            assert not hung_client.probe()
        finally:
            hang.shutdown()
            agent.stop()
        assert sorted(records, key=lambda r: r.name) == serial_records

    def test_all_workers_dead_falls_back_to_local(self, serial_records):
        executor = DistributedExecutor(
            ["http://127.0.0.1:9", "http://127.0.0.1:10"]
        )
        with pytest.warns(RuntimeWarning, match="no live workers"):
            records = make_campaign().run(executor=executor).records
        assert sorted(records, key=lambda r: r.name) == serial_records

    def test_local_fallback_can_be_disabled(self):
        executor = DistributedExecutor(
            ["http://127.0.0.1:9"], local_fallback=False
        )
        with pytest.raises(DistributedError):
            make_campaign(loads=LOADS[:1]).run(executor=executor)

    def test_coordinator_restart_resumes_only_pending_trials(
        self, tmp_path, serial_records
    ):
        save = tmp_path / "campaign.jsonl"
        # "Crash" after two trials: a first run over a subset of the grid
        # leaves exactly the JSONL a killed coordinator would have persisted.
        make_campaign(loads=LOADS[:2]).run(
            executor=SerialExecutor(), save=save
        )
        agent = WorkerAgent().start()
        try:
            executor = DistributedExecutor([agent.url])
            result_set = make_campaign().run(
                executor=executor, save=save, resume=save
            )
            # Idempotent retry contract: finished trials are not re-run.
            assert agent.state.completed == len(LOADS) - 2
        finally:
            agent.stop()
        assert sorted(result_set.records, key=lambda r: r.name) == serial_records


def _start_hanging_worker() -> ThreadingHTTPServer:
    """A worker that answers /health but wedges forever on /run."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002
            pass

        def do_GET(self):
            body = json.dumps(
                {"kind": "repro.worker", "protocol": PROTOCOL_VERSION,
                 "slots": 1, "running": None, "completed": 0, "failed": 0}
            ).encode()
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_POST(self):
            time.sleep(300)  # never answers inside any test deadline

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


# ---------------------------------------------------------------------------
# Protocol guards
# ---------------------------------------------------------------------------


def _post_run(url, payload, token=None):
    parsed = url.split("//", 1)[1]
    host, port = parsed.split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=10)
    headers = {"Content-Type": "application/octet-stream"}
    if token is not None:
        headers["X-Repro-Token"] = token
    conn.request("POST", "/run", body=pickle.dumps(payload), headers=headers)
    response = conn.getresponse()
    body = response.read()
    conn.close()
    return response.status, body


class TestWorkerAgentProtocol:
    @pytest.fixture()
    def agent(self):
        agent = WorkerAgent().start()
        yield agent
        agent.stop()

    def test_health_reports_status(self, agent):
        with urllib.request.urlopen(agent.url + "/health", timeout=5) as resp:
            payload = json.loads(resp.read())
        assert payload["kind"] == "repro.worker"
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["slots"] == 1
        assert payload["running"] is None
        assert payload["completed"] == 0

    def test_fingerprint_mismatch_is_rejected_409(self, agent):
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        status, body = _post_run(
            agent.url,
            {"protocol": PROTOCOL_VERSION, "trial": trial,
             "fingerprint": "0" * 12},
        )
        assert status == 409
        assert b"fingerprint mismatch" in body
        assert agent.state.completed == 0

    def test_protocol_version_mismatch_is_rejected_409(self, agent):
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        status, body = _post_run(
            agent.url,
            {"protocol": PROTOCOL_VERSION + 1, "trial": trial,
             "fingerprint": _config_fingerprint(trial.config)},
        )
        assert status == 409
        assert b"protocol mismatch" in body

    def test_undecodable_payload_is_rejected_400(self, agent):
        conn = http.client.HTTPConnection(*agent.address, timeout=10)
        conn.request("POST", "/run", body=b"not a pickle")
        assert conn.getresponse().status == 400
        conn.close()

    def test_token_required_when_configured(self):
        agent = WorkerAgent(token="sesame").start()
        try:
            (trial,) = make_campaign(loads=LOADS[:1]).trials()
            payload = {
                "protocol": PROTOCOL_VERSION, "trial": trial,
                "fingerprint": _config_fingerprint(trial.config),
            }
            status, _ = _post_run(agent.url, payload)
            assert status == 403
            status, _ = _post_run(agent.url, payload, token="sesame")
            assert status == 200
            # The executor path carries the token through WorkerClient.
            client = WorkerClient(agent.url, token="sesame")
            record, result = client.run_trial(trial, timeout=60)
            assert record.name == trial.name
        finally:
            agent.stop()

    def test_poison_reply_raises_instead_of_requeueing(self):
        # A 4xx (here: a token the worker refuses) means no other worker
        # would fare better, so run_trial surfaces it instead of retrying.
        agent = WorkerAgent(token="sesame").start()
        try:
            (trial,) = make_campaign(loads=LOADS[:1]).trials()
            client = WorkerClient(agent.url, token="wrong")
            with pytest.raises(CampaignError, match="rejected"):
                client.run_trial(trial, timeout=60)
        finally:
            agent.stop()

    def test_shutdown_endpoint_stops_the_agent(self):
        agent = WorkerAgent().start()
        client = WorkerClient(agent.url)
        assert client.probe()
        client.shutdown()
        deadline = time.monotonic() + 10
        while client.probe(timeout=1) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not client.probe(timeout=1)


# ---------------------------------------------------------------------------
# Pieces: rosters, files, timeouts, artifact shipping
# ---------------------------------------------------------------------------


class TestWorkersFile:
    def test_parses_urls_comments_and_blanks(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text(
            "# the lab boxes\n"
            "http://10.0.0.1:8421\n"
            "\n"
            "http://10.0.0.2:8421/  # trailing slash + comment\n"
        )
        assert load_workers_file(path) == [
            "http://10.0.0.1:8421",
            "http://10.0.0.2:8421",
        ]

    def test_rejects_non_urls(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text("10.0.0.1:8421\n")
        with pytest.raises(CampaignError, match="not an http"):
            load_workers_file(path)

    def test_rejects_empty_roster(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(CampaignError, match="no workers"):
            load_workers_file(path)

    def test_executor_accepts_a_workers_file(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text("http://127.0.0.1:9\n")
        executor = DistributedExecutor(path)
        assert [c.url for c in executor.clients] == ["http://127.0.0.1:9"]


class TestTimeoutDerivation:
    def test_unmeasured_trials_get_the_default(self):
        executor = DistributedExecutor(["http://127.0.0.1:9"],
                                       default_timeout_s=123.0)
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        assert executor._timeout_for(trial) == 123.0

    def test_measured_cost_scales_the_deadline(self, tmp_path):
        cache = CostCache(tmp_path / "c.json")
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        cache.record(trial, 10.0)
        executor = DistributedExecutor(
            ["http://127.0.0.1:9"], cost_cache=cache, timeout_factor=8.0
        )
        assert executor._timeout_for(trial) == 80.0

    def test_short_measurements_are_clamped_to_the_floor(self, tmp_path):
        cache = CostCache(tmp_path / "c.json")
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        cache.record(trial, 0.01)
        executor = DistributedExecutor(
            ["http://127.0.0.1:9"], cost_cache=cache, min_timeout_s=30.0
        )
        assert executor._timeout_for(trial) == 30.0

    def test_explicit_timeout_overrides_everything(self, tmp_path):
        cache = CostCache(tmp_path / "c.json")
        (trial,) = make_campaign(loads=LOADS[:1]).trials()
        cache.record(trial, 10.0)
        executor = DistributedExecutor(
            ["http://127.0.0.1:9"], cost_cache=cache, trial_timeout=7.0
        )
        assert executor._timeout_for(trial) == 7.0


class TestArtifactShipping:
    def test_pack_unpack_roundtrip(self, tmp_path):
        src = tmp_path / "run"
        (src / "nested").mkdir(parents=True)
        (src / "flows.jsonl").write_bytes(b"line1\nline2\n")
        (src / "nested" / "x.bin").write_bytes(b"\x00\x01")
        payload = pack_dir(str(src))
        assert sorted(payload) == ["flows.jsonl", "nested/x.bin"]
        dest = tmp_path / "copy"
        unpack_dir(str(dest), payload)
        assert (dest / "flows.jsonl").read_bytes() == b"line1\nline2\n"
        assert (dest / "nested" / "x.bin").read_bytes() == b"\x00\x01"

    def test_unpack_rejects_path_escape(self, tmp_path):
        with pytest.raises(ValueError, match="escapes"):
            unpack_dir(str(tmp_path / "d"), {"../evil": b"x"})


class TestValidation:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(CampaignError, match="at least one worker"):
            DistributedExecutor([])

    def test_rejects_bogus_worker_url(self):
        with pytest.raises(CampaignError, match="not an http"):
            DistributedExecutor(["ftp://example.com"])

    def test_agent_rejects_silly_slot_counts(self):
        with pytest.raises(CampaignError, match="slots"):
            WorkerAgent(slots=0)
