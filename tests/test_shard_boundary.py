"""Unit tests for boundary channels, the packet wire codec and the engine's
boundary scheduling hook."""

from dataclasses import replace

import pytest

from repro.experiments.runner import build_simulation
from repro.experiments.scenarios import fig5a_configs
from repro.shard.boundary import (
    BoundaryChannel,
    InjectionQueue,
    attach_boundaries,
    packet_from_wire,
    packet_to_wire,
)
from repro.shard.coordinator import ShardError, run_sharded_experiment
from repro.shard.partition import partition_topology
from repro.sim.engine import SimulationError, Simulator
from repro.sim.packet import FlowKey, IntHop, Packet, PacketKind


def make_data_packet(**overrides):
    kwargs = dict(
        kind=PacketKind.DATA,
        flow_id=7,
        key=FlowKey(src=1, dst=2, src_port=1007, dst_port=4791),
        size=1048,
        seq=3,
        flow_size=9000,
        created_ns=123,
        ecn_capable=True,
        ecn_marked=True,
        int_enabled=True,
        int_stack=[IntHop("tor0", 100, 5000, 200, 1e10)],
        first_of_flow=True,
        last_of_flow=False,
        hops=2,
        cur_ingress=4,
        vfid=99,
        vfid_space=4096,
    )
    kwargs.update(overrides)
    return Packet(**kwargs)


class TestPacketWireCodec:
    def test_data_packet_round_trip(self):
        packet = make_data_packet()
        clone = packet_from_wire(packet_to_wire(packet), {})
        for slot in Packet.__slots__:
            if slot in ("key", "int_stack"):
                continue
            assert getattr(clone, slot) == getattr(packet, slot), slot
        assert clone.key == packet.key
        assert clone.key.vfid(4096) == packet.key.vfid(4096)
        assert [
            (h.node, h.timestamp_ns, h.tx_bytes, h.queue_bytes, h.rate_bps)
            for h in clone.int_stack
        ] == [("tor0", 100, 5000, 200, 1e10)]

    def test_bloom_frame_round_trip(self):
        packet = Packet(
            kind=PacketKind.BLOOM,
            flow_id=0,
            key=FlowKey(src=-2, dst=-2, src_port=0, dst_port=0),
            size=50,
            bloom_bits=b"\x01\x02\xff",
        )
        clone = packet_from_wire(packet_to_wire(packet), {})
        assert clone.kind is PacketKind.BLOOM
        assert clone.bloom_bits == b"\x01\x02\xff"
        assert clone.is_control

    def test_flow_keys_are_interned_per_flow(self):
        cache = {}
        a = packet_from_wire(packet_to_wire(make_data_packet(seq=0)), cache)
        b = packet_from_wire(packet_to_wire(make_data_packet(seq=1)), cache)
        assert a.key is b.key  # one FlowKey per flow, like the sender side


class TestScheduleBoundary:
    def test_orders_like_the_serial_insertion_point(self):
        # A local event scheduled at instant 60 for time 100 must yield to a
        # boundary event whose ancestry says it was scheduled earlier (50) —
        # and must precede one whose ancestry says later (80) — even though
        # both boundary events are injected afterwards.
        sim = Simulator()
        fired = []
        sim.schedule_at(60, lambda: sim.schedule_at(100, fired.append, "local-60"))
        sim.run(until=90)  # conservative epoch boundary before the deliveries
        sim.schedule_boundary(100, (80, 70, 60, 50), fired.append, "boundary-80")
        sim.schedule_boundary(100, (50, 40, 30, 20), fired.append, "boundary-50")
        sim.run()
        assert fired == ["boundary-50", "local-60", "boundary-80"]

    def test_equal_ancestry_fires_in_injection_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_boundary(10, (5, 4, 3, 2), fired.append, "first")
        sim.schedule_boundary(10, (5, 4, 3, 2), fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_rejects_past_delivery_and_bad_ancestry(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_boundary(1, (0, 0, 0, 0), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_boundary(100, (50, 60, 30, 20), lambda: None)

    def test_serial_schedule_ignores_boundary_fields(self):
        # Public-API scheduling must keep firing in plain seq order.
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(10, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]


class TestBoundaryChannel:
    def test_capture_records_departure_arrival_and_ancestry(self):
        sim = Simulator()
        outbox = []
        channel = BoundaryChannel(
            sim, delay_ns=1000, dest_shard=1, dest_node="tor1",
            dest_iface=4, outbox=outbox,
        )
        packet = make_data_packet()
        # The capture receives the delivery post's own delay (serialization
        # 800 + propagation 1000) and computes arrival from it.
        sim.schedule(70, channel.receive, 800 + 1000, packet, 4)
        sim.run()
        ((dest, arrival, ancestry, node, iface, wire),) = outbox
        assert (dest, node, iface) == (1, "tor1", 4)
        assert arrival == 70 + 800 + 1000
        assert ancestry[0] == 70  # commit (serialization start) instant
        assert packet_from_wire(wire, {}).flow_id == packet.flow_id

    def test_attach_boundaries_rewires_only_local_cut_ports(self):
        config = fig5a_configs("tiny", schemes=["DCQCN"], seed=1)["DCQCN"]
        sim, env, topo, _ = build_simulation(config)
        spec = partition_topology(topo, 2)
        outbox, rewired = attach_boundaries(sim, topo, spec, 0)
        local_cut_ends = sum(
            1
            for cut in spec.cuts
            for end, other in ((cut.a, cut.shard_a), (cut.b, cut.shard_b))
            if other == 0
        )
        assert rewired == local_cut_ends
        assert outbox == []
        # Rewired ports deliver into their channel instead of the peer node.
        for node in topo.switches.values():
            if spec.shard_of[node.name] != 0:
                continue
            for iface in node.interfaces:
                peer = iface.tx.peer_node
                if peer is not None and spec.shard_of[peer.name] != 0:
                    assert iface.tx._peer_receive.__self__.__class__.__name__ == (
                        "BoundaryChannel"
                    )
                    assert iface.tx._post is not sim.post

    def test_injection_queue_resolves_nodes_and_orders(self):
        config = fig5a_configs("tiny", schemes=["DCQCN"], seed=1)["DCQCN"]
        sim, env, topo, _ = build_simulation(config)
        injector = InjectionQueue(sim, topo)
        seen = []
        target = topo.tor_switch_of(0)
        target.receive = lambda packet, iface: seen.append(packet.seq)
        wire_a = packet_to_wire(make_data_packet(seq=11))
        wire_b = packet_to_wire(make_data_packet(seq=22))
        injector.inject(
            [
                (500, (100, 90, 80, 70), target.name, 0, wire_a),
                (500, (100, 90, 80, 70), target.name, 0, wire_b),
            ]
        )
        sim.run()
        assert seen == [11, 22]
        assert injector.injected == 2


class TestShardEntryPoint:
    def test_max_events_is_rejected(self):
        config = fig5a_configs("tiny", schemes=["DCQCN"], seed=1)["DCQCN"]
        config = replace(config, shards=2, max_events=10)
        with pytest.raises(ShardError):
            run_sharded_experiment(config)
