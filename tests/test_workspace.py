"""Experiment workspaces: run folders, manifests, reports, artifact collection."""

import io
import json
import os
from pathlib import Path

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    ResultSet,
    SerialExecutor,
    TrialRecord,
    Workspace,
    render_report,
)
from repro.campaign.workspace import sweep_axes
from repro.cli import main


def make_campaign(**fixed):
    fixed.setdefault("duration_ns", 150_000)
    return (
        Campaign("ws")
        .schemes("BFC", "DCQCN")
        .sweep(load=[0.4, 0.6])
        .fixed(**fixed)
    )


def run_dir_of(root) -> Path:
    (run_dir,) = Path(root).iterdir()
    return run_dir


class TestWorkspaceRun:
    @pytest.fixture(scope="class")
    def workspace_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ws-root")
        # cores=1 = the scheduled executor: serial execution order, plus the
        # measured-cost cache and plan the workspace is expected to capture.
        result_set = make_campaign().run(cores=1, workspace=root)
        return root, result_set

    def test_creates_a_timestamped_run_folder(self, workspace_run):
        root, _ = workspace_run
        run_dir = run_dir_of(root)
        assert run_dir.name.startswith("ws-")
        assert sorted(p.name for p in run_dir.iterdir()) == [
            "manifest.json",
            "report.md",
            "results.costs.json",
            "results.jsonl",
        ]

    def test_results_jsonl_is_the_canonical_resultset(self, workspace_run):
        root, result_set = workspace_run
        reloaded = ResultSet.load(run_dir_of(root) / "results.jsonl")
        assert reloaded == result_set

    def test_manifest_records_provenance(self, workspace_run):
        root, _ = workspace_run
        manifest = json.loads(
            (run_dir_of(root) / "manifest.json").read_text()
        )
        assert manifest["kind"] == "repro.campaign.manifest"
        assert manifest["campaign"] == "ws"
        assert manifest["trials"] == 4
        assert manifest["executor"] == "ScheduledExecutor"
        assert manifest["plan"]["num_trials"] == 4
        assert manifest["platform"]["python"]
        assert manifest["platform"]["cpu_count"] >= 1

    def test_report_has_the_standard_tables(self, workspace_run):
        root, _ = workspace_run
        report = (run_dir_of(root) / "report.md").read_text()
        assert "# Campaign report: ws" in report
        assert "## Overall (mean over repeats and sweep points)" in report
        assert "## By load" in report
        assert "p99 slowdown" in report
        assert "| BFC |" in report and "| DCQCN |" in report
        # one row per (load, scheme) pair
        assert report.count("| 0.4 |") == 2 and report.count("| 0.6 |") == 2

    def test_cost_cache_lands_in_the_workspace(self, workspace_run):
        root, _ = workspace_run
        payload = json.loads(
            (run_dir_of(root) / "results.costs.json").read_text()
        )
        assert payload["kind"] == "repro.campaign.costcache"
        assert len(payload["costs"]) == 4


class TestWorkspaceArtifacts:
    def test_spill_artifacts_are_collected_and_repointed(self, tmp_path):
        root = tmp_path / "root"
        scratch = tmp_path / "scratch"
        result_set = (
            Campaign("wsart")
            .schemes("BFC")
            .sweep(load=[0.4])
            .fixed(duration_ns=150_000, results_dir=str(scratch))
            .run(executor=SerialExecutor(), workspace=root)
        )
        run_dir = run_dir_of(root)
        (record,) = result_set.records
        collected = record.artifacts["results_dir"]
        assert Path(collected).is_relative_to(run_dir / "artifacts")
        assert (Path(collected) / "flows.jsonl").exists()
        # The persisted JSONL points at the workspace copy too.
        (reloaded,) = ResultSet.load(run_dir / "results.jsonl").records
        assert reloaded.artifacts["results_dir"] == collected
        # And the analyzer opens it from the workspace alone.
        analyzer = result_set.analyzer_for(record.label)
        assert analyzer.summarize()["flows_offered"] > 0


class TestWorkspaceResume:
    def test_reusing_a_workspace_resumes_its_results(self, tmp_path):
        root = tmp_path / "root"
        campaign = make_campaign()
        campaign.run(executor=SerialExecutor(), workspace=root)
        run_dir = run_dir_of(root)
        before = (run_dir / "results.jsonl").read_text()

        class Exploding(SerialExecutor):
            def run(self, trials):
                raise AssertionError("resume should leave nothing to run")

        again = campaign.run(
            executor=Exploding(), workspace=Workspace(run_dir)
        )
        assert len(again.records) == 4
        after = (run_dir / "results.jsonl").read_text()
        assert before == after

    def test_workspace_conflicts_with_save_and_resume(self, tmp_path):
        with pytest.raises(CampaignError, match="workspace"):
            make_campaign().run(
                workspace=tmp_path, save=tmp_path / "x.jsonl"
            )

    def test_same_second_run_dirs_do_not_collide(self, tmp_path):
        first = Workspace.create(tmp_path, "demo")
        second = Workspace.create(tmp_path, "demo")
        assert first.run_dir != second.run_dir
        assert first.run_dir.exists() and second.run_dir.exists()


class TestReportRendering:
    def records(self):
        rows = []
        for scheme in ("BFC", "HPCC"):
            for load, p99 in ((0.4, 2.0), (0.8, 8.0)):
                rows.append(
                    TrialRecord(
                        name=f"r/{scheme}/{load}",
                        label=f"{scheme}@{load}",
                        scheme=scheme,
                        params={"load": load, "incast": 0.05},
                        metrics={
                            "p99_slowdown": p99,
                            "mean_slowdown": p99 / 2,
                            "completion_rate": 1.0,
                        },
                    )
                )
        return rows

    def test_sweep_axes_are_the_varying_params(self):
        assert sweep_axes(self.records()) == ["load"]

    def test_axis_missing_on_some_records_still_counts(self):
        records = self.records()
        records[0].params.pop("incast")
        assert sweep_axes(records) == ["incast", "load"]

    def test_report_tables_aggregate_by_axis_and_scheme(self):
        report = render_report(ResultSet(self.records(), campaign="r"))
        assert "## By load" in report
        assert "| 0.4 | BFC | 2 | 1 | 1 |" in report
        assert "| 0.8 | HPCC | 8 | 4 | 1 |" in report

    def test_empty_result_set_renders_gracefully(self):
        report = render_report(ResultSet([], campaign="empty"))
        assert "_No records._" in report

    def test_report_cli_matches_workspace_report(self, tmp_path):
        result_set = ResultSet(self.records(), campaign="r")
        jsonl = tmp_path / "r.jsonl"
        result_set.save(jsonl)
        out = io.StringIO()
        assert main(["report", str(jsonl)], out=out) == 0
        assert out.getvalue() == render_report(ResultSet.load(jsonl))

    def test_report_cli_writes_out_file(self, tmp_path):
        jsonl = tmp_path / "r.jsonl"
        ResultSet(self.records(), campaign="r").save(jsonl)
        target = tmp_path / "report.md"
        out = io.StringIO()
        assert main(["report", str(jsonl), "--out", str(target)], out=out) == 0
        assert "# Campaign report: r" in target.read_text()

    def test_report_cli_rejects_missing_file(self, tmp_path):
        assert main(["report", str(tmp_path / "nope.jsonl")], out=io.StringIO()) == 2
