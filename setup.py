"""Package metadata and console entry point for the BFC reproduction."""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__.
_init = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(
    encoding="utf-8"
)
VERSION = re.search(r'__version__ = "([^"]+)"', _init).group(1)

setup(
    name="repro-bfc",
    version=VERSION,
    description=(
        "Pure-Python reproduction of 'Backpressure Flow Control' "
        "(Goyal et al., NSDI 2022): packet-level simulator, BFC and baseline "
        "schemes, and a declarative campaign runner"
    ),
    long_description=(
        "A from-scratch packet-level discrete-event simulator plus the BFC "
        "switch/NIC logic, DCQCN/HPCC baselines, the paper's topologies and "
        "workloads, and a campaign layer that expands {scheme x sweep x "
        "repeats} grids and runs them serially or across a process pool."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
        "Topic :: Scientific/Engineering",
    ],
)
