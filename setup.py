"""Setuptools shim.

The canonical project metadata lives in pyproject.toml; this file exists so
the package can be installed in editable mode on minimal environments that
lack the ``wheel`` package (pip falls back to the legacy ``setup.py develop``
path when PEP 660 editable wheels cannot be built).
"""

from setuptools import setup

setup()
