"""Network topologies used in the paper's evaluation."""

from .topology import Topology
from .clos import ClosParams, build_leaf_spine, paper_t1_params, paper_t2_params, scaled_params
from .crossdc import CrossDcParams, build_cross_dc
from .validate import ValidationReport, validate_topology

__all__ = [
    "Topology",
    "ClosParams",
    "build_leaf_spine",
    "paper_t1_params",
    "paper_t2_params",
    "scaled_params",
    "CrossDcParams",
    "build_cross_dc",
    "ValidationReport",
    "validate_topology",
]
