"""Topology and routing validation.

BFC (like PFC) is vulnerable to deadlock when routes create cyclic buffer
dependencies (§3.9); the paper assumes loop-free up-down routes.  These
checks let users verify a topology before running long experiments:

* :func:`check_reachability` — every switch has a route to every host, and
  the routes actually terminate at the destination;
* :func:`find_routing_loops` — detect destinations whose forwarding graph
  contains a cycle among switches (a deadlock risk for backpressure schemes);
* :func:`validate_topology` — run everything and return a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.sim.host import Host
from repro.sim.switch import Switch

from .topology import Topology


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_topology`."""

    missing_routes: List[Tuple[str, int]] = field(default_factory=list)
    dead_end_routes: List[Tuple[str, int]] = field(default_factory=list)
    routing_loops: List[Tuple[int, List[str]]] = field(default_factory=list)
    unreachable_pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.missing_routes
            or self.dead_end_routes
            or self.routing_loops
            or self.unreachable_pairs
        )

    def summary(self) -> str:
        if self.ok:
            return "topology OK: all routes present, terminating, and loop-free"
        parts = []
        if self.missing_routes:
            parts.append(f"{len(self.missing_routes)} missing routes")
        if self.dead_end_routes:
            parts.append(f"{len(self.dead_end_routes)} dead-end routes")
        if self.routing_loops:
            parts.append(f"{len(self.routing_loops)} destinations with routing loops")
        if self.unreachable_pairs:
            parts.append(f"{len(self.unreachable_pairs)} unreachable host pairs")
        return "topology problems: " + ", ".join(parts)


def _next_hops(switch: Switch, dst: int) -> List[object]:
    """The neighbour nodes a switch may forward traffic for ``dst`` to."""
    choices = switch.routes.get(dst, [])
    return [
        switch.interfaces[index].peer_node
        for index in choices
        if index < len(switch.interfaces) and switch.interfaces[index].peer_node is not None
    ]


def check_reachability(topology: Topology) -> Tuple[List[Tuple[str, int]], List[Tuple[str, int]]]:
    """Check that every switch can forward toward every host.

    Returns ``(missing, dead_ends)`` where *missing* lists (switch, host)
    pairs with no routing entry and *dead_ends* lists entries whose interface
    is unconnected.
    """
    missing: List[Tuple[str, int]] = []
    dead_ends: List[Tuple[str, int]] = []
    for switch in topology.all_switches():
        for host_id in topology.host_ids():
            choices = switch.routes.get(host_id)
            if not choices:
                missing.append((switch.name, host_id))
                continue
            for index in choices:
                if index >= len(switch.interfaces) or switch.interfaces[index].peer_node is None:
                    dead_ends.append((switch.name, host_id))
                    break
    return missing, dead_ends


def find_routing_loops(topology: Topology) -> List[Tuple[int, List[str]]]:
    """Destinations whose forwarding graph has a cycle among switches.

    For each destination host, build the directed graph "switch A may forward
    to switch B" and look for a cycle with a depth-first search.  Up-down
    (valley-free) routing is loop-free by construction, so any cycle reported
    here is a configuration error and a deadlock risk for backpressure.
    """
    loops: List[Tuple[int, List[str]]] = []
    switches = topology.all_switches()
    for host_id in topology.host_ids():
        graph: Dict[str, List[str]] = {}
        for switch in switches:
            graph[switch.name] = [
                peer.name
                for peer in _next_hops(switch, host_id)
                if isinstance(peer, Switch)
            ]
        cycle = _find_cycle(graph)
        if cycle:
            loops.append((host_id, cycle))
    return loops


def _find_cycle(graph: Dict[str, List[str]]) -> List[str]:
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    stack: List[str] = []

    def visit(node: str) -> List[str]:
        colour[node] = GREY
        stack.append(node)
        for neighbour in graph.get(node, []):
            if colour.get(neighbour, WHITE) == GREY:
                return stack[stack.index(neighbour):] + [neighbour]
            if colour.get(neighbour, WHITE) == WHITE:
                found = visit(neighbour)
                if found:
                    return found
        stack.pop()
        colour[node] = BLACK
        return []

    for node in graph:
        if colour[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return []


def check_host_reachability(topology: Topology, max_hops: int = 16) -> List[Tuple[int, int]]:
    """Host pairs for which following the routing tables never reaches the destination."""
    unreachable: List[Tuple[int, int]] = []
    host_ids = topology.host_ids()
    for src in host_ids:
        tor = topology.tor_switch_of(src)
        for dst in host_ids:
            if src == dst:
                continue
            if not _walks_to_destination(tor, dst, max_hops):
                unreachable.append((src, dst))
    return unreachable


def _walks_to_destination(switch: Switch, dst: int, max_hops: int) -> bool:
    current: Set[object] = {switch}
    for _ in range(max_hops):
        next_nodes: Set[object] = set()
        for node in current:
            if isinstance(node, Host) and node.host_id == dst:
                return True
            if not isinstance(node, Switch):
                continue
            for peer in _next_hops(node, dst):
                next_nodes.add(peer)
        if not next_nodes:
            return False
        if any(isinstance(node, Host) and node.host_id == dst for node in next_nodes):
            return True
        current = next_nodes
    return False


def validate_topology(topology: Topology) -> ValidationReport:
    """Run every check and return a consolidated report."""
    missing, dead_ends = check_reachability(topology)
    report = ValidationReport(
        missing_routes=missing,
        dead_end_routes=dead_ends,
        routing_loops=find_routing_loops(topology),
        unreachable_pairs=check_host_reachability(topology),
    )
    return report
