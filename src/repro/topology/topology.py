"""Topology container: hosts, switches, links and path-delay queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.flow import Flow
from repro.sim.host import Host
from repro.sim.switch import Switch


@dataclass
class LinkRecord:
    """Book-keeping about one full-duplex link (for reporting/utilization)."""

    a_name: str
    b_name: str
    rate_bps: float
    delay_ns: int
    link_class: str


class Topology:
    """Holds every node of an experiment and answers path questions.

    The builder functions in :mod:`repro.topology.clos` and
    :mod:`repro.topology.crossdc` populate the container; the experiment
    runner and the analysis layer only interact with this API.
    """

    def __init__(self, sim, host_link_rate_bps: float, link_delay_ns: int) -> None:
        self.sim = sim
        self.host_link_rate_bps = host_link_rate_bps
        self.link_delay_ns = link_delay_ns
        self.hosts: Dict[int, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: List[LinkRecord] = []
        self.tor_of_host: Dict[int, str] = {}
        self.dc_of_host: Dict[int, int] = {}
        self.flow_registry: Dict[int, Flow] = {}
        # The builder installs a path-delay function: (src_host, dst_host) -> ns.
        self._delay_fn: Optional[Callable[[int, int], int]] = None

    # -- population -----------------------------------------------------------------

    def add_host(self, host: Host, tor_name: str, dc: int = 0) -> None:
        self.hosts[host.host_id] = host
        self.tor_of_host[host.host_id] = tor_name
        self.dc_of_host[host.host_id] = dc

    def add_switch(self, switch: Switch, tier: str) -> None:
        switch.tier = tier
        self.switches[switch.name] = switch

    def record_link(self, record: LinkRecord) -> None:
        self.links.append(record)

    def set_delay_function(self, fn: Callable[[int, int], int]) -> None:
        self._delay_fn = fn

    # -- queries ----------------------------------------------------------------------

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    def host_ids(self) -> List[int]:
        return sorted(self.hosts)

    def all_switches(self) -> List[Switch]:
        return list(self.switches.values())

    def switches_in_tier(self, tier: str) -> List[Switch]:
        return [s for s in self.switches.values() if getattr(s, "tier", None) == tier]

    def tor_switch_of(self, host_id: int) -> Switch:
        return self.switches[self.tor_of_host[host_id]]

    def same_rack(self, a: int, b: int) -> bool:
        return self.tor_of_host.get(a) == self.tor_of_host.get(b)

    def same_dc(self, a: int, b: int) -> bool:
        return self.dc_of_host.get(a, 0) == self.dc_of_host.get(b, 0)

    def one_way_delay_ns(self, src: int, dst: int) -> int:
        """Propagation delay of the up-down path between two hosts."""
        if self._delay_fn is None:
            raise RuntimeError("topology builder did not install a delay function")
        return self._delay_fn(src, dst)

    def base_rtt_ns(self, src: int, dst: int) -> int:
        return 2 * self.one_way_delay_ns(src, dst)

    def max_base_rtt_ns(self) -> int:
        """The largest base RTT between any pair of hosts (used for BDP caps)."""
        ids = self.host_ids()
        if len(ids) < 2:
            return 2 * self.link_delay_ns
        worst = 0
        # Checking one representative pair per (rack, dc) combination is
        # enough because the topologies are symmetric; fall back to a simple
        # scan capped at a few hundred pairs.
        sample = ids[: min(len(ids), 32)]
        for a in sample:
            for b in sample:
                if a != b:
                    worst = max(worst, self.base_rtt_ns(a, b))
        return worst

    # -- flow helpers -------------------------------------------------------------------

    def start_flow(self, flow: Flow) -> None:
        """Schedule a flow to start at its ``start_ns`` on the source host.

        Flows with ``depends_on`` are registered but *not* scheduled: a
        :class:`repro.workloads.flowgraph.FlowGraphLauncher` launches them
        when their prerequisite flows complete.  The registration keeps the
        flow visible to completion bookkeeping and the results harvest.
        """
        self.flow_registry[flow.flow_id] = flow
        if flow.depends_on:
            return
        host = self.host(flow.src)
        self.sim.schedule_at(max(self.sim.now, flow.start_ns), host.start_flow, flow)

    def start_flows(self, flows) -> None:
        for flow in flows:
            self.start_flow(flow)

    def total_buffer_occupancy(self) -> int:
        return sum(s.buffer_occupancy() for s in self.switches.values())

    def max_buffer_occupancy(self) -> int:
        occupancies = [s.buffer_occupancy() for s in self.switches.values()]
        return max(occupancies) if occupancies else 0

    def total_dropped_packets(self) -> int:
        return sum(s.dropped_packets() for s in self.switches.values())
