"""Leaf-spine (2-tier Clos) topology builders.

The paper evaluates two fat-tree instances:

* **T1** — 128 servers, 8 ToRs (16 servers each), 8 spines, 2:1 oversubscription.
* **T2** — 64 servers, 4 ToRs (16 servers each), 8 spines, 2:1 oversubscription.

All links run at 100 Gbps with 1 us propagation delay, switch buffers are
12 MB, and the maximum base RTT is 8 us.  Those parameters are expensive for a
pure-Python packet simulator, so :func:`scaled_params` provides smaller
defaults with the same shape; every experiment accepts explicit parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim import units
from repro.sim.host import Host
from repro.sim.port import connect
from repro.sim.switch import Switch

from .topology import LinkRecord, Topology

SwitchFactory = Callable[[str, str], Switch]
HostFactory = Callable[[str, int], Host]


@dataclass
class ClosParams:
    """Shape and link parameters of a leaf-spine fabric."""

    num_tors: int
    hosts_per_tor: int
    num_spines: int
    link_rate_bps: float = units.gbps(100)
    link_delay_ns: int = 1_000
    name_prefix: str = ""

    @property
    def num_hosts(self) -> int:
        return self.num_tors * self.hosts_per_tor

    def oversubscription(self) -> float:
        """Downlink capacity over uplink capacity at a ToR."""
        return self.hosts_per_tor / self.num_spines

    def base_rtt_ns(self) -> int:
        """Worst-case (inter-rack) base round-trip time."""
        return 8 * self.link_delay_ns

    def bdp_bytes(self) -> int:
        """End-to-end bandwidth-delay product at the host line rate."""
        return units.bandwidth_delay_product(self.link_rate_bps, self.base_rtt_ns())


def paper_t1_params(
    link_rate_bps: float = units.gbps(100), link_delay_ns: int = 1_000
) -> ClosParams:
    """The paper's T1 topology: 128 servers, 8 ToRs, 8 spines."""
    return ClosParams(
        num_tors=8,
        hosts_per_tor=16,
        num_spines=8,
        link_rate_bps=link_rate_bps,
        link_delay_ns=link_delay_ns,
    )


def paper_t2_params(
    link_rate_bps: float = units.gbps(100), link_delay_ns: int = 1_000
) -> ClosParams:
    """The paper's T2 topology: 64 servers, 4 ToRs, 8 spines."""
    return ClosParams(
        num_tors=4,
        hosts_per_tor=16,
        num_spines=8,
        link_rate_bps=link_rate_bps,
        link_delay_ns=link_delay_ns,
    )


def scaled_params(
    num_tors: int = 2,
    hosts_per_tor: int = 8,
    num_spines: int = 4,
    link_rate_bps: float = units.gbps(10),
    link_delay_ns: int = 1_000,
) -> ClosParams:
    """A smaller fabric with the same 2:1 oversubscription, for fast runs."""
    return ClosParams(
        num_tors=num_tors,
        hosts_per_tor=hosts_per_tor,
        num_spines=num_spines,
        link_rate_bps=link_rate_bps,
        link_delay_ns=link_delay_ns,
    )


def build_leaf_spine(
    sim,
    params: ClosParams,
    switch_factory: SwitchFactory,
    host_factory: HostFactory,
    topology: Optional[Topology] = None,
    host_id_offset: int = 0,
    dc: int = 0,
) -> Topology:
    """Build one leaf-spine fabric and install ECMP up-down routes.

    Parameters
    ----------
    switch_factory:
        Called as ``switch_factory(name, tier)`` with tier in {"tor", "spine"}.
    host_factory:
        Called as ``host_factory(name, host_id)``.
    topology:
        Pass an existing container to add this fabric to it (used by the
        cross-data-center builder); by default a new one is created.
    host_id_offset, dc:
        Host-ID numbering offset and data-center index for multi-DC setups.
    """
    topo = topology or Topology(sim, params.link_rate_bps, params.link_delay_ns)
    prefix = params.name_prefix

    tors: List[Switch] = []
    spines: List[Switch] = []
    for t in range(params.num_tors):
        tor = switch_factory(f"{prefix}tor{t}", "tor")
        topo.add_switch(tor, "tor")
        tors.append(tor)
    for s in range(params.num_spines):
        spine = switch_factory(f"{prefix}spine{s}", "spine")
        topo.add_switch(spine, "spine")
        spines.append(spine)

    # Host <-> ToR links.
    host_iface_on_tor: Dict[int, int] = {}
    hosts_by_tor: Dict[str, List[int]] = {tor.name: [] for tor in tors}
    host_id = host_id_offset
    for t, tor in enumerate(tors):
        for h in range(params.hosts_per_tor):
            host = host_factory(f"{prefix}h{host_id}", host_id)
            iface_host, iface_tor = connect(
                host,
                tor,
                rate_bps=params.link_rate_bps,
                delay_ns=params.link_delay_ns,
                link_class_ab="host->tor",
                link_class_ba="tor->host",
            )
            topo.add_host(host, tor.name, dc=dc)
            topo.record_link(
                LinkRecord(host.name, tor.name, params.link_rate_bps, params.link_delay_ns, "host-tor")
            )
            host_iface_on_tor[host_id] = iface_tor.index
            hosts_by_tor[tor.name].append(host_id)
            host_id += 1

    # ToR <-> spine links.
    tor_uplinks: Dict[str, List[int]] = {tor.name: [] for tor in tors}
    spine_downlinks: Dict[str, Dict[str, int]] = {spine.name: {} for spine in spines}
    for tor in tors:
        for spine in spines:
            iface_tor, iface_spine = connect(
                tor,
                spine,
                rate_bps=params.link_rate_bps,
                delay_ns=params.link_delay_ns,
                link_class_ab="tor->spine",
                link_class_ba="spine->tor",
            )
            topo.record_link(
                LinkRecord(tor.name, spine.name, params.link_rate_bps, params.link_delay_ns, "tor-spine")
            )
            tor_uplinks[tor.name].append(iface_tor.index)
            spine_downlinks[spine.name][tor.name] = iface_spine.index

    # Routing: ToRs send local traffic straight down and everything else ECMP
    # across all uplinks; spines send toward the destination's ToR.
    all_host_ids = list(range(host_id_offset, host_id))
    for tor in tors:
        routes: Dict[int, List[int]] = {}
        local = set(hosts_by_tor[tor.name])
        for hid in all_host_ids:
            if hid in local:
                routes[hid] = [host_iface_on_tor[hid]]
            else:
                routes[hid] = list(tor_uplinks[tor.name])
        tor.set_routes(routes)
    for spine in spines:
        routes = {}
        for hid in all_host_ids:
            tor_name = topo.tor_of_host[hid]
            routes[hid] = [spine_downlinks[spine.name][tor_name]]
        spine.set_routes(routes)

    _install_delay_function(topo, params)
    return topo


def _install_delay_function(topo: Topology, params: ClosParams) -> None:
    delay = params.link_delay_ns

    def one_way(src: int, dst: int) -> int:
        if src == dst:
            return 0
        if not topo.same_dc(src, dst):
            raise ValueError(
                "leaf-spine delay function asked about hosts in different DCs; "
                "use the cross-DC builder for multi-DC topologies"
            )
        if topo.same_rack(src, dst):
            return 2 * delay  # host -> ToR -> host
        return 4 * delay  # host -> ToR -> spine -> ToR -> host

    topo.set_delay_function(one_way)
