"""Cross-data-center topology (§4.2 "Cross datacenter environments").

Two leaf-spine data centers are joined by a pair of gateway switches
connected over a high-bandwidth, long-delay link (the paper uses a 100 Gbps
link with 200 us one-way delay and a 60 MB gateway buffer).  Each gateway
attaches to every spine switch of its own data center.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sim import units
from repro.sim.port import connect
from repro.sim.switch import Switch

from .clos import ClosParams, HostFactory, SwitchFactory, build_leaf_spine
from .topology import LinkRecord, Topology


@dataclass
class CrossDcParams:
    """Parameters of the two-data-center topology."""

    dc_params: ClosParams
    gateway_link_rate_bps: float = units.gbps(100)
    gateway_delay_ns: int = 200_000  # 200 us one-way
    gateway_uplink_delay_ns: int = 1_000

    def inter_dc_one_way_delay_ns(self) -> int:
        """One-way propagation delay between hosts in different data centers."""
        return (
            4 * self.dc_params.link_delay_ns
            + 2 * self.gateway_uplink_delay_ns
            + self.gateway_delay_ns
        )

    def inter_dc_base_rtt_ns(self) -> int:
        """Base RTT between hosts in different data centers."""
        return 2 * self.inter_dc_one_way_delay_ns()


def build_cross_dc(
    sim,
    params: CrossDcParams,
    switch_factory: SwitchFactory,
    host_factory: HostFactory,
    gateway_factory: Callable[[str, str], Switch] | None = None,
) -> Topology:
    """Build two leaf-spine DCs joined by gateway switches.

    ``gateway_factory`` defaults to ``switch_factory`` (tier "gateway"); pass
    a separate factory to give gateways a larger buffer as the paper does.
    """
    dc_params = params.dc_params
    gateway_factory = gateway_factory or switch_factory

    topo = Topology(sim, dc_params.link_rate_bps, dc_params.link_delay_ns)

    dc0_params = ClosParams(**{**dc_params.__dict__, "name_prefix": "dc0-"})
    dc1_params = ClosParams(**{**dc_params.__dict__, "name_prefix": "dc1-"})
    build_leaf_spine(sim, dc0_params, switch_factory, host_factory, topology=topo, host_id_offset=0, dc=0)
    build_leaf_spine(
        sim,
        dc1_params,
        switch_factory,
        host_factory,
        topology=topo,
        host_id_offset=dc_params.num_hosts,
        dc=1,
    )

    gateways: List[Switch] = []
    for dc in (0, 1):
        gateway = gateway_factory(f"gw{dc}", "gateway")
        topo.add_switch(gateway, "gateway")
        gateways.append(gateway)

    # Gateway <-> spine links (within each DC).
    gw_downlinks: Dict[int, Dict[str, int]] = {0: {}, 1: {}}
    spine_to_gw_iface: Dict[str, int] = {}
    for dc, gateway in enumerate(gateways):
        prefix = f"dc{dc}-"
        spines = [s for s in topo.switches_in_tier("spine") if s.name.startswith(prefix)]
        for spine in spines:
            iface_spine, iface_gw = connect(
                spine,
                gateway,
                rate_bps=dc_params.link_rate_bps,
                delay_ns=params.gateway_uplink_delay_ns,
                link_class_ab="spine->gateway",
                link_class_ba="gateway->spine",
            )
            topo.record_link(
                LinkRecord(
                    spine.name,
                    gateway.name,
                    dc_params.link_rate_bps,
                    params.gateway_uplink_delay_ns,
                    "spine-gateway",
                )
            )
            spine_to_gw_iface[spine.name] = iface_spine.index
            gw_downlinks[dc][spine.name] = iface_gw.index

    # The inter-DC link.
    iface_gw0, iface_gw1 = connect(
        gateways[0],
        gateways[1],
        rate_bps=params.gateway_link_rate_bps,
        delay_ns=params.gateway_delay_ns,
        link_class_ab="gateway->gateway",
        link_class_ba="gateway->gateway",
    )
    topo.record_link(
        LinkRecord(
            gateways[0].name,
            gateways[1].name,
            params.gateway_link_rate_bps,
            params.gateway_delay_ns,
            "inter-dc",
        )
    )
    gw_peer_iface = {0: iface_gw0.index, 1: iface_gw1.index}

    # Routing for remote traffic.
    num_hosts = dc_params.num_hosts
    all_hosts = topo.host_ids()
    for dc, gateway in enumerate(gateways):
        routes: Dict[int, List[int]] = {}
        local_spines = list(gw_downlinks[dc].values())
        for hid in all_hosts:
            host_dc = topo.dc_of_host[hid]
            if host_dc == dc:
                routes[hid] = list(local_spines)
            else:
                routes[hid] = [gw_peer_iface[dc]]
        gateway.set_routes(routes)

    for dc in (0, 1):
        prefix = f"dc{dc}-"
        remote_hosts = [hid for hid in all_hosts if topo.dc_of_host[hid] != dc]
        for spine in topo.switches_in_tier("spine"):
            if not spine.name.startswith(prefix):
                continue
            for hid in remote_hosts:
                spine.add_route(hid, [spine_to_gw_iface[spine.name]])
        local_spines = {
            s.name for s in topo.switches_in_tier("spine") if s.name.startswith(prefix)
        }
        for tor in topo.switches_in_tier("tor"):
            if not tor.name.startswith(prefix):
                continue
            # Remote traffic uses the same ECMP uplink set as any non-local
            # intra-DC destination: every interface toward a local spine.
            uplinks = [
                iface.index
                for iface in tor.interfaces
                if iface.peer_node is not None and iface.peer_node.name in local_spines
            ]
            for hid in remote_hosts:
                tor.add_route(hid, list(uplinks))

    _install_delay_function(topo, params)
    return topo


def _install_delay_function(topo: Topology, params: CrossDcParams) -> None:
    delay = params.dc_params.link_delay_ns
    gw_up = params.gateway_uplink_delay_ns
    gw = params.gateway_delay_ns

    def one_way(src: int, dst: int) -> int:
        if src == dst:
            return 0
        if topo.same_dc(src, dst):
            if topo.same_rack(src, dst):
                return 2 * delay
            return 4 * delay
        # host -> ToR -> spine -> gateway -> gateway -> spine -> ToR -> host
        return 4 * delay + 2 * gw_up + gw

    topo.set_delay_function(one_way)
