"""HPCC congestion control (Li et al., SIGCOMM 2019).

HPCC replaces ECN marks with precise in-band network telemetry (INT): every
switch stamps its egress timestamp, cumulative transmitted bytes, queue length
and port speed onto data packets; the receiver echoes the INT stack back on
ACKs; the sender estimates the utilisation of each link on the path and sizes
its window multiplicatively so that the most-utilised link runs at a target
utilisation ``eta`` (0.95 in the paper), with ``maxStage`` additive-increase
rounds allowed between multiplicative updates.

The implementation follows the pseudocode in the HPCC paper (Algorithm 1),
using per-ACK window updates with a reference window ``Wc`` refreshed once per
RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.host import CongestionControl, SenderFlowState
from repro.sim.packet import IntHop, Packet


@dataclass
class HpccConfig:
    """HPCC parameters (defaults from the paper)."""

    eta: float = 0.95
    max_stage: int = 5
    base_rtt_ns: int = 8_000
    wai_bytes: int = 80
    min_window_bytes: int = 1_048  # one MTU-sized packet + header

    def validate(self) -> None:
        if not 0 < self.eta <= 1:
            raise ValueError("eta must be in (0, 1]")
        if self.max_stage < 1:
            raise ValueError("max_stage must be >= 1")
        if self.base_rtt_ns <= 0:
            raise ValueError("base_rtt_ns must be positive")


class _HpccFlow:
    """Per-flow HPCC state."""

    __slots__ = (
        "window",
        "reference_window",
        "inc_stage",
        "last_update_seq",
        "prev_int",
        "utilisation",
    )

    def __init__(self, initial_window: float) -> None:
        self.window = initial_window
        self.reference_window = initial_window
        self.inc_stage = 0
        self.last_update_seq = 0
        self.prev_int: Optional[List[IntHop]] = None
        self.utilisation = 0.0


class HpccControl(CongestionControl):
    """The HPCC sender algorithm."""

    name = "hpcc"
    has_window = True

    def __init__(self, line_rate_bps: float, config: Optional[HpccConfig] = None) -> None:
        super().__init__(line_rate_bps)
        self.config = config or HpccConfig()
        self.config.validate()
        # W_init = B * T (one BDP at the host line rate).
        self.initial_window = line_rate_bps * self.config.base_rtt_ns / (8 * 1e9)

    # -- helpers -----------------------------------------------------------------

    def _state(self, fstate: SenderFlowState) -> _HpccFlow:
        state = fstate.cc_state.get("hpcc")
        if state is None:
            state = _HpccFlow(self.initial_window)
            fstate.cc_state["hpcc"] = state
        return state

    def _measure_utilisation(self, state: _HpccFlow, int_stack: List[IntHop]) -> Optional[float]:
        """Max per-link utilisation estimate from consecutive INT snapshots."""
        if state.prev_int is None or len(state.prev_int) != len(int_stack):
            state.prev_int = list(int_stack)
            return None
        cfg = self.config
        max_u = 0.0
        tau_ns = cfg.base_rtt_ns
        for prev, cur in zip(state.prev_int, int_stack):
            if cur.node != prev.node:
                continue
            dt = cur.timestamp_ns - prev.timestamp_ns
            if dt <= 0:
                continue
            tx_rate_bps = (cur.tx_bytes - prev.tx_bytes) * 8 * 1e9 / dt
            qlen = min(cur.queue_bytes, prev.queue_bytes)
            bdp_bytes = cur.rate_bps * cfg.base_rtt_ns / (8 * 1e9)
            u = 0.0
            if bdp_bytes > 0:
                u += qlen / bdp_bytes
            if cur.rate_bps > 0:
                u += tx_rate_bps / cur.rate_bps
            if u > max_u:
                max_u = u
                tau_ns = dt
        state.prev_int = list(int_stack)
        tau_ns = min(tau_ns, cfg.base_rtt_ns)
        weight = tau_ns / cfg.base_rtt_ns
        state.utilisation = (1.0 - weight) * state.utilisation + weight * max_u
        return state.utilisation

    # -- CongestionControl hooks ------------------------------------------------------

    def on_flow_start(self, fstate: SenderFlowState, now_ns: int) -> None:
        self._state(fstate)

    def on_ack(self, fstate: SenderFlowState, packet: Packet, now_ns: int) -> None:
        state = self._state(fstate)
        if packet.int_stack:
            utilisation = self._measure_utilisation(state, packet.int_stack)
            if utilisation is not None:
                self._update_window(fstate, state, packet, utilisation)

    def _update_window(
        self,
        fstate: SenderFlowState,
        state: _HpccFlow,
        ack: Packet,
        utilisation: float,
    ) -> None:
        cfg = self.config
        can_refresh = ack.ack_seq > state.last_update_seq
        if utilisation >= cfg.eta or state.inc_stage >= cfg.max_stage:
            ratio = max(utilisation / cfg.eta, 1e-3)
            state.window = state.reference_window / ratio + cfg.wai_bytes
            if can_refresh:
                state.reference_window = state.window
                state.inc_stage = 0
                state.last_update_seq = fstate.next_seq
        else:
            state.window = state.reference_window + cfg.wai_bytes
            if can_refresh:
                state.reference_window = state.window
                state.inc_stage += 1
                state.last_update_seq = fstate.next_seq
        state.window = min(self.initial_window, max(cfg.min_window_bytes, state.window))

    def rate_bps(self, fstate: SenderFlowState) -> float:
        """Pace at W/T so the window is spread over an RTT (as HPCC does)."""
        state = fstate.cc_state.get("hpcc")
        if state is None:
            return self.line_rate_bps
        rate = state.window * 8 * 1e9 / self.config.base_rtt_ns
        return max(1.0, min(self.line_rate_bps, rate))

    def window_bytes(self, fstate: SenderFlowState) -> Optional[int]:
        state = fstate.cc_state.get("hpcc")
        if state is None:
            return int(self.initial_window)
        return max(self.config.min_window_bytes, int(state.window))

    # -- introspection (used by tests) ---------------------------------------------------

    def current_window(self, fstate: SenderFlowState) -> float:
        return self._state(fstate).window

    def current_utilisation(self, fstate: SenderFlowState) -> float:
        return self._state(fstate).utilisation
