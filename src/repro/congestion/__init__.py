"""End-to-end congestion-control baselines the paper compares BFC against.

The sender-side modules plug into :class:`repro.sim.host.Host` via its
``cc_factory`` argument; switch-side behaviour (ECN marking for DCQCN, INT
stamping for HPCC, SFQ / Ideal-FQ scheduling) is configured on the switches by
the experiment scheme registry (:mod:`repro.experiments.schemes`).
"""

from repro.sim.host import CongestionControl, WindowedCongestionControl

from .dcqcn import DcqcnConfig, DcqcnControl, DcqcnWindowedControl
from .hpcc import HpccConfig, HpccControl

__all__ = [
    "CongestionControl",
    "WindowedCongestionControl",
    "DcqcnConfig",
    "DcqcnControl",
    "DcqcnWindowedControl",
    "HpccConfig",
    "HpccControl",
]
