"""DCQCN congestion control (Zhu et al., SIGCOMM 2015).

DCQCN is the rate-based scheme most RoCE deployments run today and the primary
baseline of the BFC paper.  Switches RED-mark data packets with ECN; the
receiver converts marks into congestion-notification packets (CNPs, at most
one per 50 us per flow); the sender reacts to CNPs with a multiplicative
decrease governed by the EWMA variable ``alpha`` and recovers through fast
recovery / additive increase / hyper increase stages driven by a byte counter
and a timer.

Rather than scheduling per-flow alpha/increase timers (which would add two
events per flow per 55 us to the event loop), this implementation advances the
DCQCN state machine *lazily*: whenever the rate is queried or an event
arrives, the elapsed timer periods and transmitted bytes since the last update
are converted into the equivalent number of state-machine steps.  The
resulting trajectory matches the timer-driven formulation at the instants that
matter (packet transmissions and CNP arrivals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.host import CongestionControl, SenderFlowState
from repro.sim.packet import Packet


@dataclass
class DcqcnConfig:
    """DCQCN parameters.

    Rate-increase steps are expressed as fractions of the line rate so the
    same configuration scales across the link speeds swept in Fig. 2.
    """

    g: float = 1.0 / 256.0
    alpha_timer_ns: int = 55_000
    increase_timer_ns: int = 300_000
    byte_counter_bytes: int = 10_000_000
    fast_recovery_rounds: int = 5
    rate_ai_fraction: float = 0.005
    rate_hai_fraction: float = 0.05
    min_rate_fraction: float = 0.001
    initial_alpha: float = 1.0

    def validate(self) -> None:
        if not 0 < self.g <= 1:
            raise ValueError("g must be in (0, 1]")
        if self.alpha_timer_ns <= 0 or self.increase_timer_ns <= 0:
            raise ValueError("timers must be positive")
        if self.byte_counter_bytes <= 0:
            raise ValueError("byte counter must be positive")
        if self.fast_recovery_rounds < 1:
            raise ValueError("fast_recovery_rounds must be >= 1")


class _DcqcnFlow:
    """Per-flow DCQCN state (stored inside ``SenderFlowState.cc_state``)."""

    __slots__ = (
        "rate",
        "target_rate",
        "alpha",
        "last_decrease_ns",
        "last_alpha_update_ns",
        "bytes_since_decrease",
        "bc_events_applied",
        "timer_events_applied",
        "ever_decreased",
    )

    def __init__(self, line_rate: float, alpha: float, now_ns: int) -> None:
        self.rate = line_rate
        self.target_rate = line_rate
        self.alpha = alpha
        self.last_decrease_ns = now_ns
        self.last_alpha_update_ns = now_ns
        self.bytes_since_decrease = 0
        self.bc_events_applied = 0
        self.timer_events_applied = 0
        self.ever_decreased = False


class DcqcnControl(CongestionControl):
    """The DCQCN sender algorithm."""

    name = "dcqcn"
    # DCQCN is rate-based: its window_bytes override still returns None, so
    # it restates the windowless promise for the NIC fast path.
    has_window = False

    def __init__(self, line_rate_bps: float, config: Optional[DcqcnConfig] = None) -> None:
        super().__init__(line_rate_bps)
        self.config = config or DcqcnConfig()
        self.config.validate()
        self.min_rate = max(1.0, self.config.min_rate_fraction * line_rate_bps)
        self.rate_ai = self.config.rate_ai_fraction * line_rate_bps
        self.rate_hai = self.config.rate_hai_fraction * line_rate_bps

    # -- helpers -----------------------------------------------------------------

    def _state(self, fstate: SenderFlowState, now_ns: int) -> _DcqcnFlow:
        state = fstate.cc_state.get("dcqcn")
        if state is None:
            state = _DcqcnFlow(self.line_rate_bps, self.config.initial_alpha, now_ns)
            fstate.cc_state["dcqcn"] = state
        return state

    def _advance(self, state: _DcqcnFlow, now_ns: int) -> None:
        """Apply all alpha-decay and rate-increase events that elapsed."""
        cfg = self.config
        # Alpha decays toward zero while no CNP arrives.
        periods = (now_ns - state.last_alpha_update_ns) // cfg.alpha_timer_ns
        if periods > 0:
            state.alpha *= (1.0 - cfg.g) ** periods
            state.last_alpha_update_ns += periods * cfg.alpha_timer_ns
        if not state.ever_decreased:
            # Before the first congestion signal the flow simply runs at line
            # rate; there is nothing to recover.
            return
        timer_events = (now_ns - state.last_decrease_ns) // cfg.increase_timer_ns
        bc_events = state.bytes_since_decrease // cfg.byte_counter_bytes
        while (
            state.timer_events_applied < timer_events
            or state.bc_events_applied < bc_events
        ):
            if state.timer_events_applied < timer_events:
                state.timer_events_applied += 1
            else:
                state.bc_events_applied += 1
            self._apply_increase(state)

    def _apply_increase(self, state: _DcqcnFlow) -> None:
        cfg = self.config
        bc = state.bc_events_applied
        ti = state.timer_events_applied
        if max(bc, ti) < cfg.fast_recovery_rounds:
            pass  # fast recovery: only average toward the target rate
        elif min(bc, ti) < cfg.fast_recovery_rounds:
            state.target_rate = min(self.line_rate_bps, state.target_rate + self.rate_ai)
        else:
            state.target_rate = min(self.line_rate_bps, state.target_rate + self.rate_hai)
        state.rate = min(self.line_rate_bps, (state.rate + state.target_rate) / 2.0)

    # -- CongestionControl hooks -----------------------------------------------------

    def on_flow_start(self, fstate: SenderFlowState, now_ns: int) -> None:
        self._state(fstate, now_ns)

    def on_packet_sent(self, fstate: SenderFlowState, packet: Packet, now_ns: int) -> None:
        state = self._state(fstate, now_ns)
        state.bytes_since_decrease += packet.size
        self._advance(state, now_ns)

    def on_cnp(self, fstate: SenderFlowState, now_ns: int) -> None:
        state = self._state(fstate, now_ns)
        self._advance(state, now_ns)
        cfg = self.config
        state.target_rate = state.rate
        state.rate = max(self.min_rate, state.rate * (1.0 - state.alpha / 2.0))
        state.alpha = (1.0 - cfg.g) * state.alpha + cfg.g
        state.last_alpha_update_ns = now_ns
        state.last_decrease_ns = now_ns
        state.bytes_since_decrease = 0
        state.bc_events_applied = 0
        state.timer_events_applied = 0
        state.ever_decreased = True

    def rate_bps(self, fstate: SenderFlowState) -> float:
        state = fstate.cc_state.get("dcqcn")
        if state is None:
            return self.line_rate_bps
        return max(self.min_rate, min(self.line_rate_bps, state.rate))

    def window_bytes(self, fstate: SenderFlowState) -> Optional[int]:
        return None

    # -- introspection (used by tests) -------------------------------------------------

    def current_rate(self, fstate: SenderFlowState, now_ns: int) -> float:
        state = self._state(fstate, now_ns)
        self._advance(state, now_ns)
        return max(self.min_rate, min(self.line_rate_bps, state.rate))

    def current_alpha(self, fstate: SenderFlowState, now_ns: int) -> float:
        state = self._state(fstate, now_ns)
        self._advance(state, now_ns)
        return state.alpha


class DcqcnWindowedControl(DcqcnControl):
    """DCQCN with a per-flow window cap of one end-to-end BDP (DCQCN+Win).

    ``has_window = True``: window_bytes returns a real cap (NIC fast path).

    The paper takes this variant from the HPCC paper: the cap limits the
    inflight bytes of a flow, reducing buffer occupancy without hurting
    throughput.
    """

    name = "dcqcn+win"
    has_window = True

    def __init__(
        self,
        line_rate_bps: float,
        window_bytes: int,
        config: Optional[DcqcnConfig] = None,
    ) -> None:
        super().__init__(line_rate_bps, config)
        if window_bytes <= 0:
            raise ValueError("window_bytes must be positive")
        self._window = int(window_bytes)

    def window_bytes(self, fstate: SenderFlowState) -> Optional[int]:
        return self._window
