"""Lazy query layer over spilled results.

``ResultsAnalyzer(run_dir)`` opens one spilled run (see
:mod:`repro.results.spill`) and answers the same questions the in-memory
``ExperimentResult`` convenience methods and :mod:`repro.analysis.fct`
answer — without loading all records into memory:

* scalar aggregates (completion rate, mean/percentile slowdown, buffer
  percentiles) come straight from ``summary.json``;
* record-level queries (``slowdown_series``, ``bin_slowdowns``,
  ``iter_flow_records``) stream ``flows.jsonl`` once, front to back.

If ``summary.json`` is missing — the run crashed before ``finalize`` — the
flow aggregates are rebuilt exactly by scanning the (possibly
tail-truncated) record file, so a crashed run is still analyzable up to its
last completed record.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional

from repro.sim.stats import FlowRecord, percentile as _exact_percentile

from .sinks import StreamingBufferSampler, StreamingFlowStats, StreamingQueueSampler
from .spill import SUMMARY_FILENAME, SpillReader, load_summary


class ResultsAnalyzer:
    """Reads one spilled run directory back, lazily."""

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.reader = SpillReader(run_dir)
        self._summary: Optional[Dict[str, object]] = None
        self._flow_stats: Optional[StreamingFlowStats] = None
        self._buffer_sampler: Optional[StreamingBufferSampler] = None
        self._queue_sampler: Optional[StreamingQueueSampler] = None

    # -- summary access ----------------------------------------------------------

    def has_summary(self) -> bool:
        return os.path.exists(os.path.join(self.run_dir, SUMMARY_FILENAME))

    @property
    def summary(self) -> Optional[Dict[str, object]]:
        if self._summary is None and self.has_summary():
            self._summary = load_summary(self.run_dir)
        return self._summary

    @property
    def extras(self) -> Dict[str, object]:
        """Run-level metadata recorded at finalize (scheme, counters, ...)."""
        summary = self.summary
        if summary is None:
            return {}
        return dict(summary.get("extras", {}))

    @property
    def flow_stats(self) -> StreamingFlowStats:
        if self._flow_stats is None:
            summary = self.summary
            if summary is not None and "flows" in summary:
                self._flow_stats = StreamingFlowStats.from_dict(
                    summary["flows"], spill_dir=self.run_dir
                )
            else:
                # Crashed before finalize: rebuild the aggregate exactly from
                # whatever records made it to disk.
                stats = StreamingFlowStats(spill_dir=self.run_dir)
                for record in self.reader.iter_records():
                    stats.add(record)
                self._flow_stats = stats
        return self._flow_stats

    def _sampler_section(self, key: str) -> Dict[str, object]:
        summary = self.summary
        if summary is None or key not in summary:
            raise ValueError(
                f"{self.run_dir} has no {SUMMARY_FILENAME} section {key!r} "
                "(run crashed before finalize?); only flow records are available"
            )
        return summary[key]

    @property
    def buffer_sampler(self) -> StreamingBufferSampler:
        if self._buffer_sampler is None:
            self._buffer_sampler = StreamingBufferSampler.from_dict(
                self._sampler_section("buffer")
            )
        return self._buffer_sampler

    @property
    def queue_sampler(self) -> StreamingQueueSampler:
        if self._queue_sampler is None:
            self._queue_sampler = StreamingQueueSampler.from_dict(
                self._sampler_section("queue")
            )
        return self._queue_sampler

    # -- record-level queries (one streaming pass each) -----------------------------

    def iter_flow_records(self) -> Iterator[FlowRecord]:
        return self.reader.iter_records()

    def flow_count(self) -> int:
        return self.flow_stats.total

    def completed_count(self) -> int:
        return self.flow_stats.completed_count

    # -- scalar metrics ------------------------------------------------------------

    def completion_rate(self) -> float:
        return self.flow_stats.completion_rate()

    def mean_slowdown(self, include_incast: bool = False) -> float:
        return self.flow_stats.mean_slowdown(include_incast)

    def slowdown_percentile(
        self, q: float, include_incast: bool = False, exact: bool = False
    ) -> float:
        """Slowdown percentile; sketch-backed by default.

        ``exact=True`` streams every completed flow's slowdown into one
        sorted column — transiently O(completed flows) floats, the same
        nearest-rank arithmetic as the in-memory path.
        """
        if not exact:
            return self.flow_stats.slowdown_percentile(q, include_incast)
        values: List[float] = [
            r.slowdown
            for r in self.iter_flow_records()
            if r.finish_ns is not None
            and r.slowdown is not None
            and (include_incast or not r.is_incast)
        ]
        return _exact_percentile(values, q) if values else 0.0

    def buffer_percentile(self, q: float) -> float:
        return self.buffer_sampler.percentile(q)

    def max_buffer_occupancy(self) -> int:
        return self.buffer_sampler.max_occupancy()

    # -- figure pipelines ------------------------------------------------------------

    def slowdown_series(self, quantile: float = 99.0, bins=None):
        """Per-size-bin slowdown percentiles (the fig5/fig9 x-axis series)."""
        from repro.analysis.fct import slowdown_series

        return slowdown_series(self.iter_flow_records(), quantile=quantile, bins=bins)

    def bin_slowdowns(self, bins=None, include_incast: bool = False):
        from repro.analysis.fct import bin_slowdowns

        kwargs = {} if bins is None else {"bins": bins}
        return bin_slowdowns(
            self.iter_flow_records(), include_incast=include_incast, **kwargs
        )

    # -- one-stop summary -----------------------------------------------------------

    def summarize(self) -> Dict[str, object]:
        """Scalar metrics dict in the shape of campaign ``summarize_result``.

        Keys computable from the spilled aggregates are always present;
        run-level extras recorded at finalize (scheme, dropped packets,
        event counts, ...) are merged in when available.
        """
        metrics: Dict[str, object] = {
            "flows_offered": self.flow_stats.total,
            "completion_rate": self.completion_rate(),
            "p99_slowdown": self.slowdown_percentile(99.0),
            "mean_slowdown": self.mean_slowdown(),
        }
        if self.summary is not None and "buffer" in self.summary:
            metrics["p99_buffer_bytes"] = self.buffer_percentile(99.0)
            metrics["max_buffer_bytes"] = self.max_buffer_occupancy()
        metrics.update(self.extras)
        return metrics
