"""Fixed-size streaming aggregators: quantile sketch, reservoir, moments.

These are the run-time half of the bounded-memory harvest: every sampler
tick (and every flow slowdown) is folded into objects whose size is a
constant chosen at construction, never a function of how many values were
observed.

Accuracy contract (also documented in ``docs/results.md``):

* :class:`QuantileSketch` is **exact** — bit-identical to
  :func:`repro.sim.stats.percentile` — until more than ``exact_cap`` values
  have been added.  Beyond that it compresses into at most ``max_centroids``
  weighted centroids (a Ben-Haim/Yom-Tov-style streaming histogram, the same
  family as a t-digest with uniform compression), and percentile queries
  interpolate between centroid means.  The rank error of a query is bounded
  by the largest centroid weight, which compression keeps near
  ``count / max_centroids`` — about 0.2 % of rank at the default size.
  Minimum and maximum are always tracked exactly, so p0/p100 never drift.
* :class:`ReservoirSampler` keeps a uniform random sample of fixed size
  ``k`` (Vitter's algorithm R) using its own seeded RNG, so spilled
  artifacts retain a raw, unbiased sub-sample for CDF plots without
  touching simulation RNG streams.
* :class:`StreamingStats` keeps count / sum / min / max exactly.

All three serialize to plain-JSON dicts (``to_dict`` / ``from_dict``) so the
spill layer can persist them in ``summary.json``, and all three support
``merge`` so the shard coordinator can combine per-shard aggregates.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.sim.stats import percentile as _exact_percentile

#: Defaults: exact up to 4096 values, then ~512 centroids.  At these sizes a
#: sketch costs a few tens of kilobytes regardless of how many billions of
#: values pass through it.
DEFAULT_EXACT_CAP = 4096
DEFAULT_MAX_CENTROIDS = 512


class QuantileSketch:
    """Streaming quantile estimator with an exact small-count fallback.

    Values are buffered raw until ``exact_cap`` is exceeded; queries in that
    regime use the repo's nearest-rank :func:`~repro.sim.stats.percentile`
    and are therefore *identical* to computing on the full list.  Past the
    cap, the buffer is compressed into at most ``max_centroids``
    ``(mean, weight)`` centroids by rank-uniform adjacent merging; later
    additions re-fill the buffer and are folded in by recompression.
    """

    __slots__ = (
        "exact_cap",
        "max_centroids",
        "count",
        "_points",
        "_compressed",
        "_compress_at",
        "_min",
        "_max",
    )

    def __init__(
        self,
        exact_cap: int = DEFAULT_EXACT_CAP,
        max_centroids: int = DEFAULT_MAX_CENTROIDS,
    ) -> None:
        if exact_cap < 1 or max_centroids < 2:
            raise ValueError("exact_cap must be >= 1 and max_centroids >= 2")
        self.exact_cap = exact_cap
        self.max_centroids = max_centroids
        self.count = 0
        #: ``(value, weight)`` pairs; raw additions carry weight 1.  Kept
        #: unsorted between compressions (adds are O(1)).
        self._points: List[Tuple[float, float]] = []
        self._compressed = False
        self._compress_at = max(exact_cap, 2 * max_centroids)
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- ingest -----------------------------------------------------------------

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        self._points.append((value, 1.0))
        if len(self._points) > self._compress_at:
            self._compress()

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (shard-merge path)."""
        if other.count == 0:
            return
        self.count += other.count
        if self._min is None or (other._min is not None and other._min < self._min):
            self._min = other._min
        if self._max is None or (other._max is not None and other._max > self._max):
            self._max = other._max
        self._points.extend(other._points)
        self._compressed = self._compressed or other._compressed
        if self._compressed or len(self._points) > self._compress_at:
            self._compress()

    def _compress(self) -> None:
        """Merge sorted points into <= max_centroids rank-uniform buckets."""
        points = sorted(self._points)
        total = sum(w for _, w in points)
        target = total / self.max_centroids
        merged: List[Tuple[float, float]] = []
        acc_w = 0.0
        acc_vw = 0.0
        for value, weight in points:
            acc_w += weight
            acc_vw += value * weight
            if acc_w >= target:
                merged.append((acc_vw / acc_w, acc_w))
                acc_w = 0.0
                acc_vw = 0.0
        if acc_w > 0:
            merged.append((acc_vw / acc_w, acc_w))
        self._points = merged
        self._compressed = True

    # -- queries ----------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """True while queries are bit-identical to the full-list percentile."""
        return not self._compressed

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        if not self._compressed:
            return _exact_percentile([v for v, _ in self._points], q)
        if q <= 0:
            return float(self.min)
        if q >= 100:
            return float(self.max)
        centroids = sorted(self._points)
        target = q / 100.0 * self.count
        # Interpolate between cumulative-weight midpoints; each centroid's
        # mass is treated as centred at its mean.
        prev_value = float(self.min)
        prev_mid = 0.0
        cum = 0.0
        for value, weight in centroids:
            mid = cum + weight / 2.0
            if mid >= target:
                if mid <= prev_mid:
                    return float(value)
                frac = (target - prev_mid) / (mid - prev_mid)
                return float(prev_value + frac * (value - prev_value))
            prev_value = value
            prev_mid = mid
            cum += weight
        return float(self.max)

    # -- (de)serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "exact_cap": self.exact_cap,
            "max_centroids": self.max_centroids,
            "count": self.count,
            "min": self._min,
            "max": self._max,
            "compressed": self._compressed,
            "points": [[v, w] for v, w in self._points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(
            exact_cap=int(data.get("exact_cap", DEFAULT_EXACT_CAP)),
            max_centroids=int(data.get("max_centroids", DEFAULT_MAX_CENTROIDS)),
        )
        sketch.count = int(data["count"])
        sketch._min = data.get("min")
        sketch._max = data.get("max")
        sketch._compressed = bool(data.get("compressed", False))
        sketch._points = [(float(v), float(w)) for v, w in data.get("points", [])]
        return sketch


class ReservoirSampler:
    """Uniform fixed-size random sample of a stream (algorithm R).

    The RNG is private and seeded at construction, so adding values never
    perturbs simulation RNG streams and the retained sample is reproducible
    for a given observation order.
    """

    __slots__ = ("k", "count", "values", "_rng")

    def __init__(self, k: int = 1024, seed: int = 0) -> None:
        if k < 1:
            raise ValueError("reservoir size must be >= 1")
        self.k = k
        self.count = 0
        self.values: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.values) < self.k:
            self.values.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.k:
                self.values[j] = value

    def to_dict(self) -> Dict[str, object]:
        return {"k": self.k, "count": self.count, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReservoirSampler":
        sampler = cls(k=int(data.get("k", 1024)))
        sampler.count = int(data["count"])
        sampler.values = [float(v) for v in data.get("values", [])]
        return sampler


class StreamingStats:
    """Exact count / sum / min / max of a stream in O(1) memory."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingStats") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None or other.maximum > self.maximum):
            self.maximum = other.maximum

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self.maximum if self.maximum is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingStats":
        stats = cls()
        stats.count = int(data["count"])
        stats.total = float(data["total"])
        stats.minimum = data.get("min")
        stats.maximum = data.get("max")
        return stats
