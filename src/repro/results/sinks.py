"""The harvest seam: where measurement records go as they are produced.

The experiment runner pushes every flow record and every sampler tick into
a :class:`ResultSink`.  Two implementations:

* :class:`InMemorySink` — the default; owns the same ``FlowStats`` /
  ``BufferSampler`` / ``QueueSampler`` objects the runner used to own
  directly, fed in the same order, so results are byte-identical to the
  pre-seam harvest.
* :class:`SpillSink` — streams flow records to disk through a
  :class:`~repro.results.spill.SpillWriter` and folds sampler ticks into
  fixed-size aggregates, so peak harvest memory is independent of flow
  count and sample count.  ``finalize`` writes ``summary.json`` and returns
  streaming stand-ins (:class:`StreamingFlowStats`,
  :class:`StreamingBufferSampler`, :class:`StreamingQueueSampler`) that
  satisfy the same scalar-metric API as the in-memory objects.

The sink is a pure observer: choosing a sink never changes what is
simulated, only where the measurements live.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.stats import BufferSampler, FlowRecord, FlowStats, QueueSampler

from .sketch import QuantileSketch, ReservoirSampler, StreamingStats
from .spill import SpillWriter, write_summary


class ResultSink:
    """Receives measurement records as the runner produces them."""

    #: Path of the spilled artifact directory, or ``None`` for in-memory.
    results_ref: Optional[str] = None

    def on_flow_record(self, record: FlowRecord) -> None:
        raise NotImplementedError

    def on_buffer_sample(self, switch_name: str, occupancy_bytes: int) -> None:
        raise NotImplementedError

    def on_queue_sample(self, backlog_bytes: int) -> None:
        raise NotImplementedError

    def on_occupied_sample(self, count: int) -> None:
        raise NotImplementedError

    def finalize(self, extras: Optional[Dict[str, object]] = None):
        """Flush and return ``(flow_stats, buffer_sampler, queue_sampler)``."""
        raise NotImplementedError


class InMemorySink(ResultSink):
    """Default sink: accumulate everything in RAM, exactly as before."""

    def __init__(self) -> None:
        self.flow_stats = FlowStats()
        self.buffer_sampler = BufferSampler()
        self.queue_sampler = QueueSampler()

    def on_flow_record(self, record: FlowRecord) -> None:
        self.flow_stats.add(record)

    def on_buffer_sample(self, switch_name: str, occupancy_bytes: int) -> None:
        self.buffer_sampler.record(switch_name, occupancy_bytes)

    def on_queue_sample(self, backlog_bytes: int) -> None:
        self.queue_sampler.record_queue(backlog_bytes)

    def on_occupied_sample(self, count: int) -> None:
        self.queue_sampler.record_occupied(count)

    def finalize(self, extras: Optional[Dict[str, object]] = None):
        return self.flow_stats, self.buffer_sampler, self.queue_sampler


# ---------------------------------------------------------------------------
# Streaming stand-ins for the in-memory collectors
# ---------------------------------------------------------------------------


class StreamingFlowStats:
    """Fixed-size flow aggregate satisfying the ``FlowStats`` metric API.

    Scalar metrics (``completion_rate``, ``mean_slowdown``,
    ``slowdown_percentile``) come from O(1) counters and quantile sketches.
    Record-level access (``iter_records``, ``completed``, ``slowdowns``,
    ``records``) reads the spilled artifact back from disk — lazy for
    ``iter_records``; the others materialize what they return, which is fine
    for analysis but defeats bounded memory if used during a run.
    """

    def __init__(self, spill_dir: Optional[str] = None) -> None:
        self.spill_dir = spill_dir
        self.total = 0
        self.completed_count = 0
        self.incast_total = 0
        self.incast_completed = 0
        self._sum_normal = 0.0
        self._n_normal = 0
        self._sum_all = 0.0
        self._n_all = 0
        self.sketch_normal = QuantileSketch()
        self.sketch_all = QuantileSketch()

    # -- ingest -----------------------------------------------------------------

    def add(self, record: FlowRecord) -> None:
        self.total += 1
        if record.is_incast:
            self.incast_total += 1
        done = record.finish_ns is not None
        if done:
            self.completed_count += 1
            if record.is_incast:
                self.incast_completed += 1
        if done and record.slowdown is not None:
            self._sum_all += record.slowdown
            self._n_all += 1
            self.sketch_all.add(record.slowdown)
            if not record.is_incast:
                self._sum_normal += record.slowdown
                self._n_normal += 1
                self.sketch_normal.add(record.slowdown)

    def merge(self, other: "StreamingFlowStats") -> None:
        self.total += other.total
        self.completed_count += other.completed_count
        self.incast_total += other.incast_total
        self.incast_completed += other.incast_completed
        self._sum_normal += other._sum_normal
        self._n_normal += other._n_normal
        self._sum_all += other._sum_all
        self._n_all += other._n_all
        self.sketch_normal.merge(other.sketch_normal)
        self.sketch_all.merge(other.sketch_all)

    # -- scalar metrics (bounded memory) ------------------------------------------

    def completion_rate(self) -> float:
        if not self.total:
            return 0.0
        return self.completed_count / self.total

    def mean_slowdown(self, include_incast: bool = False) -> float:
        if include_incast:
            return self._sum_all / self._n_all if self._n_all else 0.0
        return self._sum_normal / self._n_normal if self._n_normal else 0.0

    def slowdown_percentile(self, q: float, include_incast: bool = False) -> float:
        sketch = self.sketch_all if include_incast else self.sketch_normal
        return sketch.percentile(q)

    # -- record-level access (reads the spill back) --------------------------------

    def iter_records(self) -> Iterator[FlowRecord]:
        if self.spill_dir is None:
            raise RuntimeError(
                "StreamingFlowStats has no spill directory to read records from"
            )
        from .spill import SpillReader

        return SpillReader(self.spill_dir).iter_records()

    @property
    def records(self) -> List[FlowRecord]:
        return list(self.iter_records())

    def completed(self, include_incast: bool = False) -> List[FlowRecord]:
        return [
            r
            for r in self.iter_records()
            if r.finish_ns is not None and (include_incast or not r.is_incast)
        ]

    def slowdowns(self, include_incast: bool = False) -> List[float]:
        return [
            r.slowdown
            for r in self.completed(include_incast)
            if r.slowdown is not None
        ]

    # -- (de)serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "completed": self.completed_count,
            "incast_total": self.incast_total,
            "incast_completed": self.incast_completed,
            "sum_slowdown_normal": self._sum_normal,
            "n_slowdown_normal": self._n_normal,
            "sum_slowdown_all": self._sum_all,
            "n_slowdown_all": self._n_all,
            "sketch_normal": self.sketch_normal.to_dict(),
            "sketch_all": self.sketch_all.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], spill_dir: Optional[str] = None
    ) -> "StreamingFlowStats":
        stats = cls(spill_dir=spill_dir)
        stats.total = int(data["total"])
        stats.completed_count = int(data["completed"])
        stats.incast_total = int(data.get("incast_total", 0))
        stats.incast_completed = int(data.get("incast_completed", 0))
        stats._sum_normal = float(data.get("sum_slowdown_normal", 0.0))
        stats._n_normal = int(data.get("n_slowdown_normal", 0))
        stats._sum_all = float(data.get("sum_slowdown_all", 0.0))
        stats._n_all = int(data.get("n_slowdown_all", 0))
        stats.sketch_normal = QuantileSketch.from_dict(data["sketch_normal"])
        stats.sketch_all = QuantileSketch.from_dict(data["sketch_all"])
        return stats


class StreamingBufferSampler:
    """Fixed-size stand-in for :class:`~repro.sim.stats.BufferSampler`.

    Keeps exact count / max / sum, a quantile sketch, a bounded uniform
    reservoir of raw samples (for CDF plots from spilled artifacts), and
    exact per-switch count / max — all O(switches + constants).
    """

    def __init__(self, seed: int = 0, reservoir_k: int = 1024) -> None:
        self.stats = StreamingStats()
        self.sketch = QuantileSketch()
        self.reservoir = ReservoirSampler(reservoir_k, seed)
        self.per_switch: Dict[str, StreamingStats] = {}

    def record(self, switch_name: str, occupancy_bytes: int) -> None:
        self.stats.add(occupancy_bytes)
        self.sketch.add(occupancy_bytes)
        self.reservoir.add(occupancy_bytes)
        per = self.per_switch.get(switch_name)
        if per is None:
            per = self.per_switch[switch_name] = StreamingStats()
        per.add(occupancy_bytes)

    def max_occupancy(self) -> int:
        return int(self.stats.max)

    def percentile(self, q: float) -> float:
        return self.sketch.percentile(q)

    @property
    def sample_count(self) -> int:
        return self.stats.count

    def to_dict(self) -> Dict[str, object]:
        return {
            "stats": self.stats.to_dict(),
            "sketch": self.sketch.to_dict(),
            "reservoir": self.reservoir.to_dict(),
            "per_switch": {
                name: stats.to_dict() for name, stats in sorted(self.per_switch.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingBufferSampler":
        sampler = cls()
        sampler.stats = StreamingStats.from_dict(data["stats"])
        sampler.sketch = QuantileSketch.from_dict(data["sketch"])
        sampler.reservoir = ReservoirSampler.from_dict(data["reservoir"])
        sampler.per_switch = {
            name: StreamingStats.from_dict(sub)
            for name, sub in data.get("per_switch", {}).items()
        }
        return sampler


class StreamingQueueSampler:
    """Fixed-size stand-in for :class:`~repro.sim.stats.QueueSampler`."""

    def __init__(self, seed: int = 0, reservoir_k: int = 1024) -> None:
        self.queue_stats = StreamingStats()
        self.queue_sketch = QuantileSketch()
        self.queue_reservoir = ReservoirSampler(reservoir_k, seed)
        self.occupied_stats = StreamingStats()
        self.occupied_sketch = QuantileSketch()

    def record_queue(self, backlog_bytes: int) -> None:
        self.queue_stats.add(backlog_bytes)
        self.queue_sketch.add(backlog_bytes)
        self.queue_reservoir.add(backlog_bytes)

    def record_occupied(self, count: int) -> None:
        self.occupied_stats.add(count)
        self.occupied_sketch.add(count)

    def queue_percentile(self, q: float) -> float:
        return self.queue_sketch.percentile(q)

    def occupied_percentile(self, q: float) -> float:
        return self.occupied_sketch.percentile(q)

    def to_dict(self) -> Dict[str, object]:
        return {
            "queue_stats": self.queue_stats.to_dict(),
            "queue_sketch": self.queue_sketch.to_dict(),
            "queue_reservoir": self.queue_reservoir.to_dict(),
            "occupied_stats": self.occupied_stats.to_dict(),
            "occupied_sketch": self.occupied_sketch.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingQueueSampler":
        sampler = cls()
        sampler.queue_stats = StreamingStats.from_dict(data["queue_stats"])
        sampler.queue_sketch = QuantileSketch.from_dict(data["queue_sketch"])
        sampler.queue_reservoir = ReservoirSampler.from_dict(data["queue_reservoir"])
        sampler.occupied_stats = StreamingStats.from_dict(data["occupied_stats"])
        sampler.occupied_sketch = QuantileSketch.from_dict(data["occupied_sketch"])
        return sampler


# ---------------------------------------------------------------------------
# The spilling sink
# ---------------------------------------------------------------------------


class SpillSink(ResultSink):
    """Streams flow records to ``run_dir`` and aggregates samples in O(1).

    ``seed`` only feeds the private reservoir RNGs (raw-sample retention);
    it never touches simulation state.
    """

    def __init__(
        self,
        run_dir: str,
        seed: int = 0,
        chunk_rows: Optional[int] = None,
        reservoir_k: int = 1024,
    ) -> None:
        writer_kwargs = {} if chunk_rows is None else {"chunk_rows": chunk_rows}
        self._writer = SpillWriter(run_dir, **writer_kwargs)
        self.run_dir = run_dir
        self.results_ref = run_dir
        self.flow_stats = StreamingFlowStats(spill_dir=run_dir)
        self.buffer_sampler = StreamingBufferSampler(seed=seed, reservoir_k=reservoir_k)
        self.queue_sampler = StreamingQueueSampler(seed=seed + 1, reservoir_k=reservoir_k)
        self._finalized = False

    def on_flow_record(self, record: FlowRecord) -> None:
        self._writer.write(record)
        self.flow_stats.add(record)

    def on_buffer_sample(self, switch_name: str, occupancy_bytes: int) -> None:
        self.buffer_sampler.record(switch_name, occupancy_bytes)

    def on_queue_sample(self, backlog_bytes: int) -> None:
        self.queue_sampler.record_queue(backlog_bytes)

    def on_occupied_sample(self, count: int) -> None:
        self.queue_sampler.record_occupied(count)

    def finalize(
        self, extras: Optional[Dict[str, object]] = None
    ) -> Tuple[StreamingFlowStats, StreamingBufferSampler, StreamingQueueSampler]:
        if not self._finalized:
            self._writer.close()
            summary = {
                "flows": self.flow_stats.to_dict(),
                "buffer": self.buffer_sampler.to_dict(),
                "queue": self.queue_sampler.to_dict(),
                "extras": extras or {},
            }
            write_summary(self.run_dir, summary)
            self._finalized = True
        return self.flow_stats, self.buffer_sampler, self.queue_sampler
