"""Streaming results: bounded-memory harvest and lazy analysis.

The run-time half (:mod:`repro.results.sinks`) sits behind the experiment
runner's harvest seam: an :class:`InMemorySink` reproduces today's in-RAM
``FlowStats`` / sampler objects record-for-record, while a :class:`SpillSink`
streams flow-completion records to an append-only on-disk format
(:mod:`repro.results.spill`) and folds sampler ticks into fixed-size
aggregates (:mod:`repro.results.sketch`), so peak memory is independent of
flow count.

The analysis half (:mod:`repro.results.analyzer`) reads spilled artifacts
back lazily with the same aggregate / percentile / slowdown-by-bin API the
in-memory objects expose, so every existing figure pipeline works from disk.

See ``docs/results.md`` for the on-disk format and accuracy contract.
"""

from .analyzer import ResultsAnalyzer
from .sketch import QuantileSketch, ReservoirSampler, StreamingStats
from .sinks import (
    InMemorySink,
    ResultSink,
    SpillSink,
    StreamingBufferSampler,
    StreamingFlowStats,
    StreamingQueueSampler,
)
from .spill import SpillReader, SpillWriter, pack_dir, unpack_dir

__all__ = [
    "InMemorySink",
    "QuantileSketch",
    "ReservoirSampler",
    "ResultSink",
    "ResultsAnalyzer",
    "SpillReader",
    "SpillSink",
    "SpillWriter",
    "StreamingBufferSampler",
    "StreamingFlowStats",
    "StreamingQueueSampler",
    "StreamingStats",
    "pack_dir",
    "unpack_dir",
]
