"""Append-only on-disk flow-record spill: chunked JSONL plus an index.

One spilled run is a directory::

    <run_dir>/
        flows.jsonl     # header line, then one compact JSON array per record
        flows.idx.json  # chunk byte-offsets + row counts (written at close)
        summary.json    # fixed-size aggregates (written by SpillSink)

``flows.jsonl`` starts with a one-line header object naming the format and
the column order; every subsequent line is a JSON array holding one
:class:`~repro.sim.stats.FlowRecord` in that column order — compact,
append-only, and greppable.  Rows are buffered and flushed in chunks of
``chunk_rows``; each flush records its byte offset so the index enables
seeking without a scan.

Crash safety mirrors the campaign JSONL resume semantics: a run killed
mid-write leaves at most a partial final line, which readers tolerate (the
truncated tail is dropped); a missing or stale index is ignored and
reconstructed by scanning.  Every complete line is a complete record.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.sim.stats import FlowRecord

FLOWS_FILENAME = "flows.jsonl"
INDEX_FILENAME = "flows.idx.json"
SUMMARY_FILENAME = "summary.json"

FLOWS_KIND = "repro.results.flows"
INDEX_KIND = "repro.results.flows.index"
SUMMARY_KIND = "repro.results.summary"
FORMAT_VERSION = 1

#: Column order of every row in ``flows.jsonl``.
FLOW_FIELDS = (
    "flow_id",
    "src",
    "dst",
    "size",
    "start_ns",
    "finish_ns",
    "slowdown",
    "is_incast",
    "tag",
    "retransmissions",
)

DEFAULT_CHUNK_ROWS = 4096


def record_to_row(record: FlowRecord) -> List[object]:
    return [
        record.flow_id,
        record.src,
        record.dst,
        record.size,
        record.start_ns,
        record.finish_ns,
        record.slowdown,
        record.is_incast,
        record.tag,
        record.retransmissions,
    ]


def row_to_record(row: List[object]) -> FlowRecord:
    return FlowRecord(
        flow_id=row[0],
        src=row[1],
        dst=row[2],
        size=row[3],
        start_ns=row[4],
        finish_ns=row[5],
        slowdown=row[6],
        is_incast=row[7],
        tag=row[8],
        retransmissions=row[9],
    )


class SpillWriter:
    """Streams flow records into ``<run_dir>/flows.jsonl`` in bounded memory."""

    def __init__(self, run_dir: str, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.run_dir = run_dir
        self.chunk_rows = chunk_rows
        os.makedirs(run_dir, exist_ok=True)
        self.path = os.path.join(run_dir, FLOWS_FILENAME)
        self._file = open(self.path, "w", encoding="ascii")
        header = {
            "kind": FLOWS_KIND,
            "version": FORMAT_VERSION,
            "fields": list(FLOW_FIELDS),
        }
        self._file.write(json.dumps(header, separators=(",", ":")) + "\n")
        self._file.flush()
        self._offset = self._file.tell()
        self._pending: List[str] = []
        self._chunks: List[Dict[str, int]] = []
        self.rows_written = 0
        self._closed = False

    def write(self, record: FlowRecord) -> None:
        self._pending.append(
            json.dumps(record_to_row(record), separators=(",", ":")) + "\n"
        )
        if len(self._pending) >= self.chunk_rows:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._pending:
            return
        block = "".join(self._pending)
        self._chunks.append({"offset": self._offset, "rows": len(self._pending)})
        self._file.write(block)
        self._file.flush()
        self._offset += len(block.encode("ascii"))
        self.rows_written += len(self._pending)
        self._pending.clear()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_chunk()
        self._file.close()
        index = {
            "kind": INDEX_KIND,
            "version": FORMAT_VERSION,
            "chunk_rows": self.chunk_rows,
            "rows": self.rows_written,
            "chunks": self._chunks,
        }
        index_path = os.path.join(self.run_dir, INDEX_FILENAME)
        with open(index_path, "w", encoding="ascii") as handle:
            json.dump(index, handle, separators=(",", ":"))
            handle.write("\n")
        self._closed = True

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SpillReader:
    """Reads a spilled flows file back, lazily and fault-tolerantly.

    Iteration yields :class:`FlowRecord` objects in write order.  A partial
    final line (crash mid-write) terminates iteration silently; any fully
    written record before it is still returned.
    """

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, FLOWS_FILENAME)
        if not os.path.exists(self.path):
            raise FileNotFoundError(f"no {FLOWS_FILENAME} in {run_dir}")
        self._index: Optional[Dict[str, object]] = None
        index_path = os.path.join(run_dir, INDEX_FILENAME)
        if os.path.exists(index_path):
            try:
                with open(index_path, "r", encoding="ascii") as handle:
                    index = json.load(handle)
                if index.get("kind") == INDEX_KIND:
                    self._index = index
            except (ValueError, OSError):
                self._index = None  # stale/corrupt index: fall back to scanning

    def header(self) -> Dict[str, object]:
        with open(self.path, "r", encoding="ascii") as handle:
            line = handle.readline()
        header = json.loads(line)
        if header.get("kind") != FLOWS_KIND:
            raise ValueError(f"{self.path} is not a {FLOWS_KIND} file")
        return header

    def iter_rows(self) -> Iterator[List[object]]:
        with open(self.path, "r", encoding="ascii") as handle:
            first = handle.readline()
            try:
                header = json.loads(first)
            except ValueError:
                return
            if not isinstance(header, dict) or header.get("kind") != FLOWS_KIND:
                raise ValueError(f"{self.path} is not a {FLOWS_KIND} file")
            for line in handle:
                try:
                    row = json.loads(line)
                except ValueError:
                    return  # truncated tail: drop the partial record
                if isinstance(row, list):
                    yield row

    def iter_records(self) -> Iterator[FlowRecord]:
        for row in self.iter_rows():
            yield row_to_record(row)

    def __iter__(self) -> Iterator[FlowRecord]:
        return self.iter_records()

    def count_rows(self) -> int:
        """Total readable rows; O(1) via the index when it is present."""
        if self._index is not None:
            return int(self._index["rows"])
        return sum(1 for _ in self.iter_rows())


def load_summary(run_dir: str) -> Dict[str, object]:
    path = os.path.join(run_dir, SUMMARY_FILENAME)
    with open(path, "r", encoding="ascii") as handle:
        summary = json.load(handle)
    if summary.get("kind") != SUMMARY_KIND:
        raise ValueError(f"{path} is not a {SUMMARY_KIND} file")
    return summary


def write_summary(run_dir: str, summary: Dict[str, object]) -> None:
    payload = dict(summary)
    payload.setdefault("kind", SUMMARY_KIND)
    payload.setdefault("version", FORMAT_VERSION)
    path = os.path.join(run_dir, SUMMARY_FILENAME)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="ascii") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp_path, path)


def pack_dir(run_dir: str) -> Dict[str, bytes]:
    """Read a spilled run directory into ``{relative path: file bytes}``.

    The distributed campaign tier uses this to ship a worker's spilled
    artifacts (``flows.jsonl``, index, summary — any file in the run dir)
    back to the coordinator over the wire.  Paths use ``/`` separators so a
    packed dir round-trips across platforms.
    """
    files: Dict[str, bytes] = {}
    for root, _, names in sorted(os.walk(run_dir)):
        for name in sorted(names):
            path = os.path.join(root, name)
            rel = os.path.relpath(path, run_dir).replace(os.sep, "/")
            with open(path, "rb") as handle:
                files[rel] = handle.read()
    return files


def unpack_dir(run_dir: str, files: Dict[str, bytes]) -> None:
    """Materialize a :func:`pack_dir` payload at ``run_dir``.

    Writes are idempotent (a worker sharing the coordinator's filesystem
    just rewrites identical bytes).  Paths that would escape ``run_dir``
    are rejected — the payload comes over the network.
    """
    base = os.path.abspath(run_dir)
    for rel, data in files.items():
        path = os.path.abspath(os.path.join(base, rel.replace("/", os.sep)))
        if not path.startswith(base + os.sep):
            raise ValueError(f"artifact path {rel!r} escapes {run_dir!r}")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(data)
