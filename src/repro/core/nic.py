"""The BFC-aware host NIC.

The paper assumes the NIC "has sufficient hardware to maintain a physical
queue per VFID" (§3.6), so a host never suffers head-of-line blocking from
BFC pauses: a Bloom-filter pause frame from the top-of-rack switch pauses
exactly the flows whose VFID matches, while every other flow keeps sending.
The NIC also marks the first packet of every flow so the ToR can steer it to
the high-priority queue (§3.7).

:class:`BfcNicScheduler` extends the base NIC scheduler
(:class:`repro.sim.host.NicScheduler`): flows are served deficit round robin
at line rate, and eligibility additionally requires that the flow's VFID is
not present in the most recently received pause filter.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sim.host import Host, NicScheduler, SenderFlowState
from repro.sim.packet import Packet

from .bloom import BloomFilterCodec
from .config import BfcConfig


class BfcNicScheduler(NicScheduler):
    """Per-flow-queue NIC scheduler that honours BFC pause frames.

    The class attribute :attr:`CONFIG` supplies the Bloom-filter geometry and
    VFID space; use :func:`bfc_nic_class` to bind a specific configuration.
    """

    CONFIG: BfcConfig = BfcConfig()

    def __init__(self, host: Host) -> None:
        super().__init__(host)
        self.config = self.CONFIG
        self.codec = BloomFilterCodec(
            size_bytes=self.config.bloom_filter_bytes,
            num_hashes=self.config.bloom_hash_functions,
        )
        self.pause_filter: Optional[bytes] = None
        self.bloom_frames_received = 0
        # Memoized membership tests against the *current* pause filter: the
        # filter changes once per Bloom interval while eligibility is checked
        # on every dequeue, and ``contains`` is a pure function of
        # (filter, vfid).  Reset whenever a new filter is installed.
        self._paused_memo: dict = {}

    # -- pause frames -------------------------------------------------------------

    def on_bloom(self, packet: Packet) -> bool:
        """Install the pause filter shipped by the ToR switch.

        Returns whether the new filter changes the pause state of any active
        flow — ``False`` lets the host keep a committed packet train (the
        scans that built it would decide identically under the new filter),
        which matters because the ToR re-broadcasts its filter every Bloom
        interval and most broadcasts repeat the previous pause set.
        """
        old_filter = self.pause_filter
        old_memo = self._paused_memo
        self.pause_filter = packet.bloom_bits
        self.bloom_frames_received += 1
        self._paused_memo = {}
        port = self.host._uplink_port
        if port is None or not port._train:
            return True  # nothing to preserve; answer conservatively
        codec = self.codec
        for fstate in self._flows.values():
            vfid = fstate.cc_state.get("bfc_vfid")
            if vfid is None:
                vfid = fstate.key.vfid(self.config.num_vfids)
                fstate.cc_state["bfc_vfid"] = vfid
            if old_filter is None:
                was_paused = False
            else:
                was_paused = old_memo.get(vfid)
                if was_paused is None:
                    was_paused = codec.contains(old_filter, vfid)
            if self._flow_is_paused(fstate) != (was_paused or fstate.paused):
                return True
        return False

    # -- eligibility ----------------------------------------------------------------

    def _flow_vfid(self, fstate: SenderFlowState) -> int:
        vfid = fstate.cc_state.get("bfc_vfid")
        if vfid is None:
            vfid = fstate.key.vfid(self.config.num_vfids)
            fstate.cc_state["bfc_vfid"] = vfid
        return vfid

    def _flow_is_paused(self, fstate: SenderFlowState) -> bool:
        if fstate.paused:
            return True
        filt = self.pause_filter
        if filt is None:
            return False
        vfid = fstate.cc_state.get("bfc_vfid")
        if vfid is None:
            vfid = fstate.key.vfid(self.config.num_vfids)
            fstate.cc_state["bfc_vfid"] = vfid
        memo = self._paused_memo
        paused = memo.get(vfid)
        if paused is None:
            paused = self.codec.contains(filt, vfid)
            memo[vfid] = paused
        return paused

    def paused_flow_count(self) -> int:
        """Flows currently blocked by the pause filter (for tests/analysis)."""
        count = 0
        for flow_id in list(self._flows):
            fstate = self._flows[flow_id]
            if self._flow_is_paused(fstate):
                count += 1
        return count


#: Configured NIC classes by config value, so repeated binding of the same
#: configuration (e.g. every checkpoint restore in a speculative shard run)
#: reuses one class instead of minting a new type per call.
_CONFIGURED_CLASSES: dict = {}


def _reduce_configured_nic_class(cls: type) -> tuple:
    """Snapshot-pickle recipe for configured NIC classes.

    The classes made by :func:`bfc_nic_class` are dynamic (not importable by
    name), so :mod:`repro.shard.snapshot` pickles them through this hook:
    reconstructing via the factory round-trips to the cached class for the
    same config value.
    """
    return (bfc_nic_class, (cls.CONFIG,))


def bfc_nic_class(config: BfcConfig) -> type:
    """A :class:`BfcNicScheduler` subclass bound to a specific configuration."""
    key = dataclasses.astuple(config)
    cached = _CONFIGURED_CLASSES.get(key)
    if cached is not None:
        return cached

    class _ConfiguredBfcNic(BfcNicScheduler):
        CONFIG = config

    _ConfiguredBfcNic.__name__ = "BfcNicScheduler"
    _ConfiguredBfcNic.__qualname__ = "BfcNicScheduler"
    _ConfiguredBfcNic.__class_reduce__ = _reduce_configured_nic_class
    _CONFIGURED_CLASSES[key] = _ConfiguredBfcNic
    return _ConfiguredBfcNic
