"""Dynamic assignment of flows to physical queues (§3.3).

Each egress port has a small pool of physical FIFO queues.  BFC assigns a
newly-active flow to a currently-unallocated queue, falling back to a random
occupied queue (a *collision*) when every queue is taken, and reclaims the
queue when the flow's last packet leaves.  The straw proposal (BFC-VFID,
§3.2/§4.2) instead statically hashes the VFID onto a queue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .config import BfcConfig


@dataclass
class QueueAssignmentStats:
    """Collision accounting for Figs. 7b and 12a."""

    assignments: int = 0
    collisions: int = 0

    def collision_fraction(self) -> float:
        if self.assignments == 0:
            return 0.0
        return self.collisions / self.assignments


class PhysicalQueuePool:
    """Tracks which physical queues are free and how many flows use each."""

    def __init__(self, config: BfcConfig, rng: Optional[random.Random] = None) -> None:
        self.config = config
        self.num_queues = config.num_physical_queues
        self._rng = rng or random.Random(0)
        self._assigned_flows: List[int] = [0] * self.num_queues
        self._free: List[int] = list(range(self.num_queues))
        # Maintained incrementally: occupied_queues() feeds the per-packet
        # pause-threshold computation, so it must not scan the queue array.
        self._occupied = 0
        self.stats = QueueAssignmentStats()

    # -- assignment --------------------------------------------------------------

    def assign(self, vfid: int) -> int:
        """Pick a physical queue for a newly-active flow."""
        self.stats.assignments += 1
        if self.config.static_queue_assignment:
            queue = vfid % self.num_queues
            if self._assigned_flows[queue] > 0:
                self.stats.collisions += 1
            self._take(queue)
            return queue
        if self._free:
            queue = self._free.pop()
            if self._assigned_flows[queue] == 0:
                self._occupied += 1
            self._assigned_flows[queue] += 1
            return queue
        # Every queue is occupied: unavoidable head-of-line blocking.  The
        # paper assigns a random queue in this case (§3.3).
        queue = self._rng.randrange(self.num_queues)
        self.stats.collisions += 1
        self._assigned_flows[queue] += 1
        return queue

    def _take(self, queue: int) -> None:
        if self._assigned_flows[queue] == 0:
            self._occupied += 1
            if queue in self._free:
                self._free.remove(queue)
        self._assigned_flows[queue] += 1

    def release(self, queue: int) -> None:
        """A flow assigned to ``queue`` went idle."""
        if self._assigned_flows[queue] <= 0:
            raise ValueError(f"queue {queue} has no assigned flows to release")
        self._assigned_flows[queue] -= 1
        if self._assigned_flows[queue] == 0:
            self._occupied -= 1
            if queue not in self._free:
                self._free.append(queue)

    # -- introspection ---------------------------------------------------------------

    def assigned_flows(self, queue: int) -> int:
        return self._assigned_flows[queue]

    def occupied_queues(self) -> int:
        return self._occupied

    def free_queues(self) -> int:
        return self.num_queues - self.occupied_queues()
