"""The BFC egress scheduler: packet storage and service order (§3.3, §3.7).

Service order at a BFC egress port is:

1. the **high-priority queue** holding the (marked) first packet of new flows
   — strict priority, never paused;
2. **deficit round robin** over the physical queues whose head packet is not
   currently paused by the downstream Bloom filter, plus the **overflow
   queue** (packets whose flow could not get a hash-table entry), which is
   scheduled like a normal physical queue.

The scheduler only stores packets and picks the next one; pause/resume policy
lives in :mod:`repro.core.discipline`.  The set of non-empty queues is
maintained incrementally on push/pop so the per-packet pause-threshold
computation (which needs the active-queue count) never scans the whole queue
array.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Set, Tuple

from repro.sim.disciplines import DeficitRoundRobin
from repro.sim.packet import Packet

from .config import BfcConfig

#: Pseudo queue identifier for the per-egress overflow queue.
OVERFLOW_QUEUE = -2
#: Pseudo queue identifier for the high-priority queue.
HIGH_PRIORITY_QUEUE = -1


class BfcScheduler:
    """Packet storage and DRR service for one BFC egress port."""

    def __init__(self, config: BfcConfig) -> None:
        self.config = config
        self.num_queues = config.num_physical_queues
        self._queues: List[Deque[Packet]] = [deque() for _ in range(self.num_queues)]
        self._queue_bytes: List[int] = [0] * self.num_queues
        self._high_priority: Deque[Packet] = deque()
        self._high_priority_bytes = 0
        self._overflow: Deque[Packet] = deque()
        self._overflow_bytes = 0
        self._total_bytes = 0
        self._total_packets = 0
        # Physical queues (and the overflow pseudo-queue) currently holding
        # packets; excludes the high-priority queue, like nonempty_queues().
        self._nonempty: Set[int] = set()
        self._drr = DeficitRoundRobin(quantum=config.mtu + 48)

    # -- enqueue -----------------------------------------------------------------

    def push_high_priority(self, packet: Packet) -> None:
        self._high_priority.append(packet)
        self._high_priority_bytes += packet.size
        self._total_bytes += packet.size
        self._total_packets += 1

    def push_queue(self, queue: int, packet: Packet) -> None:
        self._queues[queue].append(packet)
        self._queue_bytes[queue] += packet.size
        self._nonempty.add(queue)
        self._drr.activate(queue)
        self._total_bytes += packet.size
        self._total_packets += 1

    def push_overflow(self, packet: Packet) -> None:
        self._overflow.append(packet)
        self._overflow_bytes += packet.size
        self._nonempty.add(OVERFLOW_QUEUE)
        self._drr.activate(OVERFLOW_QUEUE)
        self._total_bytes += packet.size
        self._total_packets += 1

    # -- dequeue ------------------------------------------------------------------

    def pop(self, queue_eligible: Optional[Callable[[int], bool]]) -> Optional[Tuple[Packet, int]]:
        """Pick the next packet to send.

        ``queue_eligible(queue_id)`` decides whether a (physical or overflow)
        queue may be served right now — the discipline uses it to implement
        Bloom-filter pauses (``None`` means every queue is eligible).
        Returns ``(packet, source_queue)`` or ``None``.
        """
        if self._high_priority:
            packet = self._high_priority.popleft()
            self._high_priority_bytes -= packet.size
            self._total_bytes -= packet.size
            self._total_packets -= 1
            return packet, HIGH_PRIORITY_QUEUE
        # Inlined DeficitRoundRobin.select with the head-size callback
        # merged: pop runs once per transmitted packet, and the callback
        # hops of the generic DRR are the dominant cost at that rate.  The
        # selection arithmetic must stay exactly equivalent to
        # ``self._drr.select(self._head_size, eligible=queue_eligible)``
        # (the DRR state is shared and must evolve identically).
        drr = self._drr
        active = drr._active
        if not active:
            drr._current = None
            return None
        deficits = drr._deficits
        queues = self._queues
        visited = 0
        limit = 2 * len(active) + 1
        qid = drr._current
        arriving = False
        while True:
            if qid is None:
                if visited >= limit:
                    return None
                visited += 1
                cursor = drr._cursor % len(active)
                qid = active[cursor]
                drr._cursor = (cursor + 1) % len(active)
                arriving = True
            queue = self._overflow if qid == OVERFLOW_QUEUE else queues[qid]
            size = queue[0].size if queue else None
            servable = size is not None and (
                queue_eligible is None or queue_eligible(qid)
            )
            if arriving:
                arriving = False
                if not servable:
                    qid = None
                    continue
                # Arriving at a backlogged, eligible queue: grant its quantum
                # and start serving it.
                deficits[qid] += drr.quantum
                drr._current = qid
            if servable and deficits[qid] >= size:
                deficits[qid] -= size
                packet = queue.popleft()
                if qid == OVERFLOW_QUEUE:
                    self._overflow_bytes -= packet.size
                else:
                    self._queue_bytes[qid] -= packet.size
                if not queue:
                    self._nonempty.discard(qid)
                    drr.deactivate(qid)
                self._total_bytes -= packet.size
                self._total_packets -= 1
                return packet, qid
            # This queue's turn is over: empty queues forfeit their deficit,
            # blocked/backlogged queues keep the remainder.
            if size is None:
                deficits[qid] = 0
            drr._current = None
            qid = None

    def _head_size(self, qid: int) -> Optional[int]:
        if qid == OVERFLOW_QUEUE:
            return self._overflow[0].size if self._overflow else None
        queue = self._queues[qid]
        return queue[0].size if queue else None

    # -- introspection ---------------------------------------------------------------

    def head_packet(self, qid: int) -> Optional[Packet]:
        if qid == OVERFLOW_QUEUE:
            return self._overflow[0] if self._overflow else None
        if qid == HIGH_PRIORITY_QUEUE:
            return self._high_priority[0] if self._high_priority else None
        queue = self._queues[qid]
        return queue[0] if queue else None

    def queue_bytes(self, qid: int) -> int:
        if qid == OVERFLOW_QUEUE:
            return self._overflow_bytes
        if qid == HIGH_PRIORITY_QUEUE:
            return self._high_priority_bytes
        return self._queue_bytes[qid]

    def queue_packets(self, qid: int) -> int:
        if qid == OVERFLOW_QUEUE:
            return len(self._overflow)
        if qid == HIGH_PRIORITY_QUEUE:
            return len(self._high_priority)
        return len(self._queues[qid])

    def nonempty_ids(self) -> Set[int]:
        """Live view of the non-empty queue ids (do not mutate)."""
        return self._nonempty

    def nonempty_queues(self) -> List[int]:
        """Physical queues (and the overflow queue) that hold packets."""
        result = sorted(qid for qid in self._nonempty if qid != OVERFLOW_QUEUE)
        if OVERFLOW_QUEUE in self._nonempty:
            result.append(OVERFLOW_QUEUE)
        return result

    def per_queue_bytes(self) -> List[int]:
        return list(self._queue_bytes)

    def backlog_bytes(self) -> int:
        return self._total_bytes

    def backlog_packets(self) -> int:
        return self._total_packets

    def has_backlog(self) -> bool:
        return self._total_packets > 0
