"""The BFC egress-port discipline.

This class glues the BFC mechanisms together for one egress port:

* on **enqueue** it looks the packet's flow up in the switch-wide virtual-flow
  table (creating an entry and assigning a physical queue if needed), steers
  marked first packets to the high-priority queue, and applies the pause rule
  of §3.4: if the flow's physical queue now exceeds the pause threshold
  ``Th = (HRTT + tau) * mu / Nactive``, the flow is paused one hop upstream via
  the per-ingress counting Bloom filter;
* on **dequeue** it serves the high-priority queue first and then deficit
  round robin over physical queues whose head is not paused by the most recent
  downstream Bloom filter, reclaims flow-table entries and physical queues
  when a flow's last packet leaves, and applies the resume rule of §3.5
  (at most ``resumes_per_interval`` flows per queue per Bloom interval).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.packet import Packet

from .config import BfcConfig
from .pause import PauseThresholds, ResumeList
from .queues import PhysicalQueuePool
from .scheduler import HIGH_PRIORITY_QUEUE, OVERFLOW_QUEUE, BfcScheduler
from .telemetry import ACTIVE_COUNT_KEY, QueueTelemetry
from .vfid import FlowEntry, packet_vfid


@dataclass
class BfcEgressStats:
    """Per-egress-port BFC accounting used by the evaluation figures."""

    enqueued_packets: int = 0
    dequeued_packets: int = 0
    high_priority_packets: int = 0
    overflow_packets: int = 0
    pauses_sent: int = 0
    resumes_sent: int = 0
    max_queue_bytes: int = 0
    max_occupied_queues: int = 0


class BfcEgressDiscipline:
    """Data-plane discipline for one BFC egress port (implements DataDiscipline)."""

    def __init__(
        self,
        agent,
        egress_index: int,
        link_rate_bps: float,
        link_delay_ns: int,
        rng=None,
    ) -> None:
        self.agent = agent
        self.config: BfcConfig = agent.config
        self.egress_index = egress_index
        self.scheduler = BfcScheduler(self.config)
        self.pool = PhysicalQueuePool(self.config, rng=rng)
        self.thresholds = PauseThresholds(self.config, link_rate_bps, link_delay_ns)
        self.resume_lists: Dict[int, ResumeList] = {}
        self.downstream_filter: Optional[bytes] = None
        # Memoized per-VFID eligibility against the *current* downstream
        # filter: the filter changes once per Bloom interval while
        # eligibility is checked per dequeue and per active-queue count, and
        # membership is a pure function of (filter, vfid).
        self._eligible_memo: Dict[int, bool] = {}
        self.stats = BfcEgressStats()
        # Hot-path aliases (stable for the lifetime of the discipline).
        self._flow_table = agent.flow_table
        self._codec = agent.codec
        self._num_vfids = self.config.num_vfids
        self._sim = agent.sim
        # BFC-Est: a stale/sampled occupancy view feeding the pause rule.
        # Only allocated when the estimator knobs are set, so ideal BFC's
        # hot path pays exactly one `is None` test and BFC-Est at
        # staleness 0 / period 0 degenerates to BFC bit for bit.
        if self.config.telemetry_staleness_ns > 0 or self.config.telemetry_sample_period_ns > 0:
            self._telemetry: Optional[QueueTelemetry] = QueueTelemetry(
                self.config.telemetry_staleness_ns,
                self.config.telemetry_sample_period_ns,
            )
        else:
            self._telemetry = None
        agent.register_discipline(self)

    # ------------------------------------------------------------------ enqueue --

    def enqueue(self, packet: Packet, ingress: int) -> bool:
        vfid = packet_vfid(packet, self._num_vfids)
        entry = self._flow_table.lookup_or_insert(
            vfid, ingress, self.egress_index, key=packet.key
        )
        self.stats.enqueued_packets += 1
        if entry is None:
            # Neither the hash-table bucket nor the overflow cache had room:
            # divert to the per-egress overflow queue (§3.8).
            self.scheduler.push_overflow(packet)
            self.stats.overflow_packets += 1
            return True
        entry.packets += 1
        entry.bytes += packet.size
        if self._should_use_high_priority(packet, entry):
            self.scheduler.push_high_priority(packet)
            self.stats.high_priority_packets += 1
            return True
        if entry.queue is None:
            entry.queue = self.pool.assign(vfid)
        queue = entry.queue
        self.scheduler.push_queue(queue, packet)
        queue_bytes = self.scheduler.queue_bytes(queue)
        if queue_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = queue_bytes
        occupied = self.pool.occupied_queues()
        if occupied > self.stats.max_occupied_queues:
            self.stats.max_occupied_queues = occupied
        if self._telemetry is not None:
            now = self._sim.now
            self._telemetry.record(queue, now, queue_bytes)
            self._telemetry.record(ACTIVE_COUNT_KEY, now, self._raw_active_count())
        self._check_pause(entry, queue_bytes)
        return True

    def _should_use_high_priority(self, packet: Packet, entry: FlowEntry) -> bool:
        """§3.7: first (marked) packet of a flow, nothing else queued, not paused."""
        if not self.config.use_high_priority_queue:
            return False
        return (
            packet.first_of_flow
            and entry.packets == 1
            and not entry.paused_upstream
        )

    def _check_pause(self, entry: FlowEntry, queue_bytes: float) -> None:
        """Pause the arriving packet's flow if its queue exceeds the threshold."""
        if entry.paused_upstream:
            return
        telemetry = self._telemetry
        if telemetry is None:
            active = self.active_queue_count()
        else:
            # BFC-Est: the decision sees occupancy as the (stale, sampled)
            # telemetry channel reports it, not as it is right now.
            now = self._sim.now
            queue_bytes = telemetry.read(entry.queue, now)
            raw = telemetry.read(ACTIVE_COUNT_KEY, now)
            active = raw if raw > 1 else 1
        threshold = self.thresholds.threshold_bytes(active)
        if queue_bytes > threshold:
            if self.agent.pause_flow(entry.vfid, entry.ingress):
                self.stats.pauses_sent += 1
            entry.paused_upstream = True
            # A pause supersedes any pending resume for the same flow.
            if entry.queue is not None:
                self._resume_list(entry.queue).discard(entry.vfid, entry.ingress)

    # ------------------------------------------------------------------ dequeue --

    def dequeue(self) -> Optional[Packet]:
        # With no downstream pause filter installed every queue is eligible;
        # passing None lets the DRR skip the per-queue callback entirely.
        eligible = self._queue_eligible if self.downstream_filter is not None else None
        result = self.scheduler.pop(eligible)
        if result is None:
            return None
        packet, source_queue = result
        self.stats.dequeued_packets += 1
        if self._telemetry is not None:
            # Record before the resume check reads: a sample taken exactly at
            # this instant reflects the state after this departure.
            now = self._sim.now
            if source_queue >= 0:
                self._telemetry.record(
                    source_queue, now, self.scheduler.queue_bytes(source_queue)
                )
            self._telemetry.record(ACTIVE_COUNT_KEY, now, self._raw_active_count())
        self._handle_departure(packet, source_queue)
        return packet

    def _queue_eligible(self, qid: int) -> bool:
        """A queue may be served unless its head packet is paused downstream."""
        filt = self.downstream_filter
        if filt is None:
            return True
        head = self.scheduler.head_packet(qid)
        if head is None:
            return False
        vfid = packet_vfid(head, self._num_vfids)
        memo = self._eligible_memo
        eligible = memo.get(vfid)
        if eligible is None:
            eligible = not self._codec.contains(filt, vfid)
            memo[vfid] = eligible
        return eligible

    def _handle_departure(self, packet: Packet, source_queue: int) -> None:
        if source_queue == OVERFLOW_QUEUE:
            # Overflow-queue packets belong to flows without a table entry.
            return
        vfid = packet_vfid(packet, self._num_vfids)
        ingress = packet.cur_ingress
        entry = self._flow_table.lookup(vfid, ingress, self.egress_index)
        if entry is None:
            return
        entry.packets -= 1
        entry.bytes -= packet.size
        self._check_resume(entry, source_queue)
        if entry.packets <= 0:
            self._reclaim(entry)

    def _check_resume(self, entry: FlowEntry, source_queue: int) -> None:
        """§3.5: consider resuming a paused flow when its queue drains below Th."""
        if not entry.paused_upstream:
            return
        telemetry = self._telemetry
        queue = entry.queue if entry.queue is not None else source_queue
        if queue in (HIGH_PRIORITY_QUEUE, OVERFLOW_QUEUE) or queue is None:
            queue_bytes = 0
            queue = 0
        elif telemetry is not None:
            queue_bytes = telemetry.read(queue, self._sim.now)
        else:
            queue_bytes = self.scheduler.queue_bytes(queue)
        if telemetry is None:
            active = self.active_queue_count()
        else:
            raw = telemetry.read(ACTIVE_COUNT_KEY, self._sim.now)
            active = raw if raw > 1 else 1
        threshold = self.thresholds.threshold_bytes(active)
        if queue_bytes > threshold:
            return
        if self.config.limit_resume_rate:
            self._resume_list(queue).add(entry.vfid, entry.ingress)
            entry.resume_pending = True
        else:
            # BFC-BufferOpt ablation: resume immediately, without rate limiting.
            if self.agent.resume_flow(entry.vfid, entry.ingress):
                self.stats.resumes_sent += 1
            entry.paused_upstream = False

    def _reclaim(self, entry: FlowEntry) -> None:
        """The flow's last packet left this switch: release queue and table entry."""
        if entry.paused_upstream and not entry.resume_pending:
            # The pause state must not leak once the table entry is gone;
            # queue it for the (rate-limited) resume path.
            queue = entry.queue if entry.queue is not None else 0
            self._resume_list(queue).add(entry.vfid, entry.ingress)
        if entry.queue is not None:
            self.pool.release(entry.queue)
            entry.queue = None
        self.agent.flow_table.remove(entry)

    # ------------------------------------------------------------------ resumes --

    def _resume_list(self, queue: int) -> ResumeList:
        lst = self.resume_lists.get(queue)
        if lst is None:
            lst = ResumeList()
            self.resume_lists[queue] = lst
        return lst

    def collect_resumes(self) -> List[Tuple[int, int]]:
        """Pop up to ``resumes_per_interval`` flows per queue to unpause now.

        Called by the BFC agent once per Bloom-filter interval (tau); the
        returned ``(vfid, ingress)`` pairs are removed from the counting Bloom
        filters, which resumes them at the upstream hop.
        """
        resumed: List[Tuple[int, int]] = []
        for lst in self.resume_lists.values():
            if not lst:
                continue  # lists persist after draining; skip the empty ones
            for _ in range(self.config.resumes_per_interval):
                item = lst.pop()
                if item is None:
                    break
                resumed.append(item)
        for vfid, ingress in resumed:
            entry = self.agent.flow_table.lookup(vfid, ingress, self.egress_index)
            if entry is not None:
                entry.paused_upstream = False
                entry.resume_pending = False
            self.stats.resumes_sent += 1
        return resumed

    # ------------------------------------------------------------------ queries --

    def _raw_active_count(self) -> int:
        """Non-empty queues whose head is not paused downstream (no floor)."""
        nonempty = self.scheduler.nonempty_ids()
        if self.downstream_filter is None:
            return len(nonempty)
        eligible = self._queue_eligible
        count = 0
        for qid in nonempty:
            if eligible(qid):
                count += 1
        return count

    def active_queue_count(self) -> int:
        """Nactive: non-empty queues whose head is not paused downstream."""
        count = self._raw_active_count()
        return count if count > 1 else 1

    def apply_downstream_filter(self, bitmap: Optional[bytes]) -> None:
        """Install the most recent Bloom filter received from the next hop."""
        self.downstream_filter = bitmap
        self._eligible_memo = {}
        if self._telemetry is not None:
            # Eligibility just changed under every queue: the active count is
            # a new change point even though no packet moved.
            self._telemetry.record(
                ACTIVE_COUNT_KEY, self._sim.now, self._raw_active_count()
            )

    def occupied_physical_queues(self) -> int:
        return self.pool.occupied_queues()

    def per_queue_bytes(self) -> List[int]:
        return self.scheduler.per_queue_bytes()

    # -- DataDiscipline interface ----------------------------------------------------

    def backlog_bytes(self) -> int:
        return self.scheduler.backlog_bytes()

    def backlog_packets(self) -> int:
        return self.scheduler.backlog_packets()

    def has_backlog(self) -> bool:
        return self.scheduler.has_backlog()
