"""BFC configuration.

One :class:`BfcConfig` instance describes every BFC tunable the paper
discusses, including the ablation switches used in §4.3 (BFC-VFID,
BFC-HighPriorityQ, BFC-BufferOpt) and the resource knobs swept in §4.4
(number of physical queues, VFID space, Bloom-filter size).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass
class BfcConfig:
    """All BFC parameters.

    Attributes
    ----------
    num_physical_queues:
        FIFO queues per egress port that the scheduler can pause/unpause
        independently (32 in the paper's main experiments).
    num_vfids:
        Size of the virtual-flow-ID space; also the number of buckets in the
        virtual-flow hash table (16 K in the paper).
    table_bucket_size:
        Entries per hash-table bucket (4 in the paper).
    overflow_cache_entries:
        Size of the associative overflow cache ("overflow TCAM", 100 entries).
    bloom_filter_bytes:
        Wire size of the multistage Bloom filter pause frame (128 B).
    bloom_hash_functions:
        Hash functions per Bloom-filter lookup (4).
    hop_rtt_ns:
        The one-hop round-trip time HRTT used in the pause threshold.  When
        ``None`` it is derived per egress port from the link's propagation
        delay and MTU serialization time.
    pause_frame_interval_ns:
        tau — how often Bloom-filter pause frames are (re)sent; the paper uses
        half of HRTT.  ``None`` derives it as ``hop_rtt_ns / 2``.
    resumes_per_interval:
        Flows taken off each physical queue's to-be-resumed list per pause
        frame interval (1 per tau = 2 per HRTT in the paper).
    pause_threshold_factor:
        Multiplier applied to the computed threshold Th; 1.0 reproduces the
        paper's rule Th = (HRTT + tau) * mu / Nactive.
    mtu:
        Packet payload size used when deriving serialization delays.
    use_high_priority_queue:
        Ablation switch for §4.3 "High priority queue" (BFC-HighPriorityQ
        disables it).
    limit_resume_rate:
        Ablation switch for §4.3 "Buffer occupancy management"
        (BFC-BufferOpt disables the two-resumes-per-RTT limit).
    static_queue_assignment:
        Ablation switch for §4.2 "Physical queue assignment": the straw
        proposal (BFC-VFID) statically hashes VFIDs onto physical queues
        instead of dynamically assigning free queues.
    telemetry_staleness_ns:
        BFC-Est: pause/resume decisions observe queue occupancy as it was
        this long ago (stale INT-style telemetry).  0 = ideal per-hop state;
        together with ``telemetry_sample_period_ns == 0`` this is exactly
        the paper's BFC (the estimator shim is not even allocated).
    telemetry_sample_period_ns:
        BFC-Est: occupancy is observed only on this periodic grid; decisions
        see the value at the most recent grid instant (after the staleness
        shift).  0 = continuous observation.
    capacity_weight_reference_bps:
        BFC-Est-Cap: when set, each egress port's pause threshold is scaled
        by ``link_rate_bps / capacity_weight_reference_bps`` (capacity-aware
        backpressure weighting, arXiv:1309.6484), so faster links tolerate
        proportionally more buffering before pausing upstream.  ``None``
        (the default) keeps the paper's unweighted threshold.
    """

    num_physical_queues: int = 32
    num_vfids: int = 16_384
    table_bucket_size: int = 4
    overflow_cache_entries: int = 100
    bloom_filter_bytes: int = 128
    bloom_hash_functions: int = 4
    hop_rtt_ns: Optional[int] = None
    pause_frame_interval_ns: Optional[int] = None
    resumes_per_interval: int = 1
    pause_threshold_factor: float = 1.0
    mtu: int = 1000
    use_high_priority_queue: bool = True
    limit_resume_rate: bool = True
    static_queue_assignment: bool = False
    telemetry_staleness_ns: int = 0
    telemetry_sample_period_ns: int = 0
    capacity_weight_reference_bps: Optional[float] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_physical_queues < 1:
            raise ValueError("need at least one physical queue per port")
        if self.num_vfids < self.num_physical_queues:
            raise ValueError("VFID space must be at least the number of physical queues")
        if self.table_bucket_size < 1:
            raise ValueError("table bucket size must be >= 1")
        if self.bloom_filter_bytes < 1:
            raise ValueError("bloom filter must be at least one byte")
        if self.bloom_hash_functions < 1:
            raise ValueError("need at least one bloom hash function")
        if self.resumes_per_interval < 1:
            raise ValueError("resumes_per_interval must be >= 1")
        if self.pause_threshold_factor <= 0:
            raise ValueError("pause_threshold_factor must be positive")
        if self.mtu <= 0:
            raise ValueError("mtu must be positive")
        if self.telemetry_staleness_ns < 0:
            raise ValueError("telemetry_staleness_ns must be >= 0")
        if self.telemetry_sample_period_ns < 0:
            raise ValueError("telemetry_sample_period_ns must be >= 0")
        if (
            self.capacity_weight_reference_bps is not None
            and self.capacity_weight_reference_bps <= 0
        ):
            raise ValueError("capacity_weight_reference_bps must be positive when set")

    # -- derived quantities -----------------------------------------------------

    def derive_hop_rtt_ns(self, link_rate_bps: float, link_delay_ns: int) -> int:
        """HRTT for a link: two propagation delays plus two MTU serializations."""
        if self.hop_rtt_ns is not None:
            return self.hop_rtt_ns
        serialization_ns = (self.mtu + 48) * 8 * 1e9 / link_rate_bps
        return int(2 * (link_delay_ns + serialization_ns))

    def derive_pause_interval_ns(self, hop_rtt_ns: int) -> int:
        """tau: the Bloom-filter (re)transmission period (HRTT / 2)."""
        if self.pause_frame_interval_ns is not None:
            return self.pause_frame_interval_ns
        return max(1, hop_rtt_ns // 2)

    def with_overrides(self, **kwargs) -> "BfcConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **kwargs)


# Named ablation configurations from the paper's §4.2/§4.3.


def bfc_vfid_config(base: Optional[BfcConfig] = None) -> BfcConfig:
    """The straw proposal: static hash assignment of flows to physical queues."""
    return (base or BfcConfig()).with_overrides(static_queue_assignment=True)


def bfc_no_high_priority_config(base: Optional[BfcConfig] = None) -> BfcConfig:
    """BFC without the high-priority queue for single-packet flows."""
    return (base or BfcConfig()).with_overrides(use_high_priority_queue=False)


def bfc_no_buffer_opt_config(base: Optional[BfcConfig] = None) -> BfcConfig:
    """BFC without the two-resumes-per-RTT limit (BFC-BufferOpt)."""
    return (base or BfcConfig()).with_overrides(limit_resume_rate=False)


def bfc_estimated_config(
    staleness_ns: int = 0,
    sample_period_ns: int = 0,
    base: Optional[BfcConfig] = None,
) -> BfcConfig:
    """BFC-Est: pause decisions driven by stale/sampled occupancy telemetry."""
    return (base or BfcConfig()).with_overrides(
        telemetry_staleness_ns=staleness_ns,
        telemetry_sample_period_ns=sample_period_ns,
    )
