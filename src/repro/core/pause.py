"""Pause thresholds and the rate-limited resume list (§3.4, §3.5).

The pause threshold answers "how much buffering does this physical queue need
so that it does not run dry while a pause/resume round-trips to the upstream
hop?".  With deficit-round-robin scheduling the queue drains at roughly
``mu / Nactive`` (the egress rate shared among active queues), and the
feedback loop takes ``HRTT + tau``, so

    Th = (HRTT + tau) * mu / Nactive.

Resumes are rate-limited to avoid the buffer blow-up analysed in §3.5: when a
physical queue is shared by many paused flows, at most ``resumes_per_interval``
of them (one per Bloom-filter interval, i.e. two per HRTT) are cleared from
the pause filter per interval.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Set, Tuple

from .config import BfcConfig


class PauseThresholds:
    """Computes the pause/resume threshold for one egress port."""

    def __init__(self, config: BfcConfig, link_rate_bps: float, link_delay_ns: int) -> None:
        self.config = config
        self.link_rate_bps = link_rate_bps
        self.hop_rtt_ns = config.derive_hop_rtt_ns(link_rate_bps, link_delay_ns)
        self.pause_interval_ns = config.derive_pause_interval_ns(self.hop_rtt_ns)
        # Bytes the link drains during one feedback delay (HRTT + tau).
        self._feedback_bytes = (
            (self.hop_rtt_ns + self.pause_interval_ns) * link_rate_bps / (8 * 1e9)
        )
        # BFC-Est-Cap: capacity-aware weighting (arXiv:1309.6484) scales the
        # threshold by this port's rate relative to a reference rate, so a
        # faster link tolerates proportionally more buffering before pausing.
        # On a homogeneous fabric with reference == link rate the weight is
        # exactly 1.0 and the threshold is byte-identical to plain BFC.
        if config.capacity_weight_reference_bps is not None:
            self._feedback_bytes *= link_rate_bps / config.capacity_weight_reference_bps
        # Th is queried once per enqueued/dequeued packet and only ever for
        # n_active in [1, num_physical_queues + 1]; memoize per count.
        self._by_count: dict = {}

    def threshold_bytes(self, active_queues: int) -> float:
        """Th for a physical queue given the current number of active queues."""
        n_active = active_queues if active_queues > 1 else 1
        threshold = self._by_count.get(n_active)
        if threshold is None:
            threshold = (
                self.config.pause_threshold_factor * self._feedback_bytes / n_active
            )
            self._by_count[n_active] = threshold
        return threshold

    def feedback_delay_ns(self) -> int:
        return self.hop_rtt_ns + self.pause_interval_ns


class ResumeList:
    """The per-physical-queue "to-be-resumed" list (§3.5).

    Flows are identified by ``(vfid, ingress)`` because that is the key of the
    pause state kept in the per-ingress counting Bloom filter; the flow-table
    entry may already have been reclaimed by the time the resume is applied.
    """

    def __init__(self) -> None:
        self._pending: Deque[Tuple[int, int]] = deque()
        self._members: Set[Tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, vfid: int, ingress: int) -> bool:
        """Queue a flow for resumption; returns False if it was already queued."""
        key = (vfid, ingress)
        if key in self._members:
            return False
        self._members.add(key)
        self._pending.append(key)
        return True

    def pop(self) -> Optional[Tuple[int, int]]:
        """Take the next flow to resume (FIFO order), or None when empty."""
        if not self._pending:
            return None
        key = self._pending.popleft()
        self._members.discard(key)
        return key

    def discard(self, vfid: int, ingress: int) -> None:
        """Drop a pending resume (e.g. the flow was paused again)."""
        key = (vfid, ingress)
        if key in self._members:
            self._members.discard(key)
            self._pending.remove(key)

    def contains(self, vfid: int, ingress: int) -> bool:
        return (vfid, ingress) in self._members
