"""Virtual flow IDs and the per-switch virtual-flow hash table.

BFC identifies flows by a hash of the 5-tuple (the *VFID*, §3.3) and keeps
state only for flows that currently have packets queued at the switch.  The
state lives in a bucketised hash table indexed by the VFID itself (§3.8): the
number of buckets equals the VFID space so the key does not need to be
stored, each bucket holds up to four entries, and an entry additionally
records the flow's ingress and egress so that different flows colliding on
the same VFID can usually be disambiguated.  When a bucket fills up, a small
associative overflow cache ("overflow TCAM") absorbs the extra flows; if that
also fills, packets are diverted to a per-egress overflow queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.packet import FlowKey, Packet

from .config import BfcConfig


def packet_vfid(packet: Packet, space: int) -> int:
    """The VFID of a packet, cached on the packet for the given VFID space."""
    if packet.vfid >= 0 and packet.vfid_space == space:
        return packet.vfid
    # Equivalent to packet.key.vfid(space); reads the key's precomputed
    # digest directly to keep this (very hot) helper to two attribute loads.
    vfid = packet.key._digest % space
    packet.vfid = vfid
    packet.vfid_space = space
    return vfid


@dataclass
class FlowEntry:
    """Per-active-flow switch state (§3.3: queue, pause flag, packet count)."""

    vfid: int
    ingress: int
    egress: int
    queue: Optional[int] = None
    packets: int = 0
    bytes: int = 0
    paused_upstream: bool = False
    resume_pending: bool = False
    in_overflow_cache: bool = False
    current_key: Optional[FlowKey] = None

    def is_idle(self) -> bool:
        return self.packets == 0

    def identity(self) -> Tuple[int, int, int]:
        return (self.vfid, self.ingress, self.egress)


@dataclass
class FlowTableStats:
    """Occupancy / collision / overflow accounting for §4.4 (Fig. 13)."""

    inserts: int = 0
    vfid_collisions: int = 0
    bucket_overflows: int = 0
    cache_overflows: int = 0
    max_active_entries: int = 0


class FlowTable:
    """The virtual-flow hash table plus the overflow cache.

    The table is keyed by ``(vfid, ingress, egress)``.  A bucket is the set of
    entries sharing a VFID; its size is capped at ``config.table_bucket_size``
    to model the fixed hardware bucket.  Entries are created on the first
    packet of a flow and reclaimed when the flow's last packet leaves the
    switch.
    """

    def __init__(self, config: BfcConfig) -> None:
        self.config = config
        self._buckets: Dict[int, List[FlowEntry]] = {}
        self._overflow_cache: Dict[Tuple[int, int, int], FlowEntry] = {}
        self.stats = FlowTableStats()
        self._active_entries = 0

    # -- lookup / insert -----------------------------------------------------------

    def lookup(self, vfid: int, ingress: int, egress: int) -> Optional[FlowEntry]:
        """Find the entry for (vfid, ingress, egress), if any."""
        bucket = self._buckets.get(vfid)
        if bucket:
            for entry in bucket:
                if entry.ingress == ingress and entry.egress == egress:
                    return entry
        return self._overflow_cache.get((vfid, ingress, egress))

    def lookup_or_insert(
        self, vfid: int, ingress: int, egress: int, key: Optional[FlowKey] = None
    ) -> Optional[FlowEntry]:
        """Return the entry for a packet, creating one if needed.

        Returns ``None`` when neither the bucket nor the overflow cache has
        room, in which case the caller must divert the packet to the overflow
        queue (§3.8).
        """
        entry = self.lookup(vfid, ingress, egress)
        if entry is not None:
            if key is not None and entry.current_key is not None and entry.packets > 0:
                if key != entry.current_key:
                    # A different real flow hashed onto the same live entry.
                    self.stats.vfid_collisions += 1
                    entry.current_key = key
            elif key is not None:
                entry.current_key = key
            return entry
        return self._insert(vfid, ingress, egress, key)

    def _insert(
        self, vfid: int, ingress: int, egress: int, key: Optional[FlowKey]
    ) -> Optional[FlowEntry]:
        self.stats.inserts += 1
        entry = FlowEntry(vfid=vfid, ingress=ingress, egress=egress, current_key=key)
        bucket = self._buckets.setdefault(vfid, [])
        if len(bucket) < self.config.table_bucket_size:
            bucket.append(entry)
        else:
            self.stats.bucket_overflows += 1
            if len(self._overflow_cache) < self.config.overflow_cache_entries:
                entry.in_overflow_cache = True
                self._overflow_cache[entry.identity()] = entry
            else:
                self.stats.cache_overflows += 1
                return None
        self._active_entries += 1
        if self._active_entries > self.stats.max_active_entries:
            self.stats.max_active_entries = self._active_entries
        return entry

    # -- removal -------------------------------------------------------------------

    def remove(self, entry: FlowEntry) -> None:
        """Reclaim an entry (the flow's last packet left the switch)."""
        if entry.in_overflow_cache:
            self._overflow_cache.pop(entry.identity(), None)
        else:
            bucket = self._buckets.get(entry.vfid)
            if bucket and entry in bucket:
                bucket.remove(entry)
                if not bucket:
                    del self._buckets[entry.vfid]
        self._active_entries = max(0, self._active_entries - 1)

    # -- introspection ------------------------------------------------------------------

    def active_entries(self) -> int:
        return self._active_entries

    def entries(self) -> List[FlowEntry]:
        result: List[FlowEntry] = []
        for bucket in self._buckets.values():
            result.extend(bucket)
        result.extend(self._overflow_cache.values())
        return result

    def memory_bytes(self, entry_bytes: int = 16) -> int:
        """Rough hardware memory footprint (the paper's table is 256 KB)."""
        return self.config.num_vfids * self.config.table_bucket_size * entry_bytes
