"""Backpressure Flow Control (BFC) — the paper's core contribution.

The package implements the switch- and NIC-side mechanisms of BFC:

* :mod:`repro.core.config` — all tunables (physical queues per port, VFID
  space, Bloom-filter geometry, pause-threshold factors, ablation switches).
* :mod:`repro.core.bloom` — the multistage Bloom filter used to signal pauses
  upstream and the counting Bloom filter kept at the congested switch.
* :mod:`repro.core.vfid` — VFID hashing, the bucketised virtual-flow hash
  table and the overflow cache.
* :mod:`repro.core.queues` — dynamic assignment of flows to physical queues.
* :mod:`repro.core.pause` — pause-threshold computation and the rate-limited
  to-be-resumed list.
* :mod:`repro.core.scheduler` — the egress scheduler (high-priority queue +
  deficit round robin over unpaused physical queues).
* :mod:`repro.core.discipline` — the egress-port discipline tying it together.
* :mod:`repro.core.switchlogic` — the per-switch BFC agent and the
  :class:`BfcSwitch` node type.
* :mod:`repro.core.nic` — the BFC-aware host NIC scheduler.
"""

from .config import (
    BfcConfig,
    bfc_no_buffer_opt_config,
    bfc_no_high_priority_config,
    bfc_vfid_config,
)
from .bloom import BloomFilterCodec, CountingBloomFilter
from .vfid import FlowEntry, FlowTable, packet_vfid
from .queues import PhysicalQueuePool
from .pause import PauseThresholds, ResumeList
from .scheduler import BfcScheduler, HIGH_PRIORITY_QUEUE, OVERFLOW_QUEUE
from .discipline import BfcEgressDiscipline
from .switchlogic import BfcAgent, BfcSwitch
from .nic import BfcNicScheduler, bfc_nic_class

__all__ = [
    "BfcConfig",
    "bfc_vfid_config",
    "bfc_no_high_priority_config",
    "bfc_no_buffer_opt_config",
    "BloomFilterCodec",
    "CountingBloomFilter",
    "FlowEntry",
    "FlowTable",
    "packet_vfid",
    "PhysicalQueuePool",
    "PauseThresholds",
    "ResumeList",
    "BfcScheduler",
    "HIGH_PRIORITY_QUEUE",
    "OVERFLOW_QUEUE",
    "BfcEgressDiscipline",
    "BfcAgent",
    "BfcSwitch",
    "BfcNicScheduler",
    "bfc_nic_class",
]
