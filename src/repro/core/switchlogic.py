"""Per-switch BFC control logic and the BFC switch node type.

The :class:`BfcAgent` owns the state that is shared by all egress ports of a
switch:

* the virtual-flow hash table (§3.8),
* one counting Bloom filter per ingress link holding the flows this switch has
  paused on that link (§3.6),
* the periodic task that, every Bloom interval tau, applies rate-limited
  resumes and retransmits the (idempotent) pause frames upstream.

:class:`BfcSwitch` is a :class:`repro.sim.switch.Switch` whose egress ports
use :class:`repro.core.discipline.BfcEgressDiscipline` and which understands
incoming Bloom-filter pause frames from its downstream neighbours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.sim.buffer import PfcPolicy
from repro.sim.packet import FlowKey, Packet, PacketKind
from repro.sim.port import Interface
from repro.sim.switch import EcnConfig, Switch
from repro.sim.stats import Counters

from .bloom import BloomFilterCodec, CountingBloomFilter
from .config import BfcConfig
from .discipline import BfcEgressDiscipline
from .vfid import FlowTable

_BLOOM_KEY = FlowKey(src=-2, dst=-2, src_port=0, dst_port=0)
_BLOOM_HEADER_BYTES = 18  # Ethernet-style header around the filter payload


class BfcAgent:
    """Switch-wide BFC state machine."""

    def __init__(self, sim, config: BfcConfig) -> None:
        self.sim = sim
        self.config = config
        self.codec = BloomFilterCodec(
            size_bytes=config.bloom_filter_bytes,
            num_hashes=config.bloom_hash_functions,
        )
        self.flow_table = FlowTable(config)
        self.disciplines: List[BfcEgressDiscipline] = []
        self._pause_filters: Dict[int, CountingBloomFilter] = {}
        self._paused_vfids: Dict[int, Set[int]] = {}
        self._dirty: Dict[int, bool] = {}
        self.counters = Counters()
        self._interfaces: Optional[List[Interface]] = None
        self._tick_interval_ns: Optional[int] = None
        self._started = False

    # -- wiring -------------------------------------------------------------------

    def register_discipline(self, discipline: BfcEgressDiscipline) -> None:
        self.disciplines.append(discipline)

    def attach(self, interfaces: List[Interface]) -> None:
        """Give the agent access to the switch's interfaces for sending frames."""
        self._interfaces = interfaces

    def start(self) -> None:
        """Schedule the periodic pause-frame / resume tick."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self._tick_interval(), self._tick)

    def _tick_interval(self) -> int:
        # Interfaces (and hence disciplines) are wired after construction, so
        # the interval is recomputed on every tick rather than cached.
        if self.disciplines:
            return min(d.thresholds.pause_interval_ns for d in self.disciplines)
        return self.config.derive_pause_interval_ns(self.config.hop_rtt_ns or 2_000)

    # -- pause / resume API (called by the egress disciplines) -------------------------

    def pause_flow(self, vfid: int, ingress: int) -> bool:
        """Pause (vfid, ingress-link); returns True if this is a new pause."""
        paused = self._paused_vfids.setdefault(ingress, set())
        if vfid in paused:
            return False
        paused.add(vfid)
        self._filter_for(ingress).add(vfid)
        self._dirty[ingress] = True
        self.counters.incr("pauses")
        return True

    def resume_flow(self, vfid: int, ingress: int) -> bool:
        """Clear the pause for (vfid, ingress-link); True if it was paused."""
        paused = self._paused_vfids.get(ingress)
        if not paused or vfid not in paused:
            return False
        paused.remove(vfid)
        self._filter_for(ingress).remove(vfid)
        self._dirty[ingress] = True
        self.counters.incr("resumes")
        return True

    def is_paused(self, vfid: int, ingress: int) -> bool:
        return vfid in self._paused_vfids.get(ingress, set())

    def paused_flow_count(self) -> int:
        return sum(len(v) for v in self._paused_vfids.values())

    def _filter_for(self, ingress: int) -> CountingBloomFilter:
        filt = self._pause_filters.get(ingress)
        if filt is None:
            filt = CountingBloomFilter(self.codec)
            self._pause_filters[ingress] = filt
        return filt

    # -- periodic tick ----------------------------------------------------------------

    def _tick(self) -> None:
        self._apply_resumes()
        self._send_pause_frames()
        self.sim.schedule(self._tick_interval(), self._tick)

    def _apply_resumes(self) -> None:
        for discipline in self.disciplines:
            for vfid, ingress in discipline.collect_resumes():
                self.resume_flow(vfid, ingress)

    def _send_pause_frames(self) -> None:
        if self._interfaces is None:
            return
        for ingress, filt in self._pause_filters.items():
            dirty = self._dirty.get(ingress, False)
            if filt.is_empty() and not dirty:
                continue
            self._dirty[ingress] = False
            iface = self._interfaces[ingress]
            if not iface.tx.connected:
                continue
            frame = Packet(
                kind=PacketKind.BLOOM,
                flow_id=0,
                key=_BLOOM_KEY,
                size=self.config.bloom_filter_bytes + _BLOOM_HEADER_BYTES,
                created_ns=self.sim.now,
                bloom_bits=filt.to_bitmap(),
            )
            iface.tx.send_control(frame)
            self.counters.incr("bloom_frames_sent")


class BfcSwitch(Switch):
    """A switch running BFC on every egress port (PFC kept as a backstop)."""

    def __init__(
        self,
        sim,
        name: str,
        buffer_bytes: int,
        bfc_config: Optional[BfcConfig] = None,
        pfc: Optional[PfcPolicy] = None,
        ecn: Optional[EcnConfig] = None,
        seed: int = 0,
    ) -> None:
        self.bfc_config = bfc_config or BfcConfig()
        self.agent = BfcAgent(sim, self.bfc_config)
        self._discipline_seed = seed
        super().__init__(
            sim,
            name,
            buffer_bytes=buffer_bytes,
            discipline_factory=self._make_discipline,
            pfc=pfc,
            ecn=ecn or EcnConfig(enabled=False),
            int_enabled=False,
            seed=seed,
        )
        self.agent.attach(self.interfaces)
        self.agent.start()

    def _make_discipline(self, iface: Interface) -> BfcEgressDiscipline:
        return BfcEgressDiscipline(
            agent=self.agent,
            egress_index=iface.index,
            link_rate_bps=iface.rate_bps,
            link_delay_ns=iface.delay_ns,
            rng=self.sim.rng(self._discipline_seed ^ (iface.index + 1)),
        )

    # -- Bloom-filter pause frames from downstream neighbours ---------------------------

    def handle_bloom(self, packet: Packet, iface_index: int) -> None:
        iface = self.interfaces[iface_index]
        discipline = iface.tx.discipline
        if isinstance(discipline, BfcEgressDiscipline):
            discipline.apply_downstream_filter(packet.bloom_bits)
            self.counters.incr("bloom_frames_received")
            # A queue may have just become unpaused: let the port re-evaluate.
            iface.tx.notify()
        else:  # pragma: no cover - defensive
            self.counters.incr("bloom_ignored")

    # -- introspection -------------------------------------------------------------------

    def bfc_disciplines(self) -> List[BfcEgressDiscipline]:
        return [
            iface.tx.discipline
            for iface in self.interfaces
            if isinstance(iface.tx.discipline, BfcEgressDiscipline)
        ]

    def collision_fraction(self) -> float:
        assignments = sum(d.pool.stats.assignments for d in self.bfc_disciplines())
        collisions = sum(d.pool.stats.collisions for d in self.bfc_disciplines())
        if assignments == 0:
            return 0.0
        return collisions / assignments
