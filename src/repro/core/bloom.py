"""Multistage Bloom filters for BFC pause signalling.

BFC communicates the set of paused virtual flows on an ingress link by
periodically shipping a small Bloom filter upstream (§3.6).  The congested
(downstream) switch maintains a *counting* Bloom filter so that two paused
VFIDs mapping to the same bit can be removed independently; what travels on
the wire is the plain bitmap derived from it.

Both ends must hash identically, so the hash functions are CRC32 based (never
Python's randomised ``hash``).
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Tuple


class BloomFilterCodec:
    """Hashing and membership logic shared by both ends of a link.

    Parameters
    ----------
    size_bytes:
        Wire size of the filter (the paper's default is 128 bytes).
    num_hashes:
        Number of hash functions (4 in the paper).
    salt:
        Optional distinguishing salt.  Both ends of a link must use the same
        salt; experiments use 0 everywhere.
    """

    def __init__(self, size_bytes: int = 128, num_hashes: int = 4, salt: int = 0) -> None:
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.size_bytes = size_bytes
        self.num_bits = size_bytes * 8
        self.num_hashes = num_hashes
        self.salt = salt

    def bit_positions(self, vfid: int) -> Tuple[int, ...]:
        """The bit positions a VFID maps to (deterministic across processes)."""
        positions = []
        for i in range(self.num_hashes):
            data = f"{self.salt}:{i}:{vfid}".encode("ascii")
            positions.append(zlib.crc32(data) % self.num_bits)
        return tuple(positions)

    def empty_bitmap(self) -> bytes:
        return bytes(self.size_bytes)

    def contains(self, bitmap: bytes, vfid: int) -> bool:
        """Membership test against a wire bitmap (false positives possible)."""
        if bitmap is None:
            return False
        for pos in self.bit_positions(vfid):
            byte_index, bit_index = divmod(pos, 8)
            if byte_index >= len(bitmap) or not (bitmap[byte_index] >> bit_index) & 1:
                return False
        return True

    def encode(self, vfids: Iterable[int]) -> bytes:
        """Build a wire bitmap directly from a collection of VFIDs."""
        bits = bytearray(self.size_bytes)
        for vfid in vfids:
            for pos in self.bit_positions(vfid):
                byte_index, bit_index = divmod(pos, 8)
                bits[byte_index] |= 1 << bit_index
        return bytes(bits)


class CountingBloomFilter:
    """The downstream switch's per-ingress pause filter.

    Each bit of the wire filter is backed by a small counter so that removing
    one VFID does not accidentally unpause another VFID sharing a bit
    position (§3.6: "If two paused VFIDs map to the same bloom filter bit
    position, the count will be two ...").
    """

    def __init__(self, codec: BloomFilterCodec) -> None:
        self.codec = codec
        self._counts: List[int] = [0] * codec.num_bits
        self._members = 0

    def __len__(self) -> int:
        """Number of add() calls currently outstanding (not distinct VFIDs)."""
        return self._members

    def add(self, vfid: int) -> None:
        for pos in self.codec.bit_positions(vfid):
            self._counts[pos] += 1
        self._members += 1

    def remove(self, vfid: int) -> None:
        positions = self.codec.bit_positions(vfid)
        for pos in positions:
            if self._counts[pos] <= 0:
                raise ValueError(f"removing VFID {vfid} that was never added")
        for pos in positions:
            self._counts[pos] -= 1
        self._members -= 1

    def contains(self, vfid: int) -> bool:
        return all(self._counts[pos] > 0 for pos in self.codec.bit_positions(vfid))

    def is_empty(self) -> bool:
        return self._members == 0

    def to_bitmap(self) -> bytes:
        """The wire representation sent upstream (1 bit per non-zero counter)."""
        bits = bytearray(self.codec.size_bytes)
        for pos, count in enumerate(self._counts):
            if count > 0:
                byte_index, bit_index = divmod(pos, 8)
                bits[byte_index] |= 1 << bit_index
        return bytes(bits)

    def max_counter(self) -> int:
        return max(self._counts) if self._counts else 0
