"""Multistage Bloom filters for BFC pause signalling.

BFC communicates the set of paused virtual flows on an ingress link by
periodically shipping a small Bloom filter upstream (§3.6).  The congested
(downstream) switch maintains a *counting* Bloom filter so that two paused
VFIDs mapping to the same bit can be removed independently; what travels on
the wire is the plain bitmap derived from it.

Both ends must hash identically, so the hash functions are CRC32 based (never
Python's randomised ``hash``).  Membership tests run once per queue-service
decision on every BFC egress port, so the codec memoizes each VFID's bit
positions (the VFID space is small and fixed) and the counting filter keeps
its wire bitmap up to date incrementally instead of rescanning the counters.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Tuple


class BloomFilterCodec:
    """Hashing and membership logic shared by both ends of a link.

    Parameters
    ----------
    size_bytes:
        Wire size of the filter (the paper's default is 128 bytes).
    num_hashes:
        Number of hash functions (4 in the paper).
    salt:
        Optional distinguishing salt.  Both ends of a link must use the same
        salt; experiments use 0 everywhere.
    """

    def __init__(self, size_bytes: int = 128, num_hashes: int = 4, salt: int = 0) -> None:
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.size_bytes = size_bytes
        self.num_bits = size_bytes * 8
        self.num_hashes = num_hashes
        self.salt = salt
        # Memoized per-VFID derivations.  Keys are the VFIDs actually seen;
        # the VFID space is fixed per experiment (16K default), so these are
        # bounded and every entry is reused thousands of times.
        self._positions: Dict[int, Tuple[int, ...]] = {}
        # (byte_index, bit_mask) pairs for bitmap membership tests.
        self._masks: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    def bit_positions(self, vfid: int) -> Tuple[int, ...]:
        """The bit positions a VFID maps to (deterministic across processes)."""
        positions = self._positions.get(vfid)
        if positions is None:
            num_bits = self.num_bits
            positions = tuple(
                zlib.crc32(b"%d:%d:%d" % (self.salt, i, vfid)) % num_bits
                for i in range(self.num_hashes)
            )
            self._positions[vfid] = positions
        return positions

    def _bit_masks(self, vfid: int) -> Tuple[Tuple[int, int], ...]:
        masks = self._masks.get(vfid)
        if masks is None:
            masks = tuple((pos >> 3, 1 << (pos & 7)) for pos in self.bit_positions(vfid))
            self._masks[vfid] = masks
        return masks

    def empty_bitmap(self) -> bytes:
        return bytes(self.size_bytes)

    def contains(self, bitmap: bytes, vfid: int) -> bool:
        """Membership test against a wire bitmap (false positives possible)."""
        if bitmap is None:
            return False
        masks = self._masks.get(vfid)
        if masks is None:
            masks = self._bit_masks(vfid)
        bitmap_len = len(bitmap)
        for byte_index, mask in masks:
            if byte_index >= bitmap_len or not bitmap[byte_index] & mask:
                return False
        return True

    def encode(self, vfids: Iterable[int]) -> bytes:
        """Build a wire bitmap directly from a collection of VFIDs."""
        bits = bytearray(self.size_bytes)
        for vfid in vfids:
            for byte_index, mask in self._bit_masks(vfid):
                bits[byte_index] |= mask
        return bytes(bits)


class CountingBloomFilter:
    """The downstream switch's per-ingress pause filter.

    Each bit of the wire filter is backed by a small counter so that removing
    one VFID does not accidentally unpause another VFID sharing a bit
    position (§3.6: "If two paused VFIDs map to the same bloom filter bit
    position, the count will be two ...").

    The wire bitmap is maintained incrementally: a bit flips exactly when its
    counter crosses zero, so :meth:`to_bitmap` is a buffer copy rather than a
    scan of every counter.
    """

    def __init__(self, codec: BloomFilterCodec) -> None:
        self.codec = codec
        self._counts: List[int] = [0] * codec.num_bits
        self._bits = bytearray(codec.size_bytes)
        self._members = 0

    def __len__(self) -> int:
        """Number of add() calls currently outstanding (not distinct VFIDs)."""
        return self._members

    def add(self, vfid: int) -> None:
        counts = self._counts
        bits = self._bits
        for pos in self.codec.bit_positions(vfid):
            count = counts[pos]
            if count == 0:
                bits[pos >> 3] |= 1 << (pos & 7)
            counts[pos] = count + 1
        self._members += 1

    def remove(self, vfid: int) -> None:
        counts = self._counts
        positions = self.codec.bit_positions(vfid)
        for pos in positions:
            if counts[pos] <= 0:
                raise ValueError(f"removing VFID {vfid} that was never added")
        bits = self._bits
        for pos in positions:
            count = counts[pos] - 1
            counts[pos] = count
            if count == 0:
                bits[pos >> 3] &= ~(1 << (pos & 7))
        self._members -= 1

    def contains(self, vfid: int) -> bool:
        counts = self._counts
        for pos in self.codec.bit_positions(vfid):
            if counts[pos] <= 0:
                return False
        return True

    def is_empty(self) -> bool:
        return self._members == 0

    def to_bitmap(self) -> bytes:
        """The wire representation sent upstream (1 bit per non-zero counter)."""
        return bytes(self._bits)

    def max_counter(self) -> int:
        return max(self._counts) if self._counts else 0
