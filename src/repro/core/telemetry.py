"""Stale/sampled queue-occupancy telemetry for estimated-queue BFC.

The paper's BFC pauses on *ideal* per-hop state: every enqueue and dequeue
sees the exact physical-queue byte count and the exact active-queue count at
the instant of the decision.  The ``BFC-Est`` scheme family instead drives
the pause rule from an INT-style telemetry channel that is **delayed** and
**sampled** (mirroring backpressure-with-estimated-queues in road networks,
Li & Jabari arXiv:2006.15549):

* ``staleness_ns`` — the value the decision sees is the one that was true
  ``staleness_ns`` ago (collection + export + propagation delay of the
  telemetry path, lumped);
* ``sample_period_ns`` — the signal is only observed on a periodic grid, so
  the decision sees the value at the most recent grid instant (after the
  staleness shift).

Implementation: :class:`QueueTelemetry` keeps, per signal key, the history of
*change points* ``(time, value)``.  Because the producer records on **every**
occupancy change, the change-point history *is* the exact continuous signal,
and a read at sample instant ``s`` returns precisely what an ideal sampler
would have seen at ``s`` — no simulator events, no extra nondeterminism.
Simulation time is monotone at every record/read site, so histories are
pruned with a deque as the sample instant advances; memory stays bounded by
the number of changes inside one staleness window.

At ``staleness_ns == 0 and sample_period_ns == 0`` the consumer
(:class:`repro.core.discipline.BfcEgressDiscipline`) does not allocate a
telemetry view at all, so ideal BFC keeps its exact hot path and ``BFC-Est``
degenerates to ``BFC`` bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Tuple

#: Signal key for the active-queue count (physical queue ids are their own
#: keys; they are non-negative, so any negative sentinel is collision-free).
ACTIVE_COUNT_KEY = -101


class QueueTelemetry:
    """A delayed/sampled view over piecewise-constant occupancy signals."""

    __slots__ = ("staleness_ns", "sample_period_ns", "_histories")

    def __init__(self, staleness_ns: int = 0, sample_period_ns: int = 0) -> None:
        if staleness_ns < 0:
            raise ValueError("staleness_ns must be >= 0")
        if sample_period_ns < 0:
            raise ValueError("sample_period_ns must be >= 0")
        self.staleness_ns = staleness_ns
        self.sample_period_ns = sample_period_ns
        self._histories: Dict[Hashable, Deque[Tuple[int, int]]] = {}

    def sample_instant(self, now_ns: int) -> int:
        """The instant whose value a read at ``now_ns`` observes."""
        instant = now_ns - self.staleness_ns
        period = self.sample_period_ns
        if period > 0:
            instant = (instant // period) * period
        return instant if instant > 0 else 0

    def record(self, key: Hashable, time_ns: int, value: int) -> None:
        """Record that ``key``'s signal takes ``value`` from ``time_ns`` on.

        Must be called on every change of the underlying signal (and may be
        called when the value is unchanged — duplicates are dropped), with
        nondecreasing ``time_ns`` per key.  Several records at the same
        instant collapse to the last one, matching a sampler that observes
        the state *after* all updates of that instant.
        """
        history = self._histories.get(key)
        if history is None:
            history = deque()
            self._histories[key] = history
        if history:
            last_time, last_value = history[-1]
            if last_value == value:
                return
            if last_time == time_ns:
                history[-1] = (time_ns, value)
                self._prune(history, self.sample_instant(time_ns))
                return
        history.append((time_ns, value))
        self._prune(history, self.sample_instant(time_ns))

    def read(self, key: Hashable, now_ns: int, default: int = 0) -> int:
        """The value of ``key`` as an estimator reading at ``now_ns`` sees it."""
        history = self._histories.get(key)
        if not history:
            return default
        instant = self.sample_instant(now_ns)
        self._prune(history, instant)
        time_ns, value = history[0]
        if time_ns > instant:
            return default
        return value

    @staticmethod
    def _prune(history: Deque[Tuple[int, int]], instant: int) -> None:
        # Drop change points strictly superseded at the sample instant; the
        # instant is nondecreasing across calls, so dropped entries can never
        # be needed again.
        while len(history) > 1 and history[1][0] <= instant:
            history.popleft()

    def history_length(self, key: Hashable) -> int:
        """Retained change points for ``key`` (introspection/tests only)."""
        history = self._histories.get(key)
        return len(history) if history else 0
