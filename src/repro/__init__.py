"""Backpressure Flow Control (BFC) — reproduction library.

This package reproduces "Backpressure Flow Control" (Goyal et al., NSDI 2022)
in pure Python:

* :mod:`repro.sim` — a from-scratch packet-level discrete-event network
  simulator (links, shared-buffer switches, PFC, RDMA-style NICs with
  Go-Back-N).
* :mod:`repro.core` — BFC itself: dynamic flow-to-queue assignment, per-flow
  hop-by-hop pauses signalled with counting Bloom filters, the high-priority
  queue for single-packet flows, and the paper's ablation variants.
* :mod:`repro.congestion` — the end-to-end baselines (DCQCN, DCQCN+Win, HPCC).
* :mod:`repro.topology` — leaf-spine (T1/T2) and cross-data-center fabrics.
* :mod:`repro.workloads` — Google / FB_Hadoop / WebSearch traces, incast.
* :mod:`repro.analysis` — FCT slowdown, buffer occupancy and pause analysis.
* :mod:`repro.experiments` — the pluggable scheme registry
  (``@register_scheme``), the single-run experiment runner and the
  per-figure scenarios.
* :mod:`repro.campaign` — the high-level API: declarative campaigns
  ({scheme x sweep x repeats} grids) run through serial or process-pool
  executors into tidy, JSONL-persistable result sets.

Quickstart::

    from repro.campaign import Campaign

    results = (
        Campaign("demo")
        .schemes("BFC", "DCQCN")
        .sweep(load=[0.6, 0.8])
        .repeats(2)
        .run(workers=4)          # process pool; same records as serial
    )
    print(results.p99_slowdown_by("scheme", "load"))
    results.save("demo.jsonl")   # tidy per-trial records, reload anytime

The paper's figures are ready-made campaigns::

    from repro.experiments.scenarios import fig5a_campaign

    result_set = fig5a_campaign("tiny", schemes=["BFC", "DCQCN"]).run()
    for record in result_set:
        print(record.label, record.metrics["p99_slowdown"])

Single runs remain available one level down via
:func:`repro.experiments.run_experiment`.
"""

__version__ = "1.1.0"

from . import analysis, campaign, congestion, core, experiments, sim, topology, workloads

__all__ = [
    "__version__",
    "sim",
    "core",
    "congestion",
    "topology",
    "workloads",
    "analysis",
    "experiments",
    "campaign",
]
