"""Backpressure Flow Control (BFC) — reproduction library.

This package reproduces "Backpressure Flow Control" (Goyal et al., NSDI 2022)
in pure Python:

* :mod:`repro.sim` — a from-scratch packet-level discrete-event network
  simulator (links, shared-buffer switches, PFC, RDMA-style NICs with
  Go-Back-N).
* :mod:`repro.core` — BFC itself: dynamic flow-to-queue assignment, per-flow
  hop-by-hop pauses signalled with counting Bloom filters, the high-priority
  queue for single-packet flows, and the paper's ablation variants.
* :mod:`repro.congestion` — the end-to-end baselines (DCQCN, DCQCN+Win, HPCC).
* :mod:`repro.topology` — leaf-spine (T1/T2) and cross-data-center fabrics.
* :mod:`repro.workloads` — Google / FB_Hadoop / WebSearch traces, incast.
* :mod:`repro.analysis` — FCT slowdown, buffer occupancy and pause analysis.
* :mod:`repro.experiments` — the scheme registry, runner and per-figure
  scenarios used by the benchmark harness.

Quickstart::

    from repro.experiments import run_experiment
    from repro.experiments.scenarios import fig5a_configs

    configs = fig5a_configs("tiny", schemes=["BFC", "DCQCN"])
    for scheme, config in configs.items():
        result = run_experiment(config)
        print(scheme, result.p99_slowdown())
"""

__version__ = "1.0.0"

from . import analysis, congestion, core, experiments, sim, topology, workloads

__all__ = [
    "__version__",
    "sim",
    "core",
    "congestion",
    "topology",
    "workloads",
    "analysis",
    "experiments",
]
