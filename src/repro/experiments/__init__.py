"""Experiment harness: scheme wiring, the runner, and per-figure scenarios.

Grids of experiments (sweeps, repeats, parallel execution) live one level up
in :mod:`repro.campaign`; this package provides the single-run primitive and
the pluggable scheme registry it draws from.
"""

from .schemes import (
    SCHEMES,
    DuplicateSchemeError,
    SchemeEnvironment,
    SchemeSpec,
    UnknownSchemeError,
    available_schemes,
    get_scheme,
    register_scheme,
    register_scheme_spec,
    unregister_scheme,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    TrafficSpec,
    run_experiment,
    run_schemes,
)
from . import scenarios

__all__ = [
    "SCHEMES",
    "SchemeSpec",
    "SchemeEnvironment",
    "UnknownSchemeError",
    "DuplicateSchemeError",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "register_scheme_spec",
    "unregister_scheme",
    "ExperimentConfig",
    "ExperimentResult",
    "TrafficSpec",
    "run_experiment",
    "run_schemes",
    "scenarios",
]
