"""Experiment harness: scheme wiring, the runner, and per-figure scenarios."""

from .schemes import SCHEMES, SchemeEnvironment, SchemeSpec, available_schemes
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    TrafficSpec,
    run_experiment,
    run_schemes,
)
from . import scenarios

__all__ = [
    "SCHEMES",
    "SchemeSpec",
    "SchemeEnvironment",
    "available_schemes",
    "ExperimentConfig",
    "ExperimentResult",
    "TrafficSpec",
    "run_experiment",
    "run_schemes",
    "scenarios",
]
