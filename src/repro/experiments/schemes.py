"""Scheme registry: how each evaluated scheme is wired into the simulator.

A *scheme* bundles the switch-side and host-side behaviour of one line in the
paper's figures:

=====================  ==========================================  =============================
Scheme                 Switch                                      Host / congestion control
=====================  ==========================================  =============================
``DCQCN``              FIFO egress, ECN marking, PFC               DCQCN rate control
``DCQCN+Win``          FIFO egress, ECN marking, PFC               DCQCN + 1-BDP window cap
``DCQCN+Win+SFQ``      SFQ (32 queues, DRR), ECN marking, PFC      DCQCN + 1-BDP window cap
``DCQCN+IRN``          FIFO egress, ECN marking, no PFC (lossy)    DCQCN + selective repeat
``HPCC``               FIFO egress, INT stamping, PFC              HPCC window control
``Ideal-FQ``           per-flow FQ, infinite buffer, no PFC        line rate + 1-BDP window cap
``SFQ+InfBuffer``      SFQ (32 queues), infinite buffer, no PFC    line rate + 1-BDP window cap
``BFC``                BFC egress (dynamic queues), PFC backstop   line rate, BFC NIC
``BFC-VFID``           BFC with static hash queue assignment       line rate, BFC NIC
``BFC-HighPriorityQ``  BFC without the high-priority queue         line rate, BFC NIC
``BFC-BufferOpt``      BFC without the resume-rate limit           line rate, BFC NIC
``BFC-Est``            BFC pausing on stale/sampled telemetry      line rate, BFC NIC
``BFC-Est-Cap``        BFC-Est + capacity-weighted thresholds      line rate, BFC NIC
``PFC``                FIFO egress, PFC only                       line rate (no CC)
=====================  ==========================================  =============================

The four paper schemes (``BFC`` and its ablations) force the estimator knobs
off, so a ``BfcConfig`` carrying ``telemetry_staleness_ns`` never perturbs
the paper-faithful baselines; only ``BFC-Est``/``BFC-Est-Cap`` honour them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.congestion.dcqcn import DcqcnConfig, DcqcnControl, DcqcnWindowedControl
from repro.congestion.hpcc import HpccConfig, HpccControl
from repro.core.config import BfcConfig
from repro.core.nic import bfc_nic_class
from repro.core.switchlogic import BfcSwitch
from repro.sim.buffer import PfcPolicy
from repro.sim.disciplines import FifoDiscipline, IdealFqDiscipline, SfqDiscipline
from repro.sim.flow import Flow
from repro.sim.host import (
    CongestionControl,
    Host,
    HostConfig,
    WindowedCongestionControl,
)
from repro.sim.switch import EcnConfig, Switch


@dataclass
class SchemeEnvironment:
    """Everything a scheme needs to instantiate switches and hosts."""

    sim: object
    link_rate_bps: float
    link_delay_ns: int
    base_rtt_ns: int
    bdp_bytes: int
    buffer_bytes: int
    gateway_buffer_bytes: Optional[int] = None
    mtu: int = 1000
    pfc_enabled: bool = True
    pfc_threshold_fraction: float = 0.11
    ecn_kmin_bytes: Optional[int] = None
    ecn_kmax_bytes: Optional[int] = None
    rto_ns: Optional[int] = None
    seed: int = 1
    flow_registry: Dict[int, Flow] = field(default_factory=dict)
    bfc_config: Optional[BfcConfig] = None
    dcqcn_config: Optional[DcqcnConfig] = None
    hpcc_config: Optional[HpccConfig] = None
    num_sfq_queues: int = 32

    def ecn(self) -> EcnConfig:
        """DCQCN's ECN thresholds, scaled with the BDP like the paper's setup.

        The paper uses Kmin = 100 KB and Kmax = 400 KB at 100 Gbps / 8 us RTT,
        i.e. one and four end-to-end BDPs; the same ratio is kept when the
        environment runs at a scaled-down rate.
        """
        kmin = self.ecn_kmin_bytes if self.ecn_kmin_bytes is not None else self.bdp_bytes
        kmax = self.ecn_kmax_bytes if self.ecn_kmax_bytes is not None else 4 * self.bdp_bytes
        return EcnConfig(enabled=True, kmin=kmin, kmax=kmax, pmax=0.2)

    def pfc(self) -> PfcPolicy:
        return PfcPolicy(
            enabled=self.pfc_enabled, threshold_fraction=self.pfc_threshold_fraction
        )

    def no_pfc(self) -> PfcPolicy:
        return PfcPolicy(enabled=False)

    def host_rto_ns(self) -> int:
        if self.rto_ns is not None:
            return self.rto_ns
        return max(10 * self.base_rtt_ns, 200_000)

    def effective_bfc_config(self) -> BfcConfig:
        return self.bfc_config or BfcConfig(mtu=self.mtu)

    def buffer_for(self, tier: str) -> int:
        if tier == "gateway" and self.gateway_buffer_bytes is not None:
            return self.gateway_buffer_bytes
        return self.buffer_bytes


@dataclass
class SchemeSpec:
    """Factories building the switches and hosts of one scheme."""

    name: str
    description: str
    make_switch: Callable[[SchemeEnvironment, str, str], Switch]
    make_host: Callable[[SchemeEnvironment, str, int], Host]
    uses_bfc: bool = False

    def switch_factory(self, env: SchemeEnvironment) -> Callable[[str, str], Switch]:
        return lambda name, tier: self.make_switch(env, name, tier)

    def host_factory(self, env: SchemeEnvironment) -> Callable[[str, int], Host]:
        return lambda name, host_id: self.make_host(env, name, host_id)


# ---------------------------------------------------------------------------
# Switch builders
# ---------------------------------------------------------------------------


def _fifo_switch(
    env: SchemeEnvironment,
    name: str,
    tier: str,
    *,
    ecn: bool,
    int_enabled: bool,
    use_pfc: bool = True,
) -> Switch:
    return Switch(
        env.sim,
        name,
        buffer_bytes=env.buffer_for(tier),
        discipline_factory=lambda iface: FifoDiscipline(),
        pfc=env.pfc() if use_pfc else env.no_pfc(),
        ecn=env.ecn() if ecn else EcnConfig(enabled=False),
        int_enabled=int_enabled,
        seed=env.seed,
    )


def _sfq_switch(env: SchemeEnvironment, name: str, tier: str, *, ecn: bool, infinite: bool) -> Switch:
    name_salt = zlib.crc32(name.encode("utf-8")) & 0xFFFF
    return Switch(
        env.sim,
        name,
        buffer_bytes=0 if infinite else env.buffer_for(tier),
        discipline_factory=lambda iface: SfqDiscipline(
            num_queues=env.num_sfq_queues, quantum=env.mtu + 48, salt=name_salt
        ),
        pfc=env.no_pfc() if infinite else env.pfc(),
        ecn=env.ecn() if ecn else EcnConfig(enabled=False),
        int_enabled=False,
        seed=env.seed,
    )


def _ideal_fq_switch(env: SchemeEnvironment, name: str, tier: str) -> Switch:
    return Switch(
        env.sim,
        name,
        buffer_bytes=0,  # infinite
        discipline_factory=lambda iface: IdealFqDiscipline(quantum=env.mtu + 48),
        pfc=env.no_pfc(),
        ecn=EcnConfig(enabled=False),
        int_enabled=False,
        seed=env.seed,
    )


def _bfc_switch(env: SchemeEnvironment, name: str, tier: str, config: BfcConfig) -> BfcSwitch:
    return BfcSwitch(
        env.sim,
        name,
        buffer_bytes=env.buffer_for(tier),
        bfc_config=config,
        pfc=env.pfc(),
        seed=env.seed,
    )


# ---------------------------------------------------------------------------
# Host builders
# ---------------------------------------------------------------------------


def _host(
    env: SchemeEnvironment,
    name: str,
    host_id: int,
    cc_factory: Callable[[float], CongestionControl],
    *,
    window_cap: Optional[int] = None,
    int_enabled: bool = False,
    mark_first: bool = False,
    nic_class: Optional[type] = None,
    loss_recovery: str = "go-back-n",
) -> Host:
    config = HostConfig(
        mtu=env.mtu,
        window_cap_bytes=window_cap,
        int_enabled=int_enabled,
        mark_first_packet=mark_first,
        rto_ns=env.host_rto_ns(),
        loss_recovery=loss_recovery,
    )
    return Host(
        env.sim,
        name,
        host_id,
        config=config,
        cc_factory=cc_factory,
        flow_registry=env.flow_registry,
        nic_class=nic_class,
    )


def _dcqcn_host(env: SchemeEnvironment, name: str, host_id: int, *, windowed: bool) -> Host:
    cfg = env.dcqcn_config or DcqcnConfig()
    if windowed:
        factory = lambda rate: DcqcnWindowedControl(rate, window_bytes=env.bdp_bytes, config=cfg)
    else:
        factory = lambda rate: DcqcnControl(rate, config=cfg)
    return _host(env, name, host_id, factory)


def _dcqcn_irn_host(env: SchemeEnvironment, name: str, host_id: int) -> Host:
    cfg = env.dcqcn_config or DcqcnConfig()
    factory = lambda rate: DcqcnControl(rate, config=cfg)
    return _host(env, name, host_id, factory, loss_recovery="selective-repeat")


def _hpcc_host(env: SchemeEnvironment, name: str, host_id: int) -> Host:
    cfg = env.hpcc_config or HpccConfig(base_rtt_ns=env.base_rtt_ns)
    factory = lambda rate: HpccControl(rate, config=cfg)
    return _host(env, name, host_id, factory, int_enabled=True)


def _windowed_host(env: SchemeEnvironment, name: str, host_id: int) -> Host:
    factory = lambda rate: WindowedCongestionControl(rate, window_bytes=env.bdp_bytes)
    return _host(env, name, host_id, factory)


def _line_rate_host(env: SchemeEnvironment, name: str, host_id: int) -> Host:
    factory = lambda rate: CongestionControl(rate)
    return _host(env, name, host_id, factory)


def _bfc_host(env: SchemeEnvironment, name: str, host_id: int, config: BfcConfig) -> Host:
    factory = lambda rate: CongestionControl(rate)
    return _host(
        env,
        name,
        host_id,
        factory,
        mark_first=True,
        nic_class=bfc_nic_class(config),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: The scheme registry.  Populated through :func:`register_scheme` /
#: :func:`register_scheme_spec`; the name is kept for backwards compatibility
#: with code that iterated the old hard-coded table.
SCHEMES: Dict[str, SchemeSpec] = {}


class UnknownSchemeError(KeyError):
    """Raised when a scheme name is not in the registry."""


class DuplicateSchemeError(ValueError):
    """Raised when registering a name that is already taken (without override)."""


def register_scheme_spec(spec: SchemeSpec, override: bool = False) -> SchemeSpec:
    """Register a fully-built :class:`SchemeSpec` under its own name."""
    if spec.name in SCHEMES and not override:
        raise DuplicateSchemeError(
            f"scheme {spec.name!r} is already registered; pass override=True "
            "to replace it"
        )
    SCHEMES[spec.name] = spec
    return spec


def register_scheme(
    name: str,
    *,
    description: Optional[str] = None,
    uses_bfc: bool = False,
    override: bool = False,
):
    """Decorator registering a congestion-control scheme.

    The decorated callable is invoked once, with no arguments, and must
    return either a ``(make_switch, make_host)`` factory pair or a complete
    :class:`SchemeSpec`.  Third-party schemes plug in the same way the
    built-in ones are defined — no edits to this module required::

        @register_scheme("MyScheme", description="my experimental scheme")
        def _my_scheme():
            return (
                lambda env, name, tier: ...,   # -> Switch
                lambda env, name, host_id: ...,  # -> Host
            )

    ``override=True`` replaces an existing registration (useful for patching
    a built-in scheme in experiments or tests).

    Note on parallel campaigns: process pools prefer the ``fork`` start
    method, which carries runtime registrations into the workers.  On
    platforms without ``fork`` (Windows), register plug-in schemes at import
    time in a module the workers import, not under ``if __name__ ==
    "__main__"``.
    """

    def decorate(builder):
        built = builder()
        if isinstance(built, SchemeSpec):
            # Copy before renaming: the builder may hand back an existing
            # registration (e.g. aliasing a built-in), which must not be
            # mutated in place.
            spec = replace(
                built,
                name=name,
                description=description if description is not None else built.description,
                uses_bfc=built.uses_bfc or uses_bfc,
            )
        else:
            try:
                make_switch, make_host = built
            except (TypeError, ValueError):
                raise TypeError(
                    f"scheme builder for {name!r} must return a SchemeSpec or "
                    "a (make_switch, make_host) pair"
                ) from None
            doc = (builder.__doc__ or "").strip().splitlines()
            spec = SchemeSpec(
                name=name,
                description=description or (doc[0] if doc else name),
                make_switch=make_switch,
                make_host=make_host,
                uses_bfc=uses_bfc,
            )
        register_scheme_spec(spec, override=override)
        return builder

    return decorate


def unregister_scheme(name: str) -> None:
    """Remove a scheme from the registry (no-op if absent)."""
    SCHEMES.pop(name, None)


def available_schemes() -> List[str]:
    return list(SCHEMES)


def get_scheme(name: str) -> SchemeSpec:
    try:
        return SCHEMES[name]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown scheme {name!r}; available: {', '.join(sorted(SCHEMES))}"
        ) from None


# ---------------------------------------------------------------------------
# Built-in schemes (the lines of the paper's figures)
# ---------------------------------------------------------------------------


@register_scheme(
    "DCQCN", description="ECN-based end-to-end rate control (FIFO switches, PFC)"
)
def _dcqcn_scheme():
    return (
        lambda env, name, tier: _fifo_switch(env, name, tier, ecn=True, int_enabled=False),
        lambda env, name, hid: _dcqcn_host(env, name, hid, windowed=False),
    )


@register_scheme("DCQCN+Win", description="DCQCN with a 1-BDP per-flow window cap")
def _dcqcn_win_scheme():
    return (
        lambda env, name, tier: _fifo_switch(env, name, tier, ecn=True, int_enabled=False),
        lambda env, name, hid: _dcqcn_host(env, name, hid, windowed=True),
    )


@register_scheme(
    "DCQCN+Win+SFQ",
    description="DCQCN+Win with stochastic fair queueing at the switches",
)
def _dcqcn_win_sfq_scheme():
    return (
        lambda env, name, tier: _sfq_switch(env, name, tier, ecn=True, infinite=False),
        lambda env, name, hid: _dcqcn_host(env, name, hid, windowed=True),
    )


@register_scheme(
    "DCQCN+IRN",
    description="DCQCN over a lossy fabric (no PFC) with IRN-style selective-repeat recovery",
)
def _dcqcn_irn_scheme():
    return (
        lambda env, name, tier: _fifo_switch(
            env, name, tier, ecn=True, int_enabled=False, use_pfc=False
        ),
        lambda env, name, hid: _dcqcn_irn_host(env, name, hid),
    )


@register_scheme(
    "HPCC", description="INT-based end-to-end window control (FIFO switches, PFC)"
)
def _hpcc_scheme():
    return (
        lambda env, name, tier: _fifo_switch(env, name, tier, ecn=False, int_enabled=True),
        lambda env, name, hid: _hpcc_host(env, name, hid),
    )


@register_scheme(
    "Ideal-FQ",
    description="Idealised per-flow fair queueing with infinite buffers (unrealisable bound)",
)
def _ideal_fq_scheme():
    return (
        lambda env, name, tier: _ideal_fq_switch(env, name, tier),
        lambda env, name, hid: _windowed_host(env, name, hid),
    )


@register_scheme(
    "SFQ+InfBuffer",
    description="Static SFQ queue assignment with infinite buffers (§4.2 ablation)",
)
def _sfq_infbuffer_scheme():
    return (
        lambda env, name, tier: _sfq_switch(env, name, tier, ecn=False, infinite=True),
        lambda env, name, hid: _windowed_host(env, name, hid),
    )


@register_scheme(
    "PFC", description="Hop-by-hop priority flow control only (no end-to-end CC)"
)
def _pfc_scheme():
    return (
        lambda env, name, tier: _fifo_switch(env, name, tier, ecn=False, int_enabled=False),
        lambda env, name, hid: _line_rate_host(env, name, hid),
    )


#: Overrides keeping the paper-faithful BFC schemes on ideal per-hop state:
#: a BfcConfig carrying estimator knobs (e.g. from a staleness sweep) must
#: never bend the baselines those sweeps are compared against.
_IDEAL_TELEMETRY: Dict[str, object] = {
    "telemetry_staleness_ns": 0,
    "telemetry_sample_period_ns": 0,
    "capacity_weight_reference_bps": None,
}


def _bfc_spec(name: str, description: str, config_overrides: Dict[str, object]) -> SchemeSpec:
    """Build a BFC scheme variant whose :class:`BfcConfig` is overridden."""

    def make_switch(env: SchemeEnvironment, switch_name: str, tier: str) -> Switch:
        config = env.effective_bfc_config().with_overrides(**config_overrides)
        return _bfc_switch(env, switch_name, tier, config)

    def make_host(env: SchemeEnvironment, host_name: str, host_id: int) -> Host:
        config = env.effective_bfc_config().with_overrides(**config_overrides)
        return _bfc_host(env, host_name, host_id, config)

    return SchemeSpec(
        name=name, description=description, make_switch=make_switch, make_host=make_host, uses_bfc=True
    )


def _bfc_est_spec(name: str, description: str, *, capacity_weighted: bool = False) -> SchemeSpec:
    """Build an estimated-queue BFC variant (honours the estimator knobs).

    Unlike :func:`_bfc_spec`, the effective config is a function of the
    environment: ``BFC-Est-Cap``'s capacity weight defaults to the fabric's
    base link rate (weight 1.0 on every homogeneous link; only ports whose
    rate differs — e.g. cross-DC gateway links — see a different threshold).
    """

    def est_config(env: SchemeEnvironment) -> BfcConfig:
        config = env.effective_bfc_config()
        if capacity_weighted:
            if config.capacity_weight_reference_bps is None:
                config = config.with_overrides(
                    capacity_weight_reference_bps=env.link_rate_bps
                )
        elif config.capacity_weight_reference_bps is not None:
            config = config.with_overrides(capacity_weight_reference_bps=None)
        return config

    def make_switch(env: SchemeEnvironment, switch_name: str, tier: str) -> Switch:
        return _bfc_switch(env, switch_name, tier, est_config(env))

    def make_host(env: SchemeEnvironment, host_name: str, host_id: int) -> Host:
        return _bfc_host(env, host_name, host_id, est_config(env))

    return SchemeSpec(
        name=name, description=description, make_switch=make_switch, make_host=make_host, uses_bfc=True
    )


for _name, _description, _overrides in (
    (
        "BFC",
        "Backpressure flow control: per-hop per-flow pauses, dynamic queue assignment",
        {},
    ),
    (
        "BFC-VFID",
        "Straw proposal: static hash assignment of flows to physical queues",
        {"static_queue_assignment": True},
    ),
    (
        "BFC-HighPriorityQ",
        "BFC without the high-priority queue for single-packet flows",
        {"use_high_priority_queue": False},
    ),
    (
        "BFC-BufferOpt",
        "BFC without the two-resumes-per-RTT limit",
        {"limit_resume_rate": False},
    ),
):
    register_scheme_spec(_bfc_spec(_name, _description, dict(_overrides, **_IDEAL_TELEMETRY)))
del _name, _description, _overrides

register_scheme_spec(
    _bfc_est_spec(
        "BFC-Est",
        "BFC whose pause decisions use delayed/sampled queue telemetry "
        "(telemetry_staleness_ns / telemetry_sample_period_ns; exact at 0/0)",
    )
)
register_scheme_spec(
    _bfc_est_spec(
        "BFC-Est-Cap",
        "BFC-Est with capacity-weighted pause thresholds "
        "(threshold scaled by link rate relative to the fabric base rate)",
        capacity_weighted=True,
    )
)
