"""Experiment runner: build a topology, attach a scheme, replay a trace, measure.

This is the low-level single-run primitive.  A call to :func:`run_experiment`
performs one simulation run and returns an :class:`ExperimentResult` with the
flow records, buffer samples, pause-time shares and scheme-specific
statistics needed to regenerate the paper's figures.

Grids of runs — several schemes, parameter sweeps, repeats, parallel
execution — are the job of :class:`repro.campaign.Campaign`, which drives
this runner one trial at a time.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import BfcConfig
from repro.core.switchlogic import BfcSwitch
from repro.congestion.dcqcn import DcqcnConfig
from repro.congestion.hpcc import HpccConfig
from repro.results.sinks import InMemorySink, ResultSink, SpillSink
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.stats import (
    BufferSampler,
    FlowRecord,
    FlowStats,
    QueueSampler,
)
from repro.topology.clos import ClosParams, build_leaf_spine
from repro.topology.crossdc import CrossDcParams, build_cross_dc
from repro.topology.topology import Topology
from repro.workloads.flowgraph import FlowGraph, FlowGraphLauncher
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.incast import IncastSpec, generate_incast_series, incast_period_for_load
from repro.workloads.openloop import OpenLoopSource, OpenLoopSpec
from repro.workloads.trace import FlowTrace

from .schemes import SchemeEnvironment, get_scheme


@dataclass
class TrafficSpec:
    """Describes the traffic of one experiment.

    Any combination of a background workload, a periodic incast process and an
    explicit flow list can be supplied; they are merged into a single trace.

    ``open_loop`` is different in kind: it is *not* materialized into the
    trace.  An :class:`~repro.workloads.openloop.OpenLoopSpec` is driven
    lazily at run time (one arrival event per flow), its records are
    harvested the moment each flow completes, and — by default — the flow's
    simulation state is released right after, so memory stays independent of
    how many flows the process offers.  It composes with the trace-based
    kinds (the trace part is harvested at the end of the run as always) but
    not with sharding (``shards > 1`` rejects it).

    ``flow_graph`` holds dependency-driven workloads: any spec (or sequence
    of specs) exposing ``generate(host_ids, seed) -> FlowGraph``, e.g.
    :class:`~repro.workloads.collectives.CollectiveSpec` or
    :class:`~repro.workloads.rpc.RpcFanoutSpec`.  Graph flows *are*
    materialized into the trace (so ``flows_offered`` and the final harvest
    account for them), but dependents launch at run time when their
    prerequisites complete; the graph is generated *after* the trace-based
    kinds so flow-id allocation stays deterministic.  Flow graphs compose
    with sharding and with ``open_loop``.
    """

    workload: Optional[WorkloadSpec] = None
    incast_load: Optional[float] = None
    incast_fan_in: int = 100
    incast_aggregate_bytes: int = 20_000_000
    incast_period_ns: Optional[int] = None
    incast_receiver: Optional[int] = None
    explicit_flows: Optional[FlowTrace] = None
    open_loop: Optional[OpenLoopSpec] = None
    flow_graph: Optional[object] = None
    seed: int = 1

    def build(
        self,
        host_ids: Sequence[int],
        host_link_rate_bps: float,
        duration_ns: int,
        src_hosts: Optional[Sequence[int]] = None,
        dst_hosts: Optional[Sequence[int]] = None,
    ) -> FlowTrace:
        trace = FlowTrace([])
        if self.workload is not None:
            trace = trace.merge(
                generate_workload(
                    self.workload,
                    host_ids,
                    host_link_rate_bps,
                    seed=self.seed,
                    src_hosts=src_hosts,
                    dst_hosts=dst_hosts,
                )
            )
        if self.incast_load is not None or self.incast_period_ns is not None:
            period = self.incast_period_ns
            if period is None:
                period = incast_period_for_load(
                    self.incast_load,
                    self.incast_aggregate_bytes,
                    len(host_ids),
                    host_link_rate_bps,
                )
            spec = IncastSpec(
                fan_in=self.incast_fan_in,
                aggregate_bytes=self.incast_aggregate_bytes,
                period_ns=period,
                duration_ns=duration_ns,
                start_ns=period // 2,
            )
            trace = trace.merge(
                generate_incast_series(
                    spec, host_ids, seed=self.seed + 1, receiver=self.incast_receiver
                )
            )
        if self.explicit_flows is not None:
            trace = trace.merge(self.explicit_flows)
        return trace

    def build_graph(self, host_ids: Sequence[int]) -> Optional[FlowGraph]:
        """Generate the dependency flow graph, if any (after :meth:`build`).

        Must be called *after* :meth:`build` so graph flow ids come after the
        trace-based ones — this keeps flow-id allocation deterministic across
        single-process, parallel and sharded runs.
        """
        if self.flow_graph is None:
            return None
        specs = (
            self.flow_graph
            if isinstance(self.flow_graph, (list, tuple))
            else (self.flow_graph,)
        )
        graph = FlowGraph()
        for offset, spec in enumerate(specs):
            graph = graph.merge(spec.generate(host_ids, seed=self.seed + 2 + offset))
        return graph.validate()


@dataclass
class ExperimentConfig:
    """One simulation run: topology + scheme + traffic + measurement knobs.

    The config (plus ``seed``) fully determines the simulation: the same
    config always produces the same :class:`ExperimentResult`, which is what
    makes campaign resume, parallel execution and sharding
    measurement-invisible (see ``docs/determinism.md``).

    Field groups:

    * **Identity** — ``name`` (labels records and result maps), ``scheme``
      (a registered scheme name, see ``repro.experiments.schemes``),
      ``seed`` (drives every RNG: trace generation and component state).
    * **Topology** — ``clos`` sizes the leaf-spine fabric; ``cross_dc``
      (when set) builds two such fabrics joined by gateways, with
      ``gateway_buffer_bytes`` overriding the gateways' shared buffer.
    * **Traffic** — ``traffic`` (workload + incast + explicit flows),
      ``duration_ns`` of offered traffic, plus ``drain_ns`` of drain time
      (defaults to ``duration_ns // 2``); ``mtu`` applies fabric-wide.
    * **Scheme knobs** — ``buffer_bytes`` (shared switch buffer),
      ``pfc_enabled``, and the per-scheme ``bfc_config`` / ``dcqcn_config``
      / ``hpcc_config`` overrides (``None`` = scheme defaults).
    * **Measurement** — ``sample_interval_ns`` (``None`` = ~200 samples per
      run), ``max_events`` as a safety cap (rejected under sharding);
      ``results_dir`` switches the harvest from the default in-memory
      collectors to the streaming spill pipeline (:mod:`repro.results`):
      records stream to ``<results_dir>/<name>-s<seed>/`` and the returned
      result holds fixed-size aggregates plus a ``results_ref`` pointing at
      the artifacts.  The sink is a pure observer — it never changes what
      is simulated.
    * **Execution** — ``shards``/``shard_strategy``: ``shards > 1`` runs
      this one experiment space-parallel across OS processes with records
      identical to the single-process run; ``shard_sync`` selects how the
      shards synchronize (``conservative`` windows, ``speculative``
      time-warp with rollback, or ``adaptive``).  In a campaign, prefer
      ``Campaign.run(cores=...)`` so sharded trials are scheduled onto the
      machine instead of oversubscribing it (``docs/campaigns.md``).
    """

    name: str
    scheme: str
    clos: ClosParams
    traffic: TrafficSpec
    buffer_bytes: int
    duration_ns: int
    drain_ns: int = 0
    seed: int = 1
    mtu: int = 1000
    sample_interval_ns: Optional[int] = None
    pfc_enabled: bool = True
    bfc_config: Optional[BfcConfig] = None
    dcqcn_config: Optional[DcqcnConfig] = None
    hpcc_config: Optional[HpccConfig] = None
    cross_dc: Optional[CrossDcParams] = None
    gateway_buffer_bytes: Optional[int] = None
    max_events: Optional[int] = None
    #: Spill results to disk under this directory instead of holding them in
    #: RAM (``None`` = in-memory harvest, byte-identical to the pre-spill
    #: pipeline).  See ``docs/results.md``.
    results_dir: Optional[str] = None
    #: Space-parallel sharding: >1 runs this one experiment across several
    #: OS processes via :mod:`repro.shard` (one topology, conservatively
    #: synchronized time windows).  1 is the ordinary single-process run.
    shards: int = 1
    shard_strategy: str = "auto"
    #: How the shard processes synchronize simulated time:
    #: ``"conservative"`` — lock-step windows of the smallest cut-link delay
    #: (never executes an event out of order); ``"speculative"`` — optimistic
    #: time-warp execution with checkpoint/rollback (identical records,
    #: fewer synchronization rounds on short-window partitions);
    #: ``"adaptive"`` — picks per partition based on the window width.
    #: See :mod:`repro.shard.speculative` and ``docs/determinism.md``.
    shard_sync: str = "conservative"

    def total_duration_ns(self) -> int:
        drain = self.drain_ns if self.drain_ns > 0 else self.duration_ns // 2
        return self.duration_ns + drain

    def effective_sample_interval_ns(self) -> int:
        if self.sample_interval_ns is not None:
            return self.sample_interval_ns
        return max(1_000, self.duration_ns // 200)


@dataclass
class ExperimentResult:
    """Everything measured in one run.

    ``flow_stats`` / ``buffer_sampler`` / ``queue_sampler`` are the in-memory
    collectors for the default harvest, or their fixed-size streaming
    stand-ins (:class:`repro.results.StreamingFlowStats` etc.) when the run
    spilled to disk — both satisfy the same metric API, and the convenience
    methods below only use that shared surface.  ``results_ref`` names the
    spilled artifact directory when one exists.
    """

    config: ExperimentConfig
    scheme: str
    flow_stats: FlowStats
    buffer_sampler: BufferSampler
    queue_sampler: QueueSampler
    pause_fractions: Dict[str, List[float]]
    utilization_per_receiver: Dict[int, float]
    dropped_packets: int
    switch_counters: Dict[str, int]
    collision_fraction: Optional[float]
    vfid_stats: Dict[str, int]
    flows_offered: int
    events_processed: int
    wall_seconds: float
    #: Filled by the sharded runtime only: partition/cut/window/barrier
    #: statistics of the run (None for single-process runs).
    shard_stats: Optional[Dict[str, object]] = None
    #: Spilled-artifact directory (``repro.results`` format) when the run
    #: streamed its records to disk; ``None`` for the in-memory harvest.
    results_ref: Optional[str] = None
    #: NIC-level counters summed across all hosts (flows_started,
    #: selective_retransmissions, out_of_order_packets, ...).
    host_counters: Dict[str, int] = field(default_factory=dict)

    # -- convenience ------------------------------------------------------------

    def completion_rate(self) -> float:
        return self.flow_stats.completion_rate()

    def p99_slowdown(self, include_incast: bool = False) -> float:
        return self.flow_stats.slowdown_percentile(99.0, include_incast)

    def mean_slowdown(self, include_incast: bool = False) -> float:
        return self.flow_stats.mean_slowdown(include_incast)

    def slowdown_series(self, quantile: float = 99.0, bins=None):
        from repro.analysis.fct import slowdown_series

        return slowdown_series(
            self.flow_stats.iter_records(), quantile=quantile, bins=bins
        )

    def mean_utilization(self, active_only: bool = True) -> float:
        values = [
            u
            for u in self.utilization_per_receiver.values()
            if not active_only or u > 1e-6
        ]
        return sum(values) / len(values) if values else 0.0

    def pause_fraction_by_class(self) -> Dict[str, float]:
        return {
            link_class: (sum(values) / len(values) if values else 0.0)
            for link_class, values in self.pause_fractions.items()
        }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


def _build_environment(config: ExperimentConfig, sim: Simulator) -> SchemeEnvironment:
    clos = config.clos
    base_rtt = clos.base_rtt_ns()
    return SchemeEnvironment(
        sim=sim,
        link_rate_bps=clos.link_rate_bps,
        link_delay_ns=clos.link_delay_ns,
        base_rtt_ns=base_rtt,
        bdp_bytes=clos.bdp_bytes(),
        buffer_bytes=config.buffer_bytes,
        gateway_buffer_bytes=config.gateway_buffer_bytes,
        mtu=config.mtu,
        pfc_enabled=config.pfc_enabled,
        seed=config.seed,
        bfc_config=config.bfc_config or BfcConfig(mtu=config.mtu),
        dcqcn_config=config.dcqcn_config,
        hpcc_config=config.hpcc_config,
    )


def _build_topology(config: ExperimentConfig, env: SchemeEnvironment) -> Topology:
    scheme = get_scheme(config.scheme)
    switch_factory = scheme.switch_factory(env)
    host_factory = scheme.host_factory(env)
    if config.cross_dc is not None:
        topo = build_cross_dc(env.sim, config.cross_dc, switch_factory, host_factory)
    else:
        topo = build_leaf_spine(env.sim, config.clos, switch_factory, host_factory)
    # Hosts and the environment share one flow registry so receivers can mark
    # flows complete.
    for host in topo.hosts.values():
        host.flow_registry = env.flow_registry
    topo.flow_registry = env.flow_registry
    return topo


def _schedule_sampling(
    sim: Simulator,
    topo: Topology,
    interval_ns: int,
    until_ns: int,
    sink: ResultSink,
) -> None:
    # NOTE: the sharded runtime's _ShardSampler mirrors this per-tick loop;
    # keep the two in sync (same switch order, same record calls per tick).
    def sample() -> None:
        for switch in topo.all_switches():
            sink.on_buffer_sample(switch.name, switch.buffer_occupancy())
            if isinstance(switch, BfcSwitch):
                occupied = 0
                for discipline in switch.bfc_disciplines():
                    occupied += discipline.occupied_physical_queues()
                    for backlog in discipline.per_queue_bytes():
                        if backlog > 0:
                            sink.on_queue_sample(backlog)
                sink.on_occupied_sample(occupied)
        if sim.now + interval_ns <= until_ns:
            sim.schedule(interval_ns, sample)

    sim.schedule(interval_ns, sample)


class FlowRecorder:
    """Turns finished (or unfinished) flows into :class:`FlowRecord` entries.

    The one-way-delay lookup is memoized per ``(src, dst)`` pair — the
    streaming path builds one record per completion event, and recomputing
    the path delay a million times would dominate the harvest cost.
    """

    def __init__(self, topo: Topology, mtu: int) -> None:
        self._topo = topo
        self._mtu = mtu
        self._line_rate = topo.host_link_rate_bps
        self._delay_cache: Dict[Tuple[int, int], int] = {}

    def _delay_ns(self, src: int, dst: int) -> int:
        key = (src, dst)
        delay = self._delay_cache.get(key)
        if delay is None:
            topo = self._topo
            try:
                delay = topo.one_way_delay_ns(src, dst)
            except (ValueError, RuntimeError, KeyError):
                delay = 2 * topo.link_delay_ns
            self._delay_cache[key] = delay
        return delay

    def record(self, flow: Flow) -> FlowRecord:
        return FlowRecord(
            flow_id=flow.flow_id,
            src=flow.src,
            dst=flow.dst,
            size=flow.size,
            start_ns=flow.start_ns,
            finish_ns=flow.finish_ns,
            slowdown=flow.slowdown(
                self._line_rate, self._delay_ns(flow.src, flow.dst), self._mtu
            ),
            is_incast=flow.is_incast,
            tag=flow.tag,
            retransmissions=flow.retransmitted_packets,
        )


def _harvest_flow_records(
    topo: Topology, flows: Sequence[Flow], mtu: int
) -> FlowStats:
    stats = FlowStats()
    recorder = FlowRecorder(topo, mtu)
    for flow in flows:
        stats.add(recorder.record(flow))
    return stats


def _harvest_pause_fractions(topo: Topology, now_ns: int) -> Dict[str, List[float]]:
    result: Dict[str, List[float]] = {}
    for switch in topo.all_switches():
        for iface in switch.interfaces:
            fraction = iface.tx.pfc_meter.paused_fraction(now_ns)
            result.setdefault(iface.link_class, []).append(fraction)
    for host in topo.hosts.values():
        for iface in host.interfaces:
            fraction = iface.tx.pfc_meter.paused_fraction(now_ns)
            result.setdefault(iface.link_class, []).append(fraction)
    return result


def _harvest_utilization(topo: Topology, duration_ns: int) -> Dict[int, float]:
    """Utilization of each receiver's downlink (ToR -> host)."""
    result: Dict[int, float] = {}
    for host_id, host in topo.hosts.items():
        tor = topo.tor_switch_of(host_id)
        iface = tor.interface_to(host)
        if iface is None:
            continue
        result[host_id] = iface.tx.utilization(duration_ns)
    return result


def _collect_bfc_stats(switches) -> Optional[Tuple[int, int, Dict[str, int]]]:
    """Raw BFC statistics over an iterable of switches, or ``None``.

    Returns ``(assignments, collisions, vfid_stats)`` so callers can combine
    several partial collections before dividing (the sharded runtime sums
    per-shard numerators and denominators; :func:`_harvest_bfc_stats` divides
    directly).
    """
    bfc_switches = [s for s in switches if isinstance(s, BfcSwitch)]
    if not bfc_switches:
        return None
    assignments = 0
    collisions = 0
    vfid_stats = {
        "vfid_collisions": 0,
        "bucket_overflows": 0,
        "cache_overflows": 0,
        "table_inserts": 0,
        "max_active_entries": 0,
        "pauses": 0,
        "resumes": 0,
        "bloom_frames_sent": 0,
    }
    for switch in bfc_switches:
        for discipline in switch.bfc_disciplines():
            assignments += discipline.pool.stats.assignments
            collisions += discipline.pool.stats.collisions
        table = switch.agent.flow_table.stats
        vfid_stats["vfid_collisions"] += table.vfid_collisions
        vfid_stats["bucket_overflows"] += table.bucket_overflows
        vfid_stats["cache_overflows"] += table.cache_overflows
        vfid_stats["table_inserts"] += table.inserts
        vfid_stats["max_active_entries"] = max(
            vfid_stats["max_active_entries"], table.max_active_entries
        )
        vfid_stats["pauses"] += switch.agent.counters.get("pauses")
        vfid_stats["resumes"] += switch.agent.counters.get("resumes")
        vfid_stats["bloom_frames_sent"] += switch.agent.counters.get("bloom_frames_sent")
    return assignments, collisions, vfid_stats


def _harvest_bfc_stats(topo: Topology) -> Tuple[Optional[float], Dict[str, int]]:
    collected = _collect_bfc_stats(topo.all_switches())
    if collected is None:
        return None, {}
    assignments, collisions, vfid_stats = collected
    collision_fraction = collisions / assignments if assignments else 0.0
    return collision_fraction, vfid_stats


def _aggregate_switch_counters(topo: Topology, switches=None) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for switch in topo.all_switches() if switches is None else switches:
        for name, value in switch.counters.as_dict().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _rollback_horizon_trains(topo: Topology) -> None:
    """Unwind NIC packet trains committed past the final run horizon.

    Per-packet operation never builds a packet whose serialization starts
    after ``until`` (no event fires there), so harvested counters/meters
    must not include such commitments — results stay byte-identical to a
    ``nic_train_packets=1`` run.  Shard workers do the same before their
    harvest (:func:`repro.shard.coordinator._harvest_shard`).
    """
    for host in topo.hosts.values():
        port = host._uplink_port
        if port is not None and port._train:
            port.rollback_horizon()


def _aggregate_host_counters(topo: Topology, hosts=None) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for host in topo.hosts.values() if hosts is None else hosts:
        for name, value in host.counters.as_dict().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def build_simulation(
    config: ExperimentConfig,
) -> Tuple[Simulator, SchemeEnvironment, Topology, FlowTrace]:
    """Deterministically build the full simulation state of one experiment.

    Everything up to (but excluding) starting the flows: the simulator, the
    scheme environment, the wired topology and the generated flow trace.
    This is the shared front half of :func:`run_experiment`; the sharded
    runtime (:mod:`repro.shard`) calls it in every worker process so each
    shard reproduces the exact same component RNG states and flow ids as a
    single-process run.
    """
    reset_flow_ids()
    sim = Simulator(seed=config.seed)
    env = _build_environment(config, sim)
    topo = _build_topology(config, env)
    trace = config.traffic.build(
        topo.host_ids(), topo.host_link_rate_bps, config.duration_ns
    )
    graph = config.traffic.build_graph(topo.host_ids())
    if graph is not None:
        # Graph flows are part of the trace (accounting, harvest); the
        # launcher schedules the dependency-gated ones as prerequisites
        # complete.  Installing here covers the single-process runner and
        # every shard world alike (both start flows via topo.start_flow,
        # which registers-but-does-not-schedule flows with depends_on).
        trace = trace.merge(graph.trace())
        FlowGraphLauncher(graph, topo).install()
    return sim, env, topo, trace


def build_topology_only(config: ExperimentConfig) -> Topology:
    """Build just the wired topology of one experiment — no traffic trace.

    For cheap topology/partition inspection (the ``repro topology`` CLI):
    paper-scale trace generation costs far more than the fabric build.
    """
    sim = Simulator(seed=config.seed)
    env = _build_environment(config, sim)
    return _build_topology(config, env)


def make_sink(config: ExperimentConfig) -> ResultSink:
    """The sink ``run_experiment`` uses when none is passed explicitly.

    ``config.results_dir`` set: a :class:`SpillSink` writing to
    ``<results_dir>/<name>-s<seed>/``; otherwise the in-memory default.
    """
    if config.results_dir is None:
        return InMemorySink()
    safe_name = (
        config.name.replace("/", "-").replace(" ", "_").replace("\\", "-") or "run"
    )
    run_dir = os.path.join(config.results_dir, f"{safe_name}-s{config.seed}")
    return SpillSink(run_dir, seed=config.seed)


def _schedule_tombstone_reaper(
    sim: Simulator, topo: Topology, horizon_ns: int, until_ns: int
) -> None:
    """Periodically delete receiver-state tombstones older than one horizon.

    Two-generation scheme: a sweep first deletes the tombstones it marked on
    the previous sweep, then marks the current ones.  A tombstone therefore
    lives between one and two horizons — long enough for any straggling
    duplicate of a completed flow to still hit the duplicate-ACK path — and
    tombstone memory is bounded by the completion rate times the horizon,
    not by the total flow count.
    """
    marked: Dict[int, Set[int]] = {}

    def reap() -> None:
        for host_id, host in topo.hosts.items():
            receivers = host.receivers
            previous = marked.get(host_id)
            if previous:
                for flow_id in previous:
                    if type(receivers.get(flow_id)) is int:
                        del receivers[flow_id]
            marked[host_id] = {
                flow_id
                for flow_id, state in receivers.items()
                if type(state) is int
            }
        if sim.now + horizon_ns <= until_ns:
            sim.schedule(horizon_ns, reap)

    sim.schedule(horizon_ns, reap)


def run_experiment(
    config: ExperimentConfig,
    slot_budget: Optional[int] = None,
    sink: Optional[ResultSink] = None,
) -> ExperimentResult:
    """Run one experiment end to end and return its measurements.

    With ``config.shards > 1`` the run is delegated to the sharded runtime,
    which executes the same topology across several OS processes and merges
    the shard measurements back into one :class:`ExperimentResult`.

    ``slot_budget`` is the CPU-slot reservation handed down by the campaign
    scheduling layer (:mod:`repro.campaign.scheduling`): the number of
    simulator processes this run may assume it owns.  It is purely
    advisory — it never changes what is simulated or measured — but a
    sharded run's coordinator records it (and whether the shard count
    oversubscribes it) in ``ExperimentResult.shard_stats``, so plans and
    reality can be audited against each other.

    ``sink`` overrides where measurement records go (default: chosen by
    :func:`make_sink` from ``config.results_dir``).  The sink is a pure
    observer; it never changes what is simulated.
    """
    if slot_budget is not None and slot_budget < 1:
        raise ValueError(f"slot_budget must be >= 1, got {slot_budget}")
    if config.shards > 1:
        from repro.shard.coordinator import run_sharded_experiment

        return run_sharded_experiment(config, slot_budget=slot_budget, sink=sink)
    started = time.monotonic()
    sim, env, topo, trace = build_simulation(config)
    topo.start_flows(trace)

    if sink is None:
        sink = make_sink(config)
    recorder = FlowRecorder(topo, config.mtu)

    # Open-loop traffic: arrivals are generated lazily by simulator events,
    # records are harvested (and simulation state released) per completion.
    open_spec = config.traffic.open_loop
    source: Optional[OpenLoopSource] = None
    if open_spec is not None:
        source = OpenLoopSource(open_spec, sim, topo, seed=config.seed)
        release = open_spec.release_flow_state
        flow_registry = topo.flow_registry

        def _on_complete(flow: Flow, now_ns: int) -> None:
            if not source.notify_complete(flow):
                return  # trace-based flow: harvested at the end, as always
            sink.on_flow_record(recorder.record(flow))
            if release:
                topo.hosts[flow.dst].release_receiver_state(flow.flow_id)
                flow_registry.pop(flow.flow_id, None)

        for host in topo.hosts.values():
            previous = host.on_flow_complete
            if previous is None:
                host.on_flow_complete = _on_complete
            else:
                # Chain behind an installed FlowGraphLauncher hook.  A plain
                # closure is fine here: open-loop traffic is rejected under
                # sharding, so this hook is never snapshotted.
                def _chained(flow: Flow, now_ns: int, _previous=previous) -> None:
                    _previous(flow, now_ns)
                    _on_complete(flow, now_ns)

                host.on_flow_complete = _chained
        source.start()
        if release:
            horizon_ns = max(4 * env.host_rto_ns(), 8 * env.base_rtt_ns)
            _schedule_tombstone_reaper(
                sim, topo, horizon_ns, config.total_duration_ns()
            )

    _schedule_sampling(
        sim,
        topo,
        config.effective_sample_interval_ns(),
        config.total_duration_ns(),
        sink,
    )

    sim.run(until=config.total_duration_ns(), max_events=config.max_events)
    _rollback_horizon_trains(topo)

    for flow in trace:
        sink.on_flow_record(recorder.record(flow))
    if source is not None:
        for flow in source.unfinished_flows():
            sink.on_flow_record(recorder.record(flow))

    pause_fractions = _harvest_pause_fractions(topo, sim.now)
    utilization = _harvest_utilization(topo, config.duration_ns)
    collision_fraction, vfid_stats = _harvest_bfc_stats(topo)
    counters = _aggregate_switch_counters(topo)
    host_counters = _aggregate_host_counters(topo)
    flows_offered = len(trace) + (source.flows_started if source is not None else 0)
    events_processed = sim.events_processed

    extras = {
        "name": config.name,
        "scheme": config.scheme,
        "seed": config.seed,
        "flows_offered": flows_offered,
        "events_processed": events_processed,
        "dropped_packets": topo.total_dropped_packets(),
        "switch_counters": dict(sorted(counters.items())),
        "host_counters": dict(sorted(host_counters.items())),
        "collision_fraction": collision_fraction,
        "vfid_stats": dict(sorted(vfid_stats.items())),
        "utilization_per_receiver": {
            str(host_id): value for host_id, value in sorted(utilization.items())
        },
        "pause_fractions": {
            cls: values for cls, values in sorted(pause_fractions.items())
        },
    }
    flow_stats, buffer_sampler, queue_sampler = sink.finalize(extras)

    return ExperimentResult(
        config=config,
        scheme=config.scheme,
        flow_stats=flow_stats,
        buffer_sampler=buffer_sampler,
        queue_sampler=queue_sampler,
        pause_fractions=pause_fractions,
        utilization_per_receiver=utilization,
        dropped_packets=topo.total_dropped_packets(),
        switch_counters=counters,
        collision_fraction=collision_fraction,
        vfid_stats=vfid_stats,
        flows_offered=flows_offered,
        events_processed=events_processed,
        wall_seconds=time.monotonic() - started,
        results_ref=sink.results_ref,
        host_counters=host_counters,
    )


def run_schemes(
    base_config: ExperimentConfig, schemes: Sequence[str]
) -> Dict[str, ExperimentResult]:
    """Run the same experiment once per scheme (one line per scheme in a figure).

    .. deprecated::
        Use :class:`repro.campaign.Campaign` instead, which adds sweeps,
        repeats, parallel execution and persistent results::

            Campaign.from_configs(name, configs).run(workers=4)

    This shim keeps the original call shape and return type.
    """
    warnings.warn(
        "run_schemes() is deprecated; build a repro.campaign.Campaign instead "
        "(Campaign.from_configs(...).run())",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.campaign import Campaign

    configs = {
        scheme: replace(base_config, scheme=scheme, name=f"{base_config.name}/{scheme}")
        for scheme in schemes
    }
    result_set = Campaign.from_configs(base_config.name, configs).run()
    return result_set.experiment_results_by_label()
