"""Experiment runner: build a topology, attach a scheme, replay a trace, measure.

This is the low-level single-run primitive.  A call to :func:`run_experiment`
performs one simulation run and returns an :class:`ExperimentResult` with the
flow records, buffer samples, pause-time shares and scheme-specific
statistics needed to regenerate the paper's figures.

Grids of runs — several schemes, parameter sweeps, repeats, parallel
execution — are the job of :class:`repro.campaign.Campaign`, which drives
this runner one trial at a time.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BfcConfig
from repro.core.switchlogic import BfcSwitch
from repro.congestion.dcqcn import DcqcnConfig
from repro.congestion.hpcc import HpccConfig
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, reset_flow_ids
from repro.sim.stats import (
    BufferSampler,
    FlowRecord,
    FlowStats,
    QueueSampler,
)
from repro.topology.clos import ClosParams, build_leaf_spine
from repro.topology.crossdc import CrossDcParams, build_cross_dc
from repro.topology.topology import Topology
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.incast import IncastSpec, generate_incast_series, incast_period_for_load
from repro.workloads.trace import FlowTrace

from .schemes import SchemeEnvironment, get_scheme


@dataclass
class TrafficSpec:
    """Describes the traffic of one experiment.

    Any combination of a background workload, a periodic incast process and an
    explicit flow list can be supplied; they are merged into a single trace.
    """

    workload: Optional[WorkloadSpec] = None
    incast_load: Optional[float] = None
    incast_fan_in: int = 100
    incast_aggregate_bytes: int = 20_000_000
    incast_period_ns: Optional[int] = None
    incast_receiver: Optional[int] = None
    explicit_flows: Optional[FlowTrace] = None
    seed: int = 1

    def build(
        self,
        host_ids: Sequence[int],
        host_link_rate_bps: float,
        duration_ns: int,
        src_hosts: Optional[Sequence[int]] = None,
        dst_hosts: Optional[Sequence[int]] = None,
    ) -> FlowTrace:
        trace = FlowTrace([])
        if self.workload is not None:
            trace = trace.merge(
                generate_workload(
                    self.workload,
                    host_ids,
                    host_link_rate_bps,
                    seed=self.seed,
                    src_hosts=src_hosts,
                    dst_hosts=dst_hosts,
                )
            )
        if self.incast_load is not None or self.incast_period_ns is not None:
            period = self.incast_period_ns
            if period is None:
                period = incast_period_for_load(
                    self.incast_load,
                    self.incast_aggregate_bytes,
                    len(host_ids),
                    host_link_rate_bps,
                )
            spec = IncastSpec(
                fan_in=self.incast_fan_in,
                aggregate_bytes=self.incast_aggregate_bytes,
                period_ns=period,
                duration_ns=duration_ns,
                start_ns=period // 2,
            )
            trace = trace.merge(
                generate_incast_series(
                    spec, host_ids, seed=self.seed + 1, receiver=self.incast_receiver
                )
            )
        if self.explicit_flows is not None:
            trace = trace.merge(self.explicit_flows)
        return trace


@dataclass
class ExperimentConfig:
    """One simulation run: topology + scheme + traffic + measurement knobs.

    The config (plus ``seed``) fully determines the simulation: the same
    config always produces the same :class:`ExperimentResult`, which is what
    makes campaign resume, parallel execution and sharding
    measurement-invisible (see ``docs/determinism.md``).

    Field groups:

    * **Identity** — ``name`` (labels records and result maps), ``scheme``
      (a registered scheme name, see ``repro.experiments.schemes``),
      ``seed`` (drives every RNG: trace generation and component state).
    * **Topology** — ``clos`` sizes the leaf-spine fabric; ``cross_dc``
      (when set) builds two such fabrics joined by gateways, with
      ``gateway_buffer_bytes`` overriding the gateways' shared buffer.
    * **Traffic** — ``traffic`` (workload + incast + explicit flows),
      ``duration_ns`` of offered traffic, plus ``drain_ns`` of drain time
      (defaults to ``duration_ns // 2``); ``mtu`` applies fabric-wide.
    * **Scheme knobs** — ``buffer_bytes`` (shared switch buffer),
      ``pfc_enabled``, and the per-scheme ``bfc_config`` / ``dcqcn_config``
      / ``hpcc_config`` overrides (``None`` = scheme defaults).
    * **Measurement** — ``sample_interval_ns`` (``None`` = ~200 samples per
      run), ``max_events`` as a safety cap (rejected under sharding).
    * **Execution** — ``shards``/``shard_strategy``: ``shards > 1`` runs
      this one experiment space-parallel across OS processes with records
      identical to the single-process run.  In a campaign, prefer
      ``Campaign.run(cores=...)`` so sharded trials are scheduled onto the
      machine instead of oversubscribing it (``docs/campaigns.md``).
    """

    name: str
    scheme: str
    clos: ClosParams
    traffic: TrafficSpec
    buffer_bytes: int
    duration_ns: int
    drain_ns: int = 0
    seed: int = 1
    mtu: int = 1000
    sample_interval_ns: Optional[int] = None
    pfc_enabled: bool = True
    bfc_config: Optional[BfcConfig] = None
    dcqcn_config: Optional[DcqcnConfig] = None
    hpcc_config: Optional[HpccConfig] = None
    cross_dc: Optional[CrossDcParams] = None
    gateway_buffer_bytes: Optional[int] = None
    max_events: Optional[int] = None
    #: Space-parallel sharding: >1 runs this one experiment across several
    #: OS processes via :mod:`repro.shard` (one topology, conservatively
    #: synchronized time windows).  1 is the ordinary single-process run.
    shards: int = 1
    shard_strategy: str = "auto"

    def total_duration_ns(self) -> int:
        drain = self.drain_ns if self.drain_ns > 0 else self.duration_ns // 2
        return self.duration_ns + drain

    def effective_sample_interval_ns(self) -> int:
        if self.sample_interval_ns is not None:
            return self.sample_interval_ns
        return max(1_000, self.duration_ns // 200)


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    scheme: str
    flow_stats: FlowStats
    buffer_sampler: BufferSampler
    queue_sampler: QueueSampler
    pause_fractions: Dict[str, List[float]]
    utilization_per_receiver: Dict[int, float]
    dropped_packets: int
    switch_counters: Dict[str, int]
    collision_fraction: Optional[float]
    vfid_stats: Dict[str, int]
    flows_offered: int
    events_processed: int
    wall_seconds: float
    #: Filled by the sharded runtime only: partition/cut/window/barrier
    #: statistics of the run (None for single-process runs).
    shard_stats: Optional[Dict[str, object]] = None

    # -- convenience ------------------------------------------------------------

    def completion_rate(self) -> float:
        return self.flow_stats.completion_rate()

    def p99_slowdown(self, include_incast: bool = False) -> float:
        from repro.sim.stats import percentile

        values = self.flow_stats.slowdowns(include_incast)
        return percentile(values, 99) if values else 0.0

    def mean_slowdown(self, include_incast: bool = False) -> float:
        values = self.flow_stats.slowdowns(include_incast)
        return sum(values) / len(values) if values else 0.0

    def slowdown_series(self, quantile: float = 99.0, bins=None):
        from repro.analysis.fct import slowdown_series

        return slowdown_series(self.flow_stats.records, quantile=quantile, bins=bins)

    def mean_utilization(self, active_only: bool = True) -> float:
        values = [
            u
            for u in self.utilization_per_receiver.values()
            if not active_only or u > 1e-6
        ]
        return sum(values) / len(values) if values else 0.0

    def pause_fraction_by_class(self) -> Dict[str, float]:
        return {
            link_class: (sum(values) / len(values) if values else 0.0)
            for link_class, values in self.pause_fractions.items()
        }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


def _build_environment(config: ExperimentConfig, sim: Simulator) -> SchemeEnvironment:
    clos = config.clos
    base_rtt = clos.base_rtt_ns()
    return SchemeEnvironment(
        sim=sim,
        link_rate_bps=clos.link_rate_bps,
        link_delay_ns=clos.link_delay_ns,
        base_rtt_ns=base_rtt,
        bdp_bytes=clos.bdp_bytes(),
        buffer_bytes=config.buffer_bytes,
        gateway_buffer_bytes=config.gateway_buffer_bytes,
        mtu=config.mtu,
        pfc_enabled=config.pfc_enabled,
        seed=config.seed,
        bfc_config=config.bfc_config or BfcConfig(mtu=config.mtu),
        dcqcn_config=config.dcqcn_config,
        hpcc_config=config.hpcc_config,
    )


def _build_topology(config: ExperimentConfig, env: SchemeEnvironment) -> Topology:
    scheme = get_scheme(config.scheme)
    switch_factory = scheme.switch_factory(env)
    host_factory = scheme.host_factory(env)
    if config.cross_dc is not None:
        topo = build_cross_dc(env.sim, config.cross_dc, switch_factory, host_factory)
    else:
        topo = build_leaf_spine(env.sim, config.clos, switch_factory, host_factory)
    # Hosts and the environment share one flow registry so receivers can mark
    # flows complete.
    for host in topo.hosts.values():
        host.flow_registry = env.flow_registry
    topo.flow_registry = env.flow_registry
    return topo


def _schedule_sampling(
    sim: Simulator,
    topo: Topology,
    interval_ns: int,
    until_ns: int,
    buffer_sampler: BufferSampler,
    queue_sampler: QueueSampler,
) -> None:
    def sample() -> None:
        for switch in topo.all_switches():
            buffer_sampler.record(switch.name, switch.buffer_occupancy())
            if isinstance(switch, BfcSwitch):
                occupied = 0
                for discipline in switch.bfc_disciplines():
                    occupied += discipline.occupied_physical_queues()
                    for backlog in discipline.per_queue_bytes():
                        if backlog > 0:
                            queue_sampler.record_queue(backlog)
                queue_sampler.record_occupied(occupied)
        if sim.now + interval_ns <= until_ns:
            sim.schedule(interval_ns, sample)

    sim.schedule(interval_ns, sample)


def _harvest_flow_records(
    topo: Topology, flows: Sequence[Flow], mtu: int
) -> FlowStats:
    stats = FlowStats()
    line_rate = topo.host_link_rate_bps
    for flow in flows:
        try:
            delay = topo.one_way_delay_ns(flow.src, flow.dst)
        except (ValueError, RuntimeError, KeyError):
            delay = 2 * topo.link_delay_ns
        stats.add(
            FlowRecord(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                start_ns=flow.start_ns,
                finish_ns=flow.finish_ns,
                slowdown=flow.slowdown(line_rate, delay, mtu),
                is_incast=flow.is_incast,
                tag=flow.tag,
                retransmissions=flow.retransmitted_packets,
            )
        )
    return stats


def _harvest_pause_fractions(topo: Topology, now_ns: int) -> Dict[str, List[float]]:
    result: Dict[str, List[float]] = {}
    for switch in topo.all_switches():
        for iface in switch.interfaces:
            fraction = iface.tx.pfc_meter.paused_fraction(now_ns)
            result.setdefault(iface.link_class, []).append(fraction)
    for host in topo.hosts.values():
        for iface in host.interfaces:
            fraction = iface.tx.pfc_meter.paused_fraction(now_ns)
            result.setdefault(iface.link_class, []).append(fraction)
    return result


def _harvest_utilization(topo: Topology, duration_ns: int) -> Dict[int, float]:
    """Utilization of each receiver's downlink (ToR -> host)."""
    result: Dict[int, float] = {}
    for host_id, host in topo.hosts.items():
        tor = topo.tor_switch_of(host_id)
        iface = tor.interface_to(host)
        if iface is None:
            continue
        result[host_id] = iface.tx.utilization(duration_ns)
    return result


def _collect_bfc_stats(switches) -> Optional[Tuple[int, int, Dict[str, int]]]:
    """Raw BFC statistics over an iterable of switches, or ``None``.

    Returns ``(assignments, collisions, vfid_stats)`` so callers can combine
    several partial collections before dividing (the sharded runtime sums
    per-shard numerators and denominators; :func:`_harvest_bfc_stats` divides
    directly).
    """
    bfc_switches = [s for s in switches if isinstance(s, BfcSwitch)]
    if not bfc_switches:
        return None
    assignments = 0
    collisions = 0
    vfid_stats = {
        "vfid_collisions": 0,
        "bucket_overflows": 0,
        "cache_overflows": 0,
        "table_inserts": 0,
        "max_active_entries": 0,
        "pauses": 0,
        "resumes": 0,
        "bloom_frames_sent": 0,
    }
    for switch in bfc_switches:
        for discipline in switch.bfc_disciplines():
            assignments += discipline.pool.stats.assignments
            collisions += discipline.pool.stats.collisions
        table = switch.agent.flow_table.stats
        vfid_stats["vfid_collisions"] += table.vfid_collisions
        vfid_stats["bucket_overflows"] += table.bucket_overflows
        vfid_stats["cache_overflows"] += table.cache_overflows
        vfid_stats["table_inserts"] += table.inserts
        vfid_stats["max_active_entries"] = max(
            vfid_stats["max_active_entries"], table.max_active_entries
        )
        vfid_stats["pauses"] += switch.agent.counters.get("pauses")
        vfid_stats["resumes"] += switch.agent.counters.get("resumes")
        vfid_stats["bloom_frames_sent"] += switch.agent.counters.get("bloom_frames_sent")
    return assignments, collisions, vfid_stats


def _harvest_bfc_stats(topo: Topology) -> Tuple[Optional[float], Dict[str, int]]:
    collected = _collect_bfc_stats(topo.all_switches())
    if collected is None:
        return None, {}
    assignments, collisions, vfid_stats = collected
    collision_fraction = collisions / assignments if assignments else 0.0
    return collision_fraction, vfid_stats


def _aggregate_switch_counters(topo: Topology, switches=None) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for switch in topo.all_switches() if switches is None else switches:
        for name, value in switch.counters.as_dict().items():
            totals[name] = totals.get(name, 0) + value
    return totals


def build_simulation(
    config: ExperimentConfig,
) -> Tuple[Simulator, SchemeEnvironment, Topology, FlowTrace]:
    """Deterministically build the full simulation state of one experiment.

    Everything up to (but excluding) starting the flows: the simulator, the
    scheme environment, the wired topology and the generated flow trace.
    This is the shared front half of :func:`run_experiment`; the sharded
    runtime (:mod:`repro.shard`) calls it in every worker process so each
    shard reproduces the exact same component RNG states and flow ids as a
    single-process run.
    """
    reset_flow_ids()
    sim = Simulator(seed=config.seed)
    env = _build_environment(config, sim)
    topo = _build_topology(config, env)
    trace = config.traffic.build(
        topo.host_ids(), topo.host_link_rate_bps, config.duration_ns
    )
    return sim, env, topo, trace


def build_topology_only(config: ExperimentConfig) -> Topology:
    """Build just the wired topology of one experiment — no traffic trace.

    For cheap topology/partition inspection (the ``repro topology`` CLI):
    paper-scale trace generation costs far more than the fabric build.
    """
    sim = Simulator(seed=config.seed)
    env = _build_environment(config, sim)
    return _build_topology(config, env)


def run_experiment(
    config: ExperimentConfig, slot_budget: Optional[int] = None
) -> ExperimentResult:
    """Run one experiment end to end and return its measurements.

    With ``config.shards > 1`` the run is delegated to the sharded runtime,
    which executes the same topology across several OS processes and merges
    the shard measurements back into one :class:`ExperimentResult`.

    ``slot_budget`` is the CPU-slot reservation handed down by the campaign
    scheduling layer (:mod:`repro.campaign.scheduling`): the number of
    simulator processes this run may assume it owns.  It is purely
    advisory — it never changes what is simulated or measured — but a
    sharded run's coordinator records it (and whether the shard count
    oversubscribes it) in ``ExperimentResult.shard_stats``, so plans and
    reality can be audited against each other.
    """
    if slot_budget is not None and slot_budget < 1:
        raise ValueError(f"slot_budget must be >= 1, got {slot_budget}")
    if config.shards > 1:
        from repro.shard.coordinator import run_sharded_experiment

        return run_sharded_experiment(config, slot_budget=slot_budget)
    started = time.monotonic()
    sim, env, topo, trace = build_simulation(config)
    topo.start_flows(trace)

    buffer_sampler = BufferSampler()
    queue_sampler = QueueSampler()
    _schedule_sampling(
        sim,
        topo,
        config.effective_sample_interval_ns(),
        config.total_duration_ns(),
        buffer_sampler,
        queue_sampler,
    )

    sim.run(until=config.total_duration_ns(), max_events=config.max_events)

    flow_stats = _harvest_flow_records(topo, list(trace), config.mtu)
    pause_fractions = _harvest_pause_fractions(topo, sim.now)
    utilization = _harvest_utilization(topo, config.duration_ns)
    collision_fraction, vfid_stats = _harvest_bfc_stats(topo)
    counters = _aggregate_switch_counters(topo)

    return ExperimentResult(
        config=config,
        scheme=config.scheme,
        flow_stats=flow_stats,
        buffer_sampler=buffer_sampler,
        queue_sampler=queue_sampler,
        pause_fractions=pause_fractions,
        utilization_per_receiver=utilization,
        dropped_packets=topo.total_dropped_packets(),
        switch_counters=counters,
        collision_fraction=collision_fraction,
        vfid_stats=vfid_stats,
        flows_offered=len(trace),
        events_processed=sim.events_processed,
        wall_seconds=time.monotonic() - started,
    )


def run_schemes(
    base_config: ExperimentConfig, schemes: Sequence[str]
) -> Dict[str, ExperimentResult]:
    """Run the same experiment once per scheme (one line per scheme in a figure).

    .. deprecated::
        Use :class:`repro.campaign.Campaign` instead, which adds sweeps,
        repeats, parallel execution and persistent results::

            Campaign.from_configs(name, configs).run(workers=4)

    This shim keeps the original call shape and return type.
    """
    warnings.warn(
        "run_schemes() is deprecated; build a repro.campaign.Campaign instead "
        "(Campaign.from_configs(...).run())",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.campaign import Campaign

    configs = {
        scheme: replace(base_config, scheme=scheme, name=f"{base_config.name}/{scheme}")
        for scheme in schemes
    }
    result_set = Campaign.from_configs(base_config.name, configs).run()
    return result_set.experiment_results_by_label()
