"""Per-figure experiment scenarios.

Every figure of the paper's evaluation has a factory here that returns the
set of :class:`~repro.experiments.runner.ExperimentConfig` objects needed to
regenerate it, at one of three scales:

* ``tiny``  — default for benchmarks and CI: a 8-host, 2-ToR, 2-spine fabric
  at 5 Gbps with sub-millisecond traces.  Runs in seconds per scheme.
* ``small`` — a 16-host, 2-ToR, 4-spine fabric at 10 Gbps, millisecond traces.
* ``paper`` — the published parameters (T1/T2 at 100 Gbps, 12 MB buffers).
  Provided for completeness; a pure-Python run at this scale takes hours.

The factories only build configurations; the benchmarks (and users) run them
via :func:`repro.experiments.runner.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import BfcConfig
from repro.sim import units
from repro.topology.clos import ClosParams, paper_t1_params, scaled_params
from repro.topology.crossdc import CrossDcParams
from repro.workloads.collectives import CollectiveSpec
from repro.workloads.distributions import FB_HADOOP, GOOGLE, WEBSEARCH, EmpiricalSizeDistribution
from repro.workloads.generator import WorkloadSpec, generate_workload
from repro.workloads.longlived import long_lived_flows, many_to_one_flows
from repro.workloads.openloop import OpenLoopSpec
from repro.workloads.rpc import RpcFanoutSpec

from .runner import ExperimentConfig, TrafficSpec

#: Schemes shown in the paper's headline comparison (Fig. 5).
HEADLINE_SCHEMES: List[str] = [
    "BFC",
    "Ideal-FQ",
    "DCQCN",
    "DCQCN+Win",
    "HPCC",
    "DCQCN+Win+SFQ",
]


@dataclass
class ScenarioScale:
    """Topology / trace sizing for one scale preset."""

    name: str
    clos: ClosParams
    buffer_time_us: float
    duration_ns: int
    max_flow_size: Optional[int]
    incast_aggregate_bytes: int
    incast_fan_in: int
    mtu: int = 1000

    def switch_capacity_bps(self) -> float:
        ports = self.clos.hosts_per_tor + self.clos.num_spines
        return ports * self.clos.link_rate_bps

    def buffer_bytes(self) -> int:
        """Buffer sized to ``buffer_time_us`` of ToR switch capacity.

        The paper's 12 MB buffer on a 2.4 Tbps ToR corresponds to ~40 us of
        switch capacity (its Fig. 1 metric); scaled topologies keep that ratio.
        """
        return int(self.switch_capacity_bps() * self.buffer_time_us * 1e-6 / 8)

    def clamp_fan_in(self) -> int:
        return min(self.incast_fan_in, self.clos.num_hosts - 1)


def get_scale(name: str = "tiny") -> ScenarioScale:
    """Return one of the scale presets ("tiny", "small", "paper")."""
    # Note on buffer sizing: the paper's switches hold ~40 us of switch
    # capacity (Fig. 1).  At scaled-down link rates the BFC feedback overshoot
    # ((HRTT + tau) * mu per paused flow) is dominated by MTU serialization
    # time, which does not shrink with the buffer, so the scaled presets use a
    # proportionally larger buffer-time to keep the buffer/overshoot ratio in
    # the paper's regime (see DESIGN.md and EXPERIMENTS.md).
    if name == "tiny":
        return ScenarioScale(
            name="tiny",
            clos=scaled_params(
                num_tors=2, hosts_per_tor=4, num_spines=2, link_rate_bps=units.gbps(10)
            ),
            buffer_time_us=120.0,
            duration_ns=units.microseconds(600),
            max_flow_size=100_000,
            incast_aggregate_bytes=100_000,
            incast_fan_in=7,
        )
    if name == "small":
        return ScenarioScale(
            name="small",
            clos=scaled_params(
                num_tors=2, hosts_per_tor=8, num_spines=4, link_rate_bps=units.gbps(25)
            ),
            buffer_time_us=80.0,
            duration_ns=units.milliseconds(1),
            max_flow_size=1_000_000,
            incast_aggregate_bytes=1_000_000,
            incast_fan_in=15,
        )
    if name == "paper":
        return ScenarioScale(
            name="paper",
            clos=paper_t1_params(),
            buffer_time_us=40.0,
            duration_ns=units.milliseconds(10),
            max_flow_size=None,
            incast_aggregate_bytes=20_000_000,
            incast_fan_in=100,
        )
    raise KeyError(f"unknown scale {name!r}; use 'tiny', 'small' or 'paper'")


def _base_config(
    name: str,
    scheme: str,
    scale: ScenarioScale,
    traffic: TrafficSpec,
    seed: int = 1,
    **overrides,
) -> ExperimentConfig:
    kwargs = dict(
        name=name,
        scheme=scheme,
        clos=scale.clos,
        traffic=traffic,
        buffer_bytes=scale.buffer_bytes(),
        duration_ns=scale.duration_ns,
        seed=seed,
        mtu=scale.mtu,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def _background_traffic(
    scale: ScenarioScale,
    distribution: EmpiricalSizeDistribution,
    load: float,
    incast_load: Optional[float] = None,
    seed: int = 1,
) -> TrafficSpec:
    workload = WorkloadSpec(
        distribution=distribution,
        target_load=load,
        duration_ns=scale.duration_ns,
        max_flow_size=scale.max_flow_size,
    )
    return TrafficSpec(
        workload=workload,
        incast_load=incast_load,
        incast_fan_in=scale.clamp_fan_in(),
        incast_aggregate_bytes=scale.incast_aggregate_bytes,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Fig. 2 — DCQCN buffer occupancy vs link speed (PFC disabled)
# ---------------------------------------------------------------------------


def fig2_configs(scale_name: str = "tiny", seed: int = 1) -> Dict[str, ExperimentConfig]:
    """DCQCN buffer-occupancy CDF at three link speeds, Google 75% + 5% incast."""
    scale = get_scale(scale_name)
    base_rate = scale.clos.link_rate_bps
    speed_factors = {"1x": 1.0, "2x": 2.0, "4x": 4.0}
    configs: Dict[str, ExperimentConfig] = {}
    for label, factor in speed_factors.items():
        clos = ClosParams(
            num_tors=scale.clos.num_tors,
            hosts_per_tor=scale.clos.hosts_per_tor,
            num_spines=scale.clos.num_spines,
            link_rate_bps=base_rate * factor,
            link_delay_ns=scale.clos.link_delay_ns,
        )
        speed_scale = ScenarioScale(**{**scale.__dict__, "clos": clos})
        traffic = _background_traffic(speed_scale, GOOGLE, 0.70, incast_load=0.05, seed=seed)
        configs[label] = _base_config(
            f"fig2/{label}", "DCQCN", speed_scale, traffic, seed=seed, pfc_enabled=False
        )
    return configs


# ---------------------------------------------------------------------------
# Fig. 3 — DCQCN tail FCT vs switch buffer/capacity ratio
# ---------------------------------------------------------------------------


def fig3_configs(scale_name: str = "tiny", seed: int = 1) -> Dict[str, ExperimentConfig]:
    """DCQCN p99 FCT slowdown for buffer sizes worth 10/20/30 us of capacity."""
    scale = get_scale(scale_name)
    configs: Dict[str, ExperimentConfig] = {}
    for buffer_us in (10.0, 20.0, 30.0):
        sized = ScenarioScale(**{**scale.__dict__, "buffer_time_us": buffer_us})
        traffic = _background_traffic(sized, GOOGLE, 0.70, incast_load=0.05, seed=seed)
        configs[f"{buffer_us:g}us"] = _base_config(
            f"fig3/{buffer_us:g}us", "DCQCN", sized, traffic, seed=seed
        )
    return configs


# ---------------------------------------------------------------------------
# Fig. 4 — byte-weighted flow size CDFs (no simulation needed)
# ---------------------------------------------------------------------------


def fig4_distributions() -> Dict[str, EmpiricalSizeDistribution]:
    return {"Google": GOOGLE, "FB_Hadoop": FB_HADOOP, "WebSearch": WEBSEARCH}


# ---------------------------------------------------------------------------
# Fig. 5 — headline tail-latency comparison
# ---------------------------------------------------------------------------


def fig5a_configs(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """Google distribution, 60% background + 5% incast, all schemes."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.60, incast_load=0.05, seed=seed)
    return {
        scheme: _base_config(f"fig5a/{scheme}", scheme, scale, traffic, seed=seed)
        for scheme in (schemes or HEADLINE_SCHEMES)
    }


def fig5b_configs(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """FB_Hadoop distribution, 60% background + 5% incast, all schemes."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, FB_HADOOP, 0.60, incast_load=0.05, seed=seed)
    return {
        scheme: _base_config(f"fig5b/{scheme}", scheme, scale, traffic, seed=seed)
        for scheme in (schemes or HEADLINE_SCHEMES)
    }


def fig5c_configs(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """Google distribution, 65% load, no incast, all schemes."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.65, incast_load=None, seed=seed)
    return {
        scheme: _base_config(f"fig5c/{scheme}", scheme, scale, traffic, seed=seed)
        for scheme in (schemes or HEADLINE_SCHEMES)
    }


# Fig. 6 reuses the Fig. 5a runs: buffer occupancy CDF and PFC pause shares.
fig6_configs = fig5a_configs


# ---------------------------------------------------------------------------
# Fig. 7 — dynamic vs static physical queue assignment
# ---------------------------------------------------------------------------


def fig7_configs(scale_name: str = "tiny", seed: int = 1) -> Dict[str, ExperimentConfig]:
    """BFC vs the BFC-VFID straw proposal vs SFQ+InfBuffer on the Fig. 5a workload."""
    return fig5a_configs(
        scale_name, schemes=["BFC", "BFC-VFID", "SFQ+InfBuffer"], seed=seed
    )


# ---------------------------------------------------------------------------
# Fig. 8 — incast fan-in sweep (utilization and tail buffer occupancy)
# ---------------------------------------------------------------------------


def fig8_configs(
    scale_name: str = "tiny",
    schemes: Sequence[str] = ("BFC", "DCQCN+Win"),
    fan_ins: Optional[Sequence[int]] = None,
    seed: int = 1,
) -> Dict[str, Dict[int, ExperimentConfig]]:
    """Long-lived flows to every receiver plus a periodic incast of growing fan-in."""
    scale = get_scale(scale_name)
    host_ids = list(range(scale.clos.num_hosts))
    if fan_ins is None:
        max_fan_in = scale.clos.num_hosts - 1
        fan_ins = sorted({max(2, max_fan_in // 4), max(3, max_fan_in // 2), max_fan_in})
    # Long-lived background: 4 flows per receiver, each big enough to span the run.
    longlived_bytes = int(
        scale.clos.link_rate_bps * scale.duration_ns / (8 * 1e9) / 2
    )
    background = long_lived_flows(host_ids, flows_per_receiver=4, size_bytes=max(10_000, longlived_bytes), seed=seed)
    period_ns = max(scale.duration_ns // 4, 1)
    configs: Dict[str, Dict[int, ExperimentConfig]] = {}
    for scheme in schemes:
        configs[scheme] = {}
        for fan_in in fan_ins:
            traffic = TrafficSpec(
                explicit_flows=background,
                incast_period_ns=period_ns,
                incast_fan_in=fan_in,
                incast_aggregate_bytes=scale.incast_aggregate_bytes,
                incast_receiver=host_ids[0],
                seed=seed,
            )
            configs[scheme][fan_in] = _base_config(
                f"fig8/{scheme}/fanin{fan_in}", scheme, scale, traffic, seed=seed
            )
    return configs


# ---------------------------------------------------------------------------
# Fig. 9 — cross-data-center experiment
# ---------------------------------------------------------------------------


def fig9_configs(
    scale_name: str = "tiny",
    schemes: Sequence[str] = ("BFC", "DCQCN+Win"),
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """Two data centers joined by a long-delay gateway link; 20% inter-DC flows."""
    scale = get_scale(scale_name)
    dc_params = scale.clos
    cross = CrossDcParams(
        dc_params=dc_params,
        gateway_link_rate_bps=dc_params.link_rate_bps,
        gateway_delay_ns=20_000 if scale_name != "paper" else 200_000,
    )
    num_hosts = dc_params.num_hosts
    dc0 = list(range(num_hosts))
    dc1 = list(range(num_hosts, 2 * num_hosts))
    all_hosts = dc0 + dc1
    load = 0.65
    intra_spec = WorkloadSpec(
        distribution=FB_HADOOP,
        target_load=load * 0.8,
        duration_ns=scale.duration_ns,
        max_flow_size=scale.max_flow_size,
        tag="intra-dc",
    )
    inter_spec = WorkloadSpec(
        distribution=FB_HADOOP,
        target_load=load * 0.2,
        duration_ns=scale.duration_ns,
        max_flow_size=scale.max_flow_size,
        tag="inter-dc",
    )
    intra0 = generate_workload(intra_spec, dc0, dc_params.link_rate_bps, seed=seed)
    intra1 = generate_workload(intra_spec, dc1, dc_params.link_rate_bps, seed=seed + 1)
    inter = generate_workload(
        inter_spec, all_hosts, dc_params.link_rate_bps, seed=seed + 2,
        src_hosts=dc0, dst_hosts=dc1,
    )
    flows = intra0.merge(intra1).merge(inter)
    traffic = TrafficSpec(explicit_flows=flows, seed=seed)
    configs: Dict[str, ExperimentConfig] = {}
    for scheme in schemes:
        configs[scheme] = _base_config(
            f"fig9/{scheme}",
            scheme,
            scale,
            traffic,
            seed=seed,
            cross_dc=cross,
            gateway_buffer_bytes=5 * scale.buffer_bytes(),
            drain_ns=scale.duration_ns,
        )
    return configs


# ---------------------------------------------------------------------------
# Open-loop cross-DC — the streaming-results headline scenario
# ---------------------------------------------------------------------------


def openloop_crossdc_config(
    scale_name: str = "tiny",
    scheme: str = "BFC",
    seed: int = 1,
    *,
    users: int = 1_000_000,
    target_flows: int = 100_000,
    target_load: float = 0.5,
    max_flow_size: Optional[int] = 20_000,
    results_dir: Optional[str] = None,
) -> ExperimentConfig:
    """Open-loop Poisson sessions over the fig9 cross-DC fabric.

    Models a population of ``users`` independent users whose superposed flow
    arrivals hit ``target_load`` of the fabric, and sizes the run window so
    that ``target_flows`` arrivals occur (``max_flows`` caps the count
    exactly; the window has 10% slack so the cap, not the clock, ends the
    arrival process).  Unlike the trace-based fig9 scenario no flow list is
    ever materialized, so ``target_flows`` can be millions; pair with
    ``results_dir`` to also keep the harvested records off the heap
    (see ``docs/results.md``).
    """
    scale = get_scale(scale_name)
    dc_params = scale.clos
    cross = CrossDcParams(
        dc_params=dc_params,
        gateway_link_rate_bps=dc_params.link_rate_bps,
        gateway_delay_ns=20_000 if scale_name != "paper" else 200_000,
    )
    num_hosts = 2 * dc_params.num_hosts
    # Calibrate the aggregate rate from the load target, then divide it over
    # the user population (superposition: N users at r flows/s == rate N*r).
    probe = OpenLoopSpec(
        distribution=GOOGLE,
        duration_ns=1,
        target_load=target_load,
        max_flow_size=max_flow_size,
    )
    rate_per_s = probe.aggregate_rate_per_s(num_hosts, dc_params.link_rate_bps)
    duration_ns = int(target_flows / rate_per_s * 1e9 * 1.1) + 1
    spec = OpenLoopSpec(
        distribution=GOOGLE,
        duration_ns=duration_ns,
        users=users,
        flows_per_user_per_s=rate_per_s / users,
        max_flow_size=max_flow_size,
        max_flows=target_flows,
    )
    traffic = TrafficSpec(open_loop=spec, seed=seed)
    return _base_config(
        f"openloop-crossdc/{scheme}",
        scheme,
        scale,
        traffic,
        seed=seed,
        cross_dc=cross,
        gateway_buffer_bytes=5 * scale.buffer_bytes(),
        duration_ns=duration_ns,
        drain_ns=scale.duration_ns,
        results_dir=results_dir,
    )


# ---------------------------------------------------------------------------
# Fig. 10 — physical queue size vs number of concurrent flows
# ---------------------------------------------------------------------------


def fig10_configs(
    scale_name: str = "tiny",
    schemes: Sequence[str] = ("BFC", "BFC-BufferOpt"),
    flow_counts: Sequence[int] = (8, 32, 64),
    seed: int = 1,
) -> Dict[str, Dict[int, ExperimentConfig]]:
    """Concurrent long-lived flows to one receiver; per-physical-queue backlog."""
    scale = get_scale(scale_name)
    host_ids = list(range(scale.clos.num_hosts))
    receiver = host_ids[0]
    size_bytes = int(scale.clos.link_rate_bps * scale.duration_ns / (8 * 1e9))
    configs: Dict[str, Dict[int, ExperimentConfig]] = {}
    for scheme in schemes:
        configs[scheme] = {}
        for count in flow_counts:
            flows = many_to_one_flows(
                host_ids, receiver, num_flows=count, size_bytes=max(20_000, size_bytes), seed=seed
            )
            traffic = TrafficSpec(explicit_flows=flows, seed=seed)
            configs[scheme][count] = _base_config(
                f"fig10/{scheme}/{count}flows", scheme, scale, traffic, seed=seed
            )
    return configs


# ---------------------------------------------------------------------------
# Fig. 11 — high-priority-queue ablation at high load
# ---------------------------------------------------------------------------


def fig11_configs(scale_name: str = "tiny", seed: int = 1) -> Dict[str, ExperimentConfig]:
    """Google 85% + 5% incast: BFC with and without the high-priority queue."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.85, incast_load=0.05, seed=seed)
    return {
        scheme: _base_config(f"fig11/{scheme}", scheme, scale, traffic, seed=seed)
        for scheme in ("BFC", "BFC-HighPriorityQ")
    }


# ---------------------------------------------------------------------------
# Fig. 12 — sensitivity to the number of physical queues
# ---------------------------------------------------------------------------


def fig12_configs(
    scale_name: str = "tiny",
    queue_counts: Sequence[int] = (8, 16, 32, 64),
    include_ideal: bool = True,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """BFC with 8-128 physical queues per port on the Fig. 5a workload."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.60, incast_load=0.05, seed=seed)
    configs: Dict[str, ExperimentConfig] = {}
    for count in queue_counts:
        configs[f"{count}q"] = _base_config(
            f"fig12/{count}q",
            "BFC",
            scale,
            traffic,
            seed=seed,
            bfc_config=BfcConfig(num_physical_queues=count, mtu=scale.mtu),
        )
    if include_ideal:
        configs["Ideal-FQ"] = _base_config(
            "fig12/Ideal-FQ", "Ideal-FQ", scale, traffic, seed=seed
        )
    return configs


# ---------------------------------------------------------------------------
# Fig. 13 — sensitivity to the VFID space
# ---------------------------------------------------------------------------


def fig13_configs(
    scale_name: str = "tiny",
    vfid_counts: Sequence[int] = (1_024, 4_096, 16_384, 65_536),
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """BFC with varying virtual-flow hash table sizes on the Fig. 5a workload."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.60, incast_load=0.05, seed=seed)
    return {
        f"{count}": _base_config(
            f"fig13/{count}vfids",
            "BFC",
            scale,
            traffic,
            seed=seed,
            bfc_config=BfcConfig(num_vfids=count, mtu=scale.mtu),
        )
        for count in vfid_counts
    }


# ---------------------------------------------------------------------------
# Fig. 14 — sensitivity to the Bloom-filter size
# ---------------------------------------------------------------------------


def fig14_configs(
    scale_name: str = "tiny",
    bloom_sizes: Sequence[int] = (16, 32, 64, 128),
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """BFC with 16-128 byte pause-frame Bloom filters on the Fig. 5a workload."""
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.60, incast_load=0.05, seed=seed)
    return {
        f"{size}B": _base_config(
            f"fig14/{size}B",
            "BFC",
            scale,
            traffic,
            seed=seed,
            bfc_config=BfcConfig(bloom_filter_bytes=size, mtu=scale.mtu),
        )
        for size in bloom_sizes
    }


# ---------------------------------------------------------------------------
# fig_est — BFC-Est telemetry-staleness sensitivity (beyond the paper)
# ---------------------------------------------------------------------------


def fig_est_configs(
    scale_name: str = "tiny",
    staleness_points_ns: Sequence[int] = (0, 2_000, 4_000, 8_000, 16_000),
    include_capacity_weighted: bool = True,
    sample_period_ns: int = 0,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """How much pause-decision quality does BFC lose on stale occupancy?

    The paper's BFC reads exact queue occupancy at enqueue time.  ``BFC-Est``
    instead reads delayed/sampled telemetry (INT-style), and this sweep
    measures the degradation: an exact-BFC baseline plus ``BFC-Est`` at each
    staleness point (``0`` is the degenerate point, byte-identical to BFC)
    on the Fig. 5a workload.  With ``include_capacity_weighted`` the
    capacity-weighted variant (``BFC-Est-Cap``) rides along at every point.
    """
    scale = get_scale(scale_name)
    traffic = _background_traffic(scale, GOOGLE, 0.60, incast_load=0.05, seed=seed)
    configs: Dict[str, ExperimentConfig] = {
        "BFC": _base_config("fig_est/BFC", "BFC", scale, traffic, seed=seed)
    }
    schemes = ["BFC-Est"] + (["BFC-Est-Cap"] if include_capacity_weighted else [])
    for scheme in schemes:
        for staleness in staleness_points_ns:
            label = f"{scheme}/{staleness}ns"
            configs[label] = _base_config(
                f"fig_est/{label}",
                scheme,
                scale,
                traffic,
                seed=seed,
                bfc_config=BfcConfig(
                    mtu=scale.mtu,
                    telemetry_staleness_ns=staleness,
                    telemetry_sample_period_ns=sample_period_ns,
                ),
            )
    return configs


# ---------------------------------------------------------------------------
# fig_collective — ML-training collectives (beyond the paper)
# ---------------------------------------------------------------------------


def collective_configs(
    scale_name: str = "tiny",
    kinds: Sequence[str] = ("ring-allreduce", "tree-allreduce", "all-to-all"),
    schemes: Sequence[str] = ("BFC", "BFC-Est", "DCQCN", "HPCC"),
    iterations: int = 3,
    est_staleness_ns: int = 4_000,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """Self-clocked collectives: per-iteration time under each scheme.

    Every host is a worker; each iteration moves one chunk per worker per
    step with a model-compute gap between iterations.  Because step ``s+1``
    cannot start until step ``s``'s chunk arrived, any queueing delay a
    scheme lets build up stalls the whole ring/tree — the figure reports the
    completion time of the final iteration (collective makespan).
    """
    scale = get_scale(scale_name)
    # One chunk is ~20 us of host line rate: long enough to congest shared
    # links, short enough that tiny-scale runs stay in the golden-run regime.
    chunk_bytes = max(20_000, int(scale.clos.link_rate_bps * 20e-6 / 8))
    configs: Dict[str, ExperimentConfig] = {}
    for kind in kinds:
        spec = CollectiveSpec(
            kind=kind,
            chunk_bytes=chunk_bytes,
            iterations=iterations,
            compute_delay_ns=10_000,
        )
        traffic = TrafficSpec(flow_graph=spec, seed=seed)
        for scheme in schemes:
            label = f"{kind}/{scheme}"
            overrides = {}
            if scheme.startswith("BFC-Est"):
                # Give the estimator variants a non-trivial signal delay —
                # at staleness 0 they are byte-identical to exact BFC.
                overrides["bfc_config"] = BfcConfig(
                    mtu=scale.mtu, telemetry_staleness_ns=est_staleness_ns
                )
            configs[label] = _base_config(
                f"fig_collective/{label}", scheme, scale, traffic, seed=seed,
                duration_ns=2 * scale.duration_ns, **overrides,
            )
    return configs


# ---------------------------------------------------------------------------
# fig_rpc — RPC fan-out/fan-in request trees (beyond the paper)
# ---------------------------------------------------------------------------


def rpc_fanout_configs(
    scale_name: str = "tiny",
    schemes: Sequence[str] = ("BFC", "BFC-Est", "DCQCN", "HPCC"),
    fan_out: int = 3,
    depth: int = 2,
    background_load: float = 0.40,
    est_staleness_ns: int = 4_000,
    seed: int = 1,
) -> Dict[str, ExperimentConfig]:
    """Scatter-gather request trees over background traffic: fan-in tails.

    A stream of fan-out/fan-in RPC trees (responses drawn from the Google
    CDF) runs over a Google-workload background load.  The front-end cannot
    answer before the slowest leaf, so the figure's metric — per-flow
    slowdown of the ``rpc``-tagged flows — captures exactly the paper's
    short-flow-tail story under a fan-in pattern it never evaluated.
    """
    scale = get_scale(scale_name)
    num_requests = max(4, scale.clos.num_hosts // 2)
    spec = RpcFanoutSpec(
        num_requests=num_requests,
        fan_out=fan_out,
        depth=depth,
        mean_interarrival_ns=max(10_000, scale.duration_ns // (2 * num_requests)),
        compute_delay_ns=2_000,
    )
    workload = WorkloadSpec(
        distribution=GOOGLE,
        target_load=background_load,
        duration_ns=scale.duration_ns,
        max_flow_size=scale.max_flow_size,
    )
    traffic = TrafficSpec(workload=workload, flow_graph=spec, seed=seed)
    configs: Dict[str, ExperimentConfig] = {}
    for scheme in schemes:
        overrides = {}
        if scheme.startswith("BFC-Est"):
            overrides["bfc_config"] = BfcConfig(
                mtu=scale.mtu, telemetry_staleness_ns=est_staleness_ns
            )
        configs[scheme] = _base_config(
            f"fig_rpc/{scheme}", scheme, scale, traffic, seed=seed,
            duration_ns=2 * scale.duration_ns, **overrides,
        )
    return configs


# ---------------------------------------------------------------------------
# Campaign forms of the per-figure factories
# ---------------------------------------------------------------------------
#
# Each figure also exists as a ready-to-run Campaign, so the declarative API
# ("run it, in parallel, with repeats, save the records") composes with the
# exact config grids above::
#
#     from repro.experiments.scenarios import fig5a_campaign
#     results = fig5a_campaign("tiny", repeats=3).run(workers=4)


def _figure_campaign(figure: str, make_configs, repeats: int, seed: int):
    from repro.campaign import Campaign

    # from_config_factory re-invokes the figure's config factory with each
    # repeat's seed (base seed + repeat index), so even figures that bake
    # explicit flow lists into their configs (fig8/9/10) genuinely resample
    # their traffic per repeat.
    return (
        Campaign.from_config_factory(figure, make_configs)
        .repeats(repeats)
        .seeds(base=seed)
    )


def fig2_campaign(scale_name: str = "tiny", seed: int = 1, repeats: int = 1):
    return _figure_campaign(
        "fig2", lambda s: fig2_configs(scale_name, seed=s), repeats, seed
    )


def fig3_campaign(scale_name: str = "tiny", seed: int = 1, repeats: int = 1):
    return _figure_campaign(
        "fig3", lambda s: fig3_configs(scale_name, seed=s), repeats, seed
    )


def fig5a_campaign(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
    repeats: int = 1,
):
    return _figure_campaign(
        "fig5a", lambda s: fig5a_configs(scale_name, schemes=schemes, seed=s), repeats, seed
    )


def fig5b_campaign(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
    repeats: int = 1,
):
    return _figure_campaign(
        "fig5b", lambda s: fig5b_configs(scale_name, schemes=schemes, seed=s), repeats, seed
    )


def fig5c_campaign(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
    repeats: int = 1,
):
    return _figure_campaign(
        "fig5c", lambda s: fig5c_configs(scale_name, schemes=schemes, seed=s), repeats, seed
    )


def fig6_campaign(
    scale_name: str = "tiny",
    schemes: Optional[Sequence[str]] = None,
    seed: int = 1,
    repeats: int = 1,
):
    return _figure_campaign(
        "fig6", lambda s: fig6_configs(scale_name, schemes=schemes, seed=s), repeats, seed
    )


def fig7_campaign(scale_name: str = "tiny", seed: int = 1, repeats: int = 1):
    return _figure_campaign(
        "fig7", lambda s: fig7_configs(scale_name, seed=s), repeats, seed
    )


def fig8_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    """Fan-in sweep as a campaign; nested {scheme: {fan_in: config}} flattens
    to "scheme/fan_in" labels.  ``**kwargs`` (schemes, fan_ins) forward to
    :func:`fig8_configs` so its defaults stay the single source of truth."""
    return _figure_campaign(
        "fig8", lambda s: fig8_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig9_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig9", lambda s: fig9_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig10_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig10", lambda s: fig10_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig11_campaign(scale_name: str = "tiny", seed: int = 1, repeats: int = 1):
    return _figure_campaign(
        "fig11", lambda s: fig11_configs(scale_name, seed=s), repeats, seed
    )


def fig12_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig12", lambda s: fig12_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig13_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig13", lambda s: fig13_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig14_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig14", lambda s: fig14_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def fig_est_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig_est", lambda s: fig_est_configs(scale_name, seed=s, **kwargs), repeats, seed
    )


def collective_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig_collective",
        lambda s: collective_configs(scale_name, seed=s, **kwargs),
        repeats,
        seed,
    )


def rpc_fanout_campaign(
    scale_name: str = "tiny", seed: int = 1, repeats: int = 1, **kwargs
):
    return _figure_campaign(
        "fig_rpc",
        lambda s: rpc_fanout_configs(scale_name, seed=s, **kwargs),
        repeats,
        seed,
    )
