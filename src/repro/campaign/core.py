"""Declarative experiment campaigns.

A :class:`Campaign` describes a grid of simulation runs — the paper's
evaluation is exactly such a grid ({scheme} x {workload knobs} x {repeats}) —
and expands it into named :class:`Trial` objects that an executor runs::

    from repro.campaign import Campaign

    results = (
        Campaign("fig5a")
        .schemes("BFC", "DCQCN")
        .sweep(load=[0.6, 0.8, 0.9])
        .repeats(3)
        .run(workers=4)
    )
    print(results.p99_slowdown_by("scheme", "load"))

Seeds are derived per repeat (not per scheme or sweep point), so every scheme
at every sweep point of repeat *r* sees the same random workload — schemes
stay comparable within a repeat, while repeats average over trace randomness.

Existing per-figure config factories plug in through
:meth:`Campaign.from_configs`, which wraps any ``{label: ExperimentConfig}``
mapping (nested sweeps included) without changing how the configs are built.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentConfig
from repro.workloads.distributions import EmpiricalSizeDistribution
from repro.workloads.trace import FlowTrace

from .executors import Executor, make_executor
from .results import CampaignError, ResultSet

#: Parameters the default config builder interprets itself; everything else
#: must be an :class:`ExperimentConfig` field override.
_BUILDER_PARAMS = ("load", "incast", "workload", "scale")


@dataclass(frozen=True)
class Trial:
    """One fully-specified simulation run of a campaign."""

    name: str
    label: str
    scheme: str
    params: Dict[str, object] = field(default_factory=dict, compare=False)
    repeat: int = 0
    seed: int = 1
    config: ExperimentConfig = field(default=None, compare=False, repr=False)


def _format_param(key: str, value: object) -> str:
    if isinstance(value, float):
        return f"{key}={value:g}"
    return f"{key}={value}"


def _reseeded(config: ExperimentConfig, seed: int, name: str) -> ExperimentConfig:
    """Clone a config under a new seed and name.

    TrafficSpec-driven traffic (background workload, incast process) is
    regenerated under the new seed at run time; pre-generated
    ``explicit_flows`` are part of the config and stay fixed.  Campaigns that
    need fully resampled explicit flows per repeat should rebuild their
    configs per seed via :meth:`Campaign.from_config_factory`.
    """
    return replace(
        config, name=name, seed=seed, traffic=replace(config.traffic, seed=seed)
    )


def _config_fingerprint(config: ExperimentConfig) -> str:
    """Deterministic short digest of a config's contents.

    Trials built from prebuilt configs carry this in their params so resume
    identity notices a changed config (different scale, workload, knobs...)
    even though the trial name and seed are unchanged.  Stable across
    processes and sessions: session-dependent values (flow ids, runtime flow
    state) are excluded.
    """

    def canon(obj):
        if isinstance(obj, FlowTrace):
            return [
                (f.src, f.dst, f.size, f.start_ns, f.src_port, f.dst_port,
                 f.is_incast, f.tag)
                for f in obj.flows
            ]
        if isinstance(obj, EmpiricalSizeDistribution):
            return {"distribution": obj.name}
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return {
                f.name: canon(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            }
        if isinstance(obj, (list, tuple)):
            return [canon(item) for item in obj]
        if isinstance(obj, dict):
            return {str(k): canon(v) for k, v in obj.items()}
        return obj if isinstance(obj, (int, float, str, bool, type(None))) else repr(obj)

    payload = json.dumps(canon(config), sort_keys=True, default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def _check_unique_names(trials: List[Trial]) -> List[Trial]:
    """Reject expansions with colliding trial names.

    Duplicates would run (burning wall-clock) and then silently collapse to
    one record in the merge — e.g. a sweep axis listing the same value twice,
    or two values formatting to the same label.
    """
    seen: Dict[str, int] = {}
    for trial in trials:
        seen[trial.name] = seen.get(trial.name, 0) + 1
    dupes = sorted(name for name, count in seen.items() if count > 1)
    if dupes:
        raise CampaignError(
            f"duplicate trial name(s) {dupes[:3]}; check the sweep axes for "
            "repeated or same-formatting values"
        )
    return trials


def _flatten_configs(
    configs: Mapping[str, object], prefix: str = ""
) -> List[Tuple[str, ExperimentConfig]]:
    """Flatten possibly-nested ``{label: config}`` maps to ``label/sublabel`` pairs."""
    flat: List[Tuple[str, ExperimentConfig]] = []
    for key, value in configs.items():
        label = f"{prefix}{key}"
        if isinstance(value, ExperimentConfig):
            flat.append((label, value))
        elif isinstance(value, Mapping):
            flat.extend(_flatten_configs(value, prefix=f"{label}/"))
        else:
            raise TypeError(
                f"config map entry {label!r} is neither an ExperimentConfig "
                f"nor a mapping: {type(value).__name__}"
            )
    return flat


class Campaign:
    """Fluent builder for a grid of experiments.

    Every builder method returns ``self`` so grids read as one expression.
    The grid is expanded lazily by :meth:`trials`; :meth:`run` executes it —
    serially, across a trial-counting process pool (``workers=N``), or
    through the resource-aware scheduler (``cores=N`` / ``"auto"``, which
    charges a ``shards=N`` trial N CPU slots) — and returns a
    :class:`ResultSet`.  :meth:`plan` previews the scheduled execution
    without running anything.

    All execution paths produce bit-identical records; see
    ``docs/campaigns.md`` for the user guide and ``docs/determinism.md``
    for the underlying contracts.
    """

    def __init__(self, name: str, scale: str = "tiny", workload: str = "google"):
        self.name = name
        self._scale = scale
        self._workload = workload
        self._schemes: List[str] = []
        self._axes: Dict[str, List[object]] = {}
        self._fixed: Dict[str, object] = {}
        self._repeats = 1
        self._seeds: Optional[List[int]] = None
        self._base_seed = 1
        self._base_seed_set = False
        self._config_builder = None
        self._configs: Optional[List[Tuple[str, ExperimentConfig]]] = None
        self._config_factory = None
        self._builder_knobs_touched = False

    # -- grid definition -----------------------------------------------------

    def schemes(self, *names: str) -> "Campaign":
        """Select the congestion-control schemes (one grid axis)."""
        from repro.experiments.schemes import get_scheme

        for name in names:
            get_scheme(name)  # fail fast on unknown schemes
        self._schemes = list(names)
        return self

    def sweep(self, **axes: Sequence[object]) -> "Campaign":
        """Add swept parameter axes; the grid is their cartesian product."""
        for key, values in axes.items():
            values = list(values)
            if not values:
                raise CampaignError(f"sweep axis {key!r} has no values")
            self._axes[key] = values
        return self

    def fixed(self, **params: object) -> "Campaign":
        """Set parameters held constant across the whole campaign."""
        self._fixed.update(params)
        return self

    def repeats(self, count: int) -> "Campaign":
        """Repeat every grid point ``count`` times under per-repeat seeds."""
        if count < 1:
            raise CampaignError(f"repeats must be >= 1, got {count}")
        self._repeats = count
        return self

    def seeds(self, *seeds: int, base: Optional[int] = None) -> "Campaign":
        """Control seeding: an explicit per-repeat list, or a base to offset.

        ``seeds(11, 12, 13)`` pins the seed of each repeat; the repeat count
        follows the list.  ``seeds(base=7)`` derives repeat *r*'s seed as
        ``7 + r``.
        """
        if seeds and base is not None:
            raise CampaignError("pass explicit seeds or base=..., not both")
        if seeds:
            self._seeds = list(seeds)
            self._repeats = len(self._seeds)
        elif base is not None:
            self._base_seed = base
            self._base_seed_set = True
            self._seeds = None
        return self

    def scale(self, name: str) -> "Campaign":
        """Pick the topology/trace scale preset ("tiny", "small", "paper")."""
        self._scale = name
        self._builder_knobs_touched = True
        return self

    def workload(self, name: str) -> "Campaign":
        """Pick the flow-size distribution ("google", "fb_hadoop", ...)."""
        self._workload = name
        self._builder_knobs_touched = True
        return self

    def config_builder(self, builder) -> "Campaign":
        """Install a custom ``(campaign, scheme, params, seed, name) -> config``."""
        self._config_builder = builder
        self._builder_knobs_touched = True
        return self

    @classmethod
    def from_configs(
        cls, name: str, configs: Mapping[str, object]
    ) -> "Campaign":
        """Wrap an existing ``{label: config}`` map (nested maps are flattened).

        The labels become trial labels verbatim, so a result set maps back to
        the original keys via :meth:`ResultSet.experiment_results_by_label`.
        ``repeats``/``seeds`` still apply: each repeat re-seeds the configs.
        """
        campaign = cls(name)
        campaign._configs = _flatten_configs(configs)
        return campaign

    @classmethod
    def from_config_factory(cls, name: str, factory) -> "Campaign":
        """Wrap a ``seed -> {label: config}`` factory instead of fixed configs.

        Unlike :meth:`from_configs`, the factory is re-invoked with each
        repeat's seed, so configs that bake traffic in at build time (e.g.
        pre-generated explicit flow lists) genuinely resample it per repeat.
        """
        campaign = cls(name)
        campaign._config_factory = factory
        return campaign

    # -- expansion -----------------------------------------------------------

    def _seed_for(self, repeat: int) -> int:
        if self._seeds is not None:
            if repeat >= len(self._seeds):
                raise CampaignError(
                    f"campaign {self.name!r}: {self._repeats} repeats but only "
                    f"{len(self._seeds)} explicit seed(s); pass one seed per "
                    "repeat or use seeds(base=...)"
                )
            return self._seeds[repeat]
        return self._base_seed + repeat

    def _grid_points(self) -> List[Dict[str, object]]:
        if not self._axes:
            return [dict(self._fixed)]
        keys = list(self._axes)
        points = []
        for combo in itertools.product(*(self._axes[k] for k in keys)):
            params = dict(self._fixed)
            params.update(dict(zip(keys, combo)))
            points.append(params)
        return points

    def trials(self) -> List[Trial]:
        """Expand the campaign into its full, deterministic trial list."""
        if self._config_factory is not None or self._configs is not None:
            if self._schemes or self._axes or self._fixed or self._builder_knobs_touched:
                raise CampaignError(
                    f"campaign {self.name!r} wraps prebuilt configs; "
                    ".schemes()/.sweep()/.fixed()/.scale()/.workload()/"
                    ".config_builder() have no effect on it — vary those in "
                    "the config factory, or build a grid campaign with "
                    "Campaign(name).schemes(...) instead"
                )
            if self._config_factory is not None:
                return _check_unique_names(self._expand_config_factory())
            return _check_unique_names(self._expand_configs())
        if not self._schemes:
            raise CampaignError(
                f"campaign {self.name!r} has no schemes; call .schemes(...) "
                "or build it with Campaign.from_configs(...)"
            )
        swept_keys = list(self._axes)
        trials: List[Trial] = []
        for repeat in range(self._repeats):
            seed = self._seed_for(repeat)
            for scheme in self._schemes:
                for params in self._grid_points():
                    if self._config_builder is None:
                        # Bake the builder defaults into the recorded params
                        # so records are self-describing and resume identity
                        # notices a changed scale/workload (labels are
                        # unaffected: they carry swept keys only).
                        params.setdefault("scale", self._scale)
                        params.setdefault("workload", self._workload)
                    label_parts = [scheme]
                    label_parts += [_format_param(k, params[k]) for k in swept_keys]
                    if self._repeats > 1:
                        label_parts.append(f"rep{repeat}")
                    label = "/".join(label_parts)
                    name = f"{self.name}/{label}"
                    config = self._build_config(scheme, params, seed, name)
                    if self._config_builder is not None:
                        # A custom builder's output is opaque to the params,
                        # so fingerprint the config for resume identity (the
                        # default builder is fully determined by its params).
                        params = dict(params)
                        params["config"] = _config_fingerprint(config)
                    trials.append(
                        Trial(
                            name=name,
                            label=label,
                            scheme=scheme,
                            params=dict(params),
                            repeat=repeat,
                            seed=seed,
                            config=config,
                        )
                    )
        return _check_unique_names(trials)

    def _expand_config_factory(self) -> List[Trial]:
        trials: List[Trial] = []
        for repeat in range(self._repeats):
            seed = self._seed_for(repeat)
            for label, config in _flatten_configs(self._config_factory(seed)):
                full_label = f"{label}/rep{repeat}" if self._repeats > 1 else label
                name = f"{self.name}/{full_label}"
                trial_config = replace(config, name=name)
                trials.append(
                    Trial(
                        name=name,
                        label=full_label,
                        scheme=config.scheme,
                        params={"config": _config_fingerprint(trial_config)},
                        repeat=repeat,
                        seed=seed,
                        config=trial_config,
                    )
                )
        return trials

    def _expand_configs(self) -> List[Trial]:
        trials: List[Trial] = []
        reseed = self._repeats > 1 or self._seeds is not None or self._base_seed_set
        for repeat in range(self._repeats):
            for label, config in self._configs:
                if reseed:
                    seed = self._seed_for(repeat)
                    full_label = f"{label}/rep{repeat}" if self._repeats > 1 else label
                    name = f"{self.name}/{full_label}"
                    trial_config = _reseeded(config, seed, name)
                else:
                    # Single repeat, default seeding: run the configs verbatim.
                    seed = config.seed
                    full_label = label
                    name = f"{self.name}/{full_label}"
                    trial_config = replace(config, name=name)
                trials.append(
                    Trial(
                        name=name,
                        label=full_label,
                        scheme=trial_config.scheme,
                        # The fingerprint stands in for grid params: resume
                        # identity must notice when the wrapped configs change
                        # under an unchanged label (e.g. another scale).
                        params={"config": _config_fingerprint(trial_config)},
                        repeat=repeat,
                        seed=seed,
                        config=trial_config,
                    )
                )
        return trials

    def _build_config(
        self, scheme: str, params: Dict[str, object], seed: int, name: str
    ) -> ExperimentConfig:
        if self._config_builder is not None:
            return self._config_builder(self, scheme, params, seed, name)
        # Default builder: the paper's background-workload-plus-incast setup,
        # same shape as the CLI's `run` command.
        from repro.experiments import scenarios
        from repro.workloads.distributions import WORKLOADS

        scale = scenarios.get_scale(str(params.get("scale", self._scale)))
        workload = str(params.get("workload", self._workload))
        try:
            distribution = WORKLOADS[workload]
        except KeyError:
            raise KeyError(
                f"unknown workload {workload!r}; available: {', '.join(sorted(WORKLOADS))}"
            ) from None
        load = float(params.get("load", 0.6))
        incast = float(params.get("incast", 0.05))
        overrides = {
            k: v for k, v in params.items() if k not in _BUILDER_PARAMS
        }
        # name/scheme/seed are bookkept by the campaign itself; accepting them
        # as parameters would desynchronize trial identity from the config.
        reserved = {"name", "scheme", "seed"} & set(overrides)
        if reserved:
            raise CampaignError(
                f"campaign {self.name!r}: parameter(s) {sorted(reserved)} are "
                "managed by the campaign; use .schemes(...) for the scheme "
                "and .seeds()/.repeats() for seeding"
            )
        config_fields = {f.name for f in fields(ExperimentConfig)} - {
            "name", "scheme", "seed"
        }
        unknown = sorted(set(overrides) - config_fields)
        if unknown:
            raise CampaignError(
                f"campaign {self.name!r}: unknown parameter(s) {unknown}; "
                f"use {', '.join(_BUILDER_PARAMS)} or ExperimentConfig fields "
                f"({', '.join(sorted(config_fields))})"
            )
        traffic = scenarios._background_traffic(
            scale,
            distribution,
            load,
            incast_load=incast if incast > 0 else None,
            seed=seed,
        )
        config = scenarios._base_config(name, scheme, scale, traffic, seed=seed)
        # replace() instead of passing **overrides down: every remaining field
        # (including traffic/clos, which _base_config binds positionally) is
        # overridable without keyword collisions.
        return replace(config, **overrides) if overrides else config

    # -- execution -----------------------------------------------------------

    def _split_resume(self, trials: List[Trial], resume: Optional[object]):
        """Partition trials against a resume file: (done, stale, pending).

        A recorded trial only counts as done under the same seed and
        parameters: trial names encode only the swept axes, so resuming
        after changing the seed or a fixed knob (workload, incast, ...)
        must re-run, not replay stale records that share the name.
        """
        loaded = ResultSet(campaign=self.name)
        if resume is not None and Path(resume).exists():
            loaded = ResultSet.load(resume)

        def identity(name, seed, params):
            return (name, seed, json.dumps(params, sort_keys=True, default=str))

        current_keys = {identity(t.name, t.seed, t.params) for t in trials}
        # Records that no longer correspond to any trial of this campaign
        # (e.g. the repeat count or sweep axes changed, renaming the trials)
        # are kept out of the returned set — they would double-count runs in
        # aggregates — but preserved when writing the file back: a narrower
        # resume must not erase history that an earlier, wider run computed.
        stale = []
        kept = []
        for rec in loaded.records:
            key = identity(rec.name, rec.seed, rec.params)
            (kept if key in current_keys else stale).append(rec)
        done = ResultSet(kept, campaign=loaded.campaign)
        done_keys = {identity(rec.name, rec.seed, rec.params) for rec in done.records}
        pending = [
            t for t in trials if identity(t.name, t.seed, t.params) not in done_keys
        ]
        return done, stale, pending

    def plan(
        self,
        cores: object = "auto",
        save: Optional[object] = None,
        resume: Optional[object] = None,
    ):
        """Preview the resource-aware execution plan without running anything.

        Expands the campaign, drops trials already recorded in ``resume``
        (exactly as :meth:`run` would) and packs the remainder onto ``cores``
        CPU slots — a sharded trial counts as ``shards`` slots.  Pass the
        same ``save``/``resume`` paths as the run you are previewing: the
        measured-cost cache lives next to that file (``resume`` doubles as
        ``save``, as in :meth:`run`), so the preview packs with the same
        costs the run will.  Returns an
        :class:`~repro.campaign.scheduling.ExecutionPlan`; its
        :meth:`~repro.campaign.scheduling.ExecutionPlan.describe` is what the
        CLI prints for ``--dry-run``.
        """
        from .scheduling import CostCache, plan_trials

        _, _, pending = self._split_resume(self.trials(), resume)
        target = save if save is not None else resume
        cache = CostCache.for_results_file(target) if target is not None else None
        return plan_trials(pending, cores, cache)

    def run(
        self,
        executor: Optional[Executor] = None,
        workers: Optional[int] = None,
        cores: Optional[object] = None,
        save: Optional[object] = None,
        resume: Optional[object] = None,
        keep_results: bool = True,
        workspace: Optional[object] = None,
    ) -> ResultSet:
        """Execute the campaign and return its :class:`ResultSet`.

        Exactly one way of choosing parallelism applies: an explicit
        ``executor`` wins; ``cores`` (an int or ``"auto"``) selects
        resource-aware scheduling, where a trial with ``shards=N`` occupies
        ``N`` of the budget's CPU slots (see
        :mod:`repro.campaign.scheduling`); ``workers`` keeps the historical
        trial-counting process pool.  With none of the three,
        ``REPRO_BENCH_WORKERS`` decides (defaulting to serial).  All paths
        produce bit-identical records — only wall-clock time differs.

        ``resume`` names a JSONL file from a previous (possibly interrupted)
        run: trials already recorded there are skipped.  ``save`` writes the
        merged result set back out (``resume`` doubles as ``save`` when only
        ``resume`` is given).  Under ``cores``, a measured-cost cache
        (``<save>.costs.json`` next to the JSONL) is maintained so later
        runs pack trials by their real wall-clock cost.

        ``keep_results=False`` drops the full per-trial
        :class:`ExperimentResult` objects (and keeps them out of the
        process-pool pipe): the returned set carries tidy records only, which
        is all that record/JSONL consumers need and much lighter for large
        sweeps.

        ``workspace`` lands the whole run in an experiment workspace: pass a
        root directory (a fresh timestamped run folder is created under it)
        or a ready :class:`~repro.campaign.workspace.Workspace` (its existing
        ``results.jsonl``, if any, is resumed from — the coordinator-restart
        path).  The workspace's JSONL becomes the ``save`` target (passing
        ``save``/``resume`` alongside is ambiguous and rejected), and after
        the final persist the workspace collects per-trial artifacts and
        writes ``manifest.json`` and ``report.md`` — see
        ``docs/distributed.md``.
        """
        ws = None
        if workspace is not None:
            from .workspace import Workspace

            if save is not None or resume is not None:
                raise CampaignError(
                    "pass workspace=... or save=/resume=..., not both "
                    "(the workspace owns its results.jsonl)"
                )
            ws = (
                workspace
                if isinstance(workspace, Workspace)
                else Workspace.create(workspace, self.name)
            )
            save = ws.results_path
            if ws.results_path.exists():
                resume = ws.results_path
        trials = self.trials()
        done, stale, pending = self._split_resume(trials, resume)
        target = save if save is not None else resume

        cost_cache = None
        if cores is not None and target is not None:
            from .scheduling import CostCache

            cost_cache = CostCache.for_results_file(target)
        chosen = make_executor(
            executor,
            workers,
            records_only=not keep_results,
            cores=cores,
            cost_cache=cost_cache,
        )
        # An explicit executor that understands cost caches but was built
        # without one gets the cache riding the save target, so distributed
        # runs derive timeouts (and pack waves) from measured costs with no
        # extra plumbing.  Attach-only: never replaces a caller's cache.
        if target is not None and getattr(chosen, "cost_cache", "absent") is None:
            from .scheduling import CostCache

            chosen.cost_cache = CostCache.for_results_file(target)

        def persist(result_set: ResultSet) -> None:
            if target is None:
                return
            # History preservation on rewrite: a stale record is superseded
            # only once a record under the same name actually exists in the
            # set being written (same-name duplicates would blend two runs in
            # any reloaded aggregate).  Names not (yet) re-recorded — dropped
            # sweep points, or trials an interrupted re-seeded run has not
            # reached — keep their old records.
            written = {rec.name for rec in result_set.records}
            kept_stale = [rec for rec in stale if rec.name not in written]
            ResultSet(
                kept_stale + list(result_set.records), campaign=self.name
            ).save(target)

        if target is None:
            outcome_pairs = chosen.run(pending)
        else:
            # With a file to write, run in batches — a pool's worth of trials
            # for the plain executors, one plan wave for the scheduled one —
            # and persist after each, so an interrupted campaign leaves a
            # resumable file instead of losing every finished trial.
            # Deliberate trade-off: the per-batch barrier (and pool re-spawn)
            # costs milliseconds against multi-second simulation trials, and
            # per-trial persistence in the serial case IS the durability
            # feature; revisit with as_completed + appends if trials ever
            # become sub-second at scale.
            outcome_pairs = []
            for batch in chosen.batches(pending):
                outcome_pairs.extend(chosen.run(batch))
                persist(
                    done.merge(
                        ResultSet([rec for rec, _ in outcome_pairs], campaign=self.name)
                    )
                )
            # A planning executor may have run the batches out of trial
            # order; restore it so the persisted record order (and the
            # returned set) is identical to a serial run's.
            order = {t.name: i for i, t in enumerate(pending)}
            outcome_pairs.sort(key=lambda pair: order[pair[0].name])

        fresh = ResultSet(
            [record for record, _ in outcome_pairs],
            campaign=self.name,
            results={
                record.name: result
                for record, result in outcome_pairs
                if result is not None and keep_results
            },
        )
        merged = done.merge(fresh)
        merged.campaign = self.name
        # Always rewrite at the end: after a pure replay the file still needs
        # the pruned/merged state, and after batched execution this restores
        # the canonical (trial-order) record order on disk.
        persist(merged)
        if ws is not None:
            plan_dict = None
            if hasattr(chosen, "plan"):
                try:
                    plan_dict = chosen.plan(trials).to_dict()
                except Exception:
                    plan_dict = None  # manifest provenance is best-effort
            ws.finalize(
                merged, campaign=self.name, executor=chosen, plan=plan_dict
            )
        return merged
