"""Resource-aware campaign scheduling: pack trials onto a core budget.

``ParallelExecutor(workers=W)`` treats every trial as one unit of work, but a
sharded trial (``ExperimentConfig(shards=N)``) occupies *N* simulator
processes while it runs.  Naively fanning a mixed campaign out over ``W``
workers therefore puts up to ``W x N`` simulator processes on ``C`` CPUs,
and the resulting time-slicing wastes exactly the cache locality the shard
runtime's conservative windows depend on.

This module plans instead of guessing:

* every :class:`~repro.campaign.core.Trial` is introspected for its
  **resource footprint** — ``slots`` (the number of simultaneously live
  simulator processes it needs, i.e. ``max(1, config.shards)``) and an
  **estimated cost** (topology size x simulated duration, optionally
  replaced by a measured wall-clock cost cached from a previous run);
* :func:`plan_trials` packs the trials onto a core budget with
  longest-processing-time-first ordering, producing an
  :class:`ExecutionPlan` of *waves*: groups of trials that run
  concurrently, with the guarantee that the sum of slots in a wave never
  exceeds the budget;
* :class:`ScheduledExecutor` executes the plan wave by wave through the same
  process-pool machinery as :class:`~repro.campaign.executors.ParallelExecutor`,
  so records stay bit-identical to a serial run.

A trial whose ``shards`` exceed the whole budget cannot fit any wave; it is
*degraded gracefully*: it runs alone in an exclusive wave (nothing else
concurrent) with its full shard count, and the plan marks it
``oversubscribed``.  Rewriting ``shards=N`` to ``shards=1`` would also be
record-preserving for the *canonical* records, but it changes the
``events_processed`` metric of the trial record, so the planner never does
it silently.

Entry points: ``Campaign.run(cores=...)``, ``Campaign.plan(cores=...)``, and
the CLI's ``--cores`` / ``--dry-run`` flags.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .executors import (
    Executor,
    _run_pool,
    execute_trial,
    execute_trial_record_only,
)
from .results import CampaignError, TrialRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentConfig, ExperimentResult

    from .core import Trial

#: Environment variable consulted by ``cores="auto"``.
CORES_ENV = "REPRO_CORES"


def detect_cores() -> int:
    """The machine's core budget: ``REPRO_CORES`` if set, else the CPU count.

    ``REPRO_CORES`` exists for containers whose ``os.cpu_count()`` reports
    the host's cores rather than the container's quota, and for CI runners
    that want a pinned, reproducible plan.
    """
    value = os.environ.get(CORES_ENV, "").strip()
    if value:
        try:
            cores = int(value)
        except ValueError:
            raise CampaignError(
                f"{CORES_ENV} must be an integer, got {value!r}"
            ) from None
        if cores < 1:
            raise CampaignError(f"{CORES_ENV} must be >= 1, got {cores}")
        return cores
    return os.cpu_count() or 1


def resolve_cores(cores: Union[int, str, None]) -> int:
    """Normalize a ``cores`` argument (``"auto"``/``None``/int) to an int."""
    if cores is None or cores == "auto":
        return detect_cores()
    try:
        cores = int(cores)
    except (TypeError, ValueError):
        raise CampaignError(
            f"cores must be an integer or 'auto', got {cores!r}"
        ) from None
    if cores < 1:
        raise CampaignError(f"cores must be >= 1, got {cores}")
    return cores


# ---------------------------------------------------------------------------
# Resource footprint introspection
# ---------------------------------------------------------------------------


def trial_slots(trial: "Trial") -> int:
    """Simulator processes a trial keeps alive: ``max(1, config.shards)``.

    The coordinator process of a sharded run only builds the topology and
    then blocks on barriers, so it is not counted as a slot.
    """
    config = trial.config
    return max(1, getattr(config, "shards", 1) or 1)


#: Planning-cost multiplier applied when a sharded trial resolves to
#: speculative sync.  Time-warp rounds re-execute rolled-back events and
#: pay checkpoint captures/restores on top of the base event work; on
#: dense-cut partitions the overhead is a small integer factor (see
#: ``benchmarks/BENCH_shard_scaling.json`` for measured numbers).  Relative,
#: like the rest of the cost model — it exists so LPT packing does not
#: schedule a speculative trial as if it were a conservative one.
SPECULATIVE_COST_FACTOR = 4.0


def _estimated_window_ns(config: "ExperimentConfig") -> Optional[int]:
    """Best static guess of the partition's sync window, without building it.

    Mirrors how :func:`repro.shard.partition.partition_topology` derives the
    window (the smallest cut-link delay): the inter-DC gateway delay when a
    cross-DC topology splits per DC, otherwise the intra-fabric link delay.
    """
    cross_dc = getattr(config, "cross_dc", None)
    strategy = getattr(config, "shard_strategy", "auto") or "auto"
    if cross_dc is not None:
        if strategy in ("auto", "dc"):
            return cross_dc.gateway_delay_ns
        return cross_dc.dc_params.link_delay_ns
    return config.clos.link_delay_ns


def sync_cost_factor(config: "ExperimentConfig") -> float:
    """Cost multiplier for the trial's shard synchronization mode.

    ``adaptive`` is resolved the same way :class:`repro.shard.SyncPolicy`
    resolves it — speculative below the window threshold, conservative above
    — using the statically estimated window.
    """
    shards = getattr(config, "shards", 1) or 1
    if shards <= 1:
        return 1.0
    sync = getattr(config, "shard_sync", "conservative") or "conservative"
    if sync == "speculative":
        return SPECULATIVE_COST_FACTOR
    if sync == "adaptive":
        from repro.shard.speculative import ADAPTIVE_WINDOW_NS

        window = _estimated_window_ns(config)
        if window is not None and window < ADAPTIVE_WINDOW_NS:
            return SPECULATIVE_COST_FACTOR
    return 1.0


def estimate_cost(config: "ExperimentConfig") -> float:
    """Relative cost estimate of one run: topology size x simulated time.

    Event volume scales roughly with the number of traffic sources times the
    simulated duration (drain included), which is all that is knowable
    without running the trial.  Sharded trials using speculative sync carry
    a constant overhead multiplier (:func:`sync_cost_factor`) for rollback
    re-execution and checkpoint churn.  The estimate is *relative* — good
    enough to order trials for LPT packing; :class:`CostCache` replaces it
    with measured wall-clock seconds once a trial has run at least once.
    """
    if config.cross_dc is not None:
        hosts = 2 * config.cross_dc.dc_params.num_hosts
    else:
        hosts = config.clos.num_hosts
    return float(hosts) * float(config.total_duration_ns()) * sync_cost_factor(config)


def trial_key(trial: "Trial") -> str:
    """Stable identity of a trial for the measured-cost cache.

    Matches the resume identity of :meth:`Campaign.run` — name, seed and the
    full params dict (config fingerprints included) — so a cached cost is
    never applied to a trial whose config has changed under the same name.
    """
    return json.dumps(
        [trial.name, trial.seed, dict(trial.params)], sort_keys=True, default=str
    )


class CostCache:
    """Measured wall-clock costs of past trials, persisted as JSON.

    Lives next to the campaign's JSONL results file
    (``demo.jsonl`` -> ``demo.costs.json``) and is consulted by
    :func:`plan_trials`: a trial with a recorded cost is packed by its real
    wall-clock seconds instead of the topology-size estimate.  The cache is
    advisory — a corrupt or missing file simply means estimated costs.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._costs: Dict[str, float] = {}
        if self.path is not None and self.path.exists():
            try:
                payload = json.loads(self.path.read_text(encoding="utf-8"))
                costs = payload.get("costs", {}) if isinstance(payload, dict) else {}
                if not isinstance(costs, dict):
                    costs = {}
                self._costs = {
                    str(k): float(v)
                    for k, v in costs.items()
                    if isinstance(v, (int, float)) and v >= 0
                }
            except (OSError, ValueError):
                self._costs = {}

    @classmethod
    def for_results_file(cls, results_path: Union[str, Path]) -> "CostCache":
        """The cache that rides along a campaign JSONL file."""
        results_path = Path(results_path)
        return cls(results_path.with_name(results_path.stem + ".costs.json"))

    def __len__(self) -> int:
        return len(self._costs)

    def lookup(self, trial: "Trial") -> Optional[float]:
        return self._costs.get(trial_key(trial))

    def record(self, trial: "Trial", wall_seconds: float) -> None:
        if wall_seconds >= 0:
            self._costs[trial_key(trial)] = float(wall_seconds)

    def save(self) -> Optional[Path]:
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"kind": "repro.campaign.costcache", "version": 1, "costs": self._costs}
        self.path.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8"
        )
        return self.path


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannedTrial:
    """One trial's placement in an :class:`ExecutionPlan`."""

    index: int  #: position in the planned trial list
    name: str
    slots: int  #: concurrent slots charged against the budget (capped at cores)
    requested_slots: int  #: the trial's true footprint (``max(1, shards)``)
    cost: float  #: packing cost (seconds when measured/calibrated, else relative)
    measured: bool  #: True when the cost came from the :class:`CostCache`
    oversubscribed: bool  #: ``requested_slots > cores``: runs alone, time-sliced


@dataclass
class ExecutionPlan:
    """Waves of concurrently-runnable trials under a core budget.

    Waves execute one after the other with a barrier in between (which is
    also where an interrupted campaign persists its finished records); within
    a wave every trial runs concurrently, and the wave's slot total never
    exceeds ``cores`` — so at no instant do more than ``cores`` simulator
    processes exist, except for an explicitly ``oversubscribed`` trial whose
    own shard count is larger than the whole budget.
    """

    cores: int
    waves: List[List[PlannedTrial]] = field(default_factory=list)
    cost_unit: str = "rel"  #: "s" when costs are measured/calibrated seconds

    @property
    def num_trials(self) -> int:
        return sum(len(wave) for wave in self.waves)

    def wave_slots(self, wave: Sequence[PlannedTrial]) -> int:
        return sum(entry.slots for entry in wave)

    def oversubscribed(self) -> List[PlannedTrial]:
        return [e for wave in self.waves for e in wave if e.oversubscribed]

    def max_live_processes(self) -> int:
        """Peak simultaneously-live simulator processes under this plan."""
        peak = 0
        for wave in self.waves:
            peak = max(peak, sum(entry.requested_slots for entry in wave))
        return peak

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering of the plan (the CLI's ``--dry-run --json``)."""
        return {
            "cores": self.cores,
            "cost_unit": self.cost_unit,
            "num_trials": self.num_trials,
            "max_live_processes": self.max_live_processes(),
            "waves": [
                {
                    "slots": self.wave_slots(wave),
                    "trials": [
                        {
                            "name": entry.name,
                            "slots": entry.requested_slots,
                            "cost": entry.cost,
                            "measured": entry.measured,
                            "oversubscribed": entry.oversubscribed,
                        }
                        for entry in wave
                    ],
                }
                for wave in self.waves
            ],
        }

    def describe(self) -> str:
        """Human-readable plan preview (the CLI's ``--dry-run`` output)."""
        unit = "s" if self.cost_unit == "s" else ""
        lines = [
            f"plan: {self.num_trials} trial(s) on {self.cores} core(s), "
            f"{len(self.waves)} wave(s)"
        ]
        for number, wave in enumerate(self.waves, start=1):
            lines.append(
                f"  wave {number} ({self.wave_slots(wave)}/{self.cores} slots):"
            )
            for entry in wave:
                mark = "*" if entry.measured else "~"
                detail = f"slots={entry.requested_slots}  cost{mark}{entry.cost:.3g}{unit}"
                if entry.oversubscribed:
                    detail += (
                        f"  [oversubscribed: {entry.requested_slots} shard "
                        f"processes > {self.cores} core(s); runs alone]"
                    )
                lines.append(f"    {entry.name:<44s} {detail}")
        if any(e.measured for wave in self.waves for e in wave):
            lines.append("  (* = measured cost from cache, ~ = estimate)")
        return "\n".join(lines)


def _calibrated_costs(
    trials: Sequence["Trial"], cost_cache: Optional[CostCache]
) -> Tuple[List[float], List[bool], str]:
    """Per-trial packing costs, mixing measured seconds with estimates.

    Measured wall-clock seconds and topology-size estimates live on
    different scales; when both appear in one campaign the estimates are
    rescaled by the mean measured/estimated ratio of the trials that have
    both, so LPT compares comparable numbers.  With no measurements the raw
    estimates are used (ordering is all LPT needs).
    """
    estimates = [max(1.0, estimate_cost(t.config)) for t in trials]
    measured: List[Optional[float]] = [
        cost_cache.lookup(t) if cost_cache is not None else None for t in trials
    ]
    ratios = [m / e for m, e in zip(measured, estimates) if m is not None and m > 0]
    if not ratios:
        return estimates, [m is not None for m in measured], (
            "s" if any(m is not None for m in measured) else "rel"
        )
    scale = sum(ratios) / len(ratios)
    costs = [
        m if m is not None else e * scale for m, e in zip(measured, estimates)
    ]
    return costs, [m is not None for m in measured], "s"


def plan_trials(
    trials: Sequence["Trial"],
    cores: Union[int, str, None] = "auto",
    cost_cache: Optional[CostCache] = None,
) -> ExecutionPlan:
    """Pack trials into waves under a core budget (LPT + first-fit-decreasing).

    Deterministic: equal-cost ties break on the trial's position in the
    input list, and the entries inside each wave are ordered by that position
    too, so the same trial list always yields the same plan (asserted by
    ``tests/test_campaign_scheduling.py``).
    """
    budget = resolve_cores(cores)
    costs, measured, cost_unit = _calibrated_costs(trials, cost_cache)
    entries = []
    for index, trial in enumerate(trials):
        requested = trial_slots(trial)
        entries.append(
            PlannedTrial(
                index=index,
                name=trial.name,
                slots=min(requested, budget),
                requested_slots=requested,
                cost=costs[index],
                measured=measured[index],
                oversubscribed=requested > budget,
            )
        )
    # Longest processing time first; stable tie-break on input position.
    order = sorted(entries, key=lambda e: (-e.cost, e.index))
    waves: List[List[PlannedTrial]] = []
    free: List[int] = []  # free slots per wave, parallel to `waves`
    for entry in order:
        if entry.oversubscribed:
            # Cannot fit anywhere: exclusive wave, nothing else concurrent.
            waves.append([entry])
            free.append(0)
            continue
        for wave_index, slots_free in enumerate(free):
            if slots_free >= entry.slots:
                waves[wave_index].append(entry)
                free[wave_index] -= entry.slots
                break
        else:
            waves.append([entry])
            free.append(budget - entry.slots)
    for wave in waves:
        wave.sort(key=lambda e: e.index)
    return ExecutionPlan(cores=budget, waves=waves, cost_unit=cost_unit)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


def _execute_planned(item) -> Tuple[TrialRecord, Optional["ExperimentResult"]]:
    """Run one planned trial (module-level so process pools can pickle it)."""
    trial, slot_budget, records_only = item
    fn = execute_trial_record_only if records_only else execute_trial
    return fn(trial, slot_budget=slot_budget)


class ScheduledExecutor(Executor):
    """Run trials wave by wave according to a resource-aware plan.

    Guarantees of the planned path, relative to
    :class:`~repro.campaign.executors.ParallelExecutor`:

    * at most ``cores`` simulator processes are ever alive at once (a
      sharded trial counts as ``shards`` of them), except for a trial whose
      own shard count exceeds the budget, which runs alone;
    * each sharded trial's coordinator is told its slot budget
      (``ExperimentResult.shard_stats["slot_budget"]``);
    * results are returned in input order and every record is bit-identical
      to a :class:`~repro.campaign.executors.SerialExecutor` run — planning
      only reorders *when* trials run, never what they compute;
    * when a :class:`CostCache` is attached, each finished trial's wall
      clock is recorded so the *next* run of the campaign packs by measured
      cost.
    """

    def __init__(
        self,
        cores: Union[int, str, None] = "auto",
        records_only: bool = False,
        cost_cache: Optional[CostCache] = None,
    ) -> None:
        self.cores = resolve_cores(cores)
        self.workers = self.cores
        self.records_only = records_only
        self.cost_cache = cost_cache
        #: Wave entries keyed by ``id()`` of the batch lists :meth:`batches`
        #: handed out, so :meth:`run` executes a planned wave as-is instead
        #: of re-planning it (identity of the trials is re-verified before
        #: use, so a recycled list id cannot misfire).
        self._planned_batches: Dict[int, List[Tuple["Trial", Optional[int]]]] = {}

    def plan(self, trials: Sequence["Trial"]) -> ExecutionPlan:
        return plan_trials(trials, self.cores, self.cost_cache)

    @staticmethod
    def _wave_entries(trials, wave) -> List[Tuple["Trial", Optional[int]]]:
        # The slot budget is only meaningful to a sharded trial's
        # coordinator; plain trials always occupy exactly one slot.
        return [
            (trials[e.index], e.slots if e.requested_slots > 1 else None)
            for e in wave
        ]

    def batches(self, trials: Sequence["Trial"]) -> List[List["Trial"]]:
        """Persistence batches = plan waves (see :meth:`Executor.batches`).

        The wave structure is remembered, so feeding a returned batch back
        into :meth:`run` (as ``Campaign.run`` does) executes exactly that
        wave — one pool, no re-planning.
        """
        self._planned_batches.clear()
        out: List[List["Trial"]] = []
        for wave in self.plan(trials).waves:
            batch = [trials[entry.index] for entry in wave]
            out.append(batch)
            self._planned_batches[id(batch)] = self._wave_entries(trials, wave)
        return out

    def _execute_wave(
        self, entries: List[Tuple["Trial", Optional[int]]]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        items = [
            (trial, budget, self.records_only) for trial, budget in entries
        ]
        if len(items) == 1:
            pairs = [_execute_planned(items[0])]
        else:
            pairs = _run_pool(_execute_planned, items, len(items))
        if self.cost_cache is not None:
            for (trial, _), pair in zip(entries, pairs):
                self.cost_cache.record(trial, pair[0].wall_seconds)
            self.cost_cache.save()
        return pairs

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        cached = self._planned_batches.pop(id(trials), None)
        if (
            cached is not None
            and len(cached) == len(trials)
            and all(entry[0] is trial for entry, trial in zip(cached, trials))
        ):
            return self._execute_wave(cached)
        plan = self.plan(trials)
        results: List[Optional[Tuple[TrialRecord, Optional["ExperimentResult"]]]] = [
            None
        ] * len(trials)
        for wave in plan.waves:
            pairs = self._execute_wave(self._wave_entries(trials, wave))
            for entry, pair in zip(wave, pairs):
                results[entry.index] = pair
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScheduledExecutor(cores={self.cores})"
