"""Declarative experiment campaigns: grids of runs, executors, tidy results.

This is the public high-level API of the reproduction.  A campaign expands a
{scheme x sweep x repeats} grid into named trials, runs them through a
pluggable executor — serial, a process pool, the resource-aware scheduler,
or a fault-tolerant distributed coordinator dispatching to remote
:class:`WorkerAgent` services — and returns a :class:`ResultSet` of tidy
per-trial records with aggregation helpers and JSONL persistence.  A run can
land in a :class:`Workspace`: one timestamped folder with the JSONL, cost
cache, collected artifacts, a provenance manifest and a Markdown report.
See :mod:`repro.campaign.core` for examples, ``docs/campaigns.md`` and
``docs/distributed.md`` for the guides.
"""

from .core import Campaign, Trial
from .distributed import (
    DistributedError,
    DistributedExecutor,
    WorkerAgent,
    WorkerClient,
    load_workers_file,
)
from .executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WORKERS_ENV,
    default_workers,
    execute_trial,
    execute_trial_record_only,
    make_executor,
)
from .results import CampaignError, ResultSet, TrialRecord, summarize_result
from .scheduling import (
    CORES_ENV,
    CostCache,
    ExecutionPlan,
    PlannedTrial,
    ScheduledExecutor,
    detect_cores,
    estimate_cost,
    plan_trials,
    resolve_cores,
    sync_cost_factor,
    trial_slots,
)
from .workspace import Workspace, render_report

__all__ = [
    "Campaign",
    "CampaignError",
    "Trial",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ScheduledExecutor",
    "DistributedExecutor",
    "DistributedError",
    "WorkerAgent",
    "WorkerClient",
    "load_workers_file",
    "Workspace",
    "render_report",
    "WORKERS_ENV",
    "CORES_ENV",
    "default_workers",
    "detect_cores",
    "resolve_cores",
    "execute_trial",
    "execute_trial_record_only",
    "make_executor",
    "CostCache",
    "ExecutionPlan",
    "PlannedTrial",
    "plan_trials",
    "estimate_cost",
    "sync_cost_factor",
    "trial_slots",
    "ResultSet",
    "TrialRecord",
    "summarize_result",
]
