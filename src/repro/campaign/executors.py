"""Trial executors: run a list of trials serially or across processes.

The simulator is pure Python and single-threaded, and the trials of a
campaign are independent (each builds its own :class:`Simulator` from its own
seed), so a campaign is embarrassingly parallel.  ``ParallelExecutor`` fans
trials out over a :class:`concurrent.futures.ProcessPoolExecutor`; because
every trial is deterministic in its config and seed, the parallel path
produces records bit-identical to ``SerialExecutor``, just faster.

``ParallelExecutor`` counts *trials*; for campaigns whose trials differ in
resource footprint (sharded trials occupy ``shards`` processes each), the
resource-aware :class:`~repro.campaign.scheduling.ScheduledExecutor`
(``Campaign.run(cores=...)``) packs trials onto a CPU-slot budget instead,
and :class:`~repro.campaign.distributed.DistributedExecutor` extends the
same planning across machines with fault-tolerant dispatch to worker
agents.  All four run trials through :func:`execute_trial`, which is what
makes their records interchangeable.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .results import CampaignError, TrialRecord, summarize_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

    from .core import Trial

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_BENCH_WORKERS"


def _env_workers() -> Optional[int]:
    """Worker count from ``REPRO_BENCH_WORKERS``, or None when unset.

    An unparseable value raises rather than silently falling back — the two
    fallbacks differ (serial for Campaign.run, CPU count for a bare
    ParallelExecutor), so a typo would otherwise mean different things in
    different code paths and the user would never learn why.
    """
    value = os.environ.get(WORKERS_ENV, "").strip()
    if not value:
        return None
    try:
        return max(1, int(value))
    except ValueError:
        raise CampaignError(
            f"{WORKERS_ENV} must be an integer, got {value!r}"
        ) from None


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, else 1 (serial)."""
    return _env_workers() or 1


def execute_trial(
    trial: "Trial", slot_budget: Optional[int] = None
) -> Tuple[TrialRecord, "ExperimentResult"]:
    """Run one trial and summarize it (module-level so process pools can pickle it).

    ``slot_budget`` is the number of CPU slots the scheduling layer reserved
    for this trial (see :mod:`repro.campaign.scheduling`); it is forwarded to
    :func:`~repro.experiments.runner.run_experiment`, where a sharded run's
    coordinator records it.  It never changes what is simulated.
    """
    from repro.experiments.runner import run_experiment

    started = time.monotonic()
    result = run_experiment(trial.config, slot_budget=slot_budget)
    record = TrialRecord(
        name=trial.name,
        label=trial.label,
        scheme=trial.scheme,
        params=dict(trial.params),
        repeat=trial.repeat,
        seed=trial.seed,
        metrics=summarize_result(result),
        wall_seconds=time.monotonic() - started,
        artifacts=(
            {"results_dir": result.results_ref} if result.results_ref else {}
        ),
    )
    return record, result


def execute_trial_record_only(
    trial: "Trial", slot_budget: Optional[int] = None
) -> Tuple[TrialRecord, None]:
    """Like :func:`execute_trial` but drop the full result inside the worker.

    The complete :class:`ExperimentResult` (per-flow records, sampler arrays)
    can dwarf the tidy record; for record-only consumers this keeps it out of
    the process-pool pipe and out of resident memory.
    """
    record, _ = execute_trial(trial, slot_budget=slot_budget)
    return record, None


def _run_pool(fn, items: Sequence[object], workers: int) -> List[object]:
    """Map ``fn`` over ``items`` across a fork-preferred process pool.

    Shared by :class:`ParallelExecutor` and the scheduling layer's
    :class:`~repro.campaign.scheduling.ScheduledExecutor`.  ``map()``
    preserves input order, so the result list lines up item for item.
    """
    mp_context = None
    if "fork" in multiprocessing.get_all_start_methods():
        mp_context = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(max_workers=workers, mp_context=mp_context) as pool:
        return list(pool.map(fn, items))


class Executor:
    """Strategy for running the trials of a campaign.

    Subclasses implement :meth:`run` and must preserve trial order and
    determinism: the returned list is parallel to the input and contains, for
    each trial, its record and full experiment result (``None`` with
    ``records_only``, which skips materializing the result past the worker).

    ``Campaign.run`` persists between the chunks :meth:`batches` returns, so
    an executor that parallelizes internally should either set ``workers``
    to its degree of parallelism (the default batching is chunks of
    ``workers`` trials) or override :meth:`batches` outright, as the
    scheduling layer's :class:`~repro.campaign.scheduling.ScheduledExecutor`
    and the distributed coordinator's
    :class:`~repro.campaign.distributed.DistributedExecutor` do with their
    plan waves.
    """

    records_only: bool = False
    workers: int = 1

    def _trial_fn(self):
        return execute_trial_record_only if self.records_only else execute_trial

    def batches(self, trials: Sequence["Trial"]) -> List[List["Trial"]]:
        """Split trials into the chunks ``Campaign.run`` persists between.

        The default is consecutive chunks of ``workers`` trials — one pool's
        worth of work per chunk.  Executors that plan their own concurrency
        structure (:class:`~repro.campaign.scheduling.ScheduledExecutor`)
        override this so the persistence boundary falls on their wave
        barriers instead.
        """
        wave = max(1, self.workers)
        return [list(trials[start : start + wave]) for start in range(0, len(trials), wave)]

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run trials one after the other in this process."""

    def __init__(self, records_only: bool = False) -> None:
        self.records_only = records_only

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        fn = self._trial_fn()
        return [fn(trial) for trial in trials]


class ParallelExecutor(Executor):
    """Run trials across a process pool.

    ``workers=None`` consults ``REPRO_BENCH_WORKERS`` and falls back to the
    machine's CPU count.  With one trial (or one worker) the pool is skipped
    entirely so small campaigns pay no fork overhead.

    The pool prefers the ``fork`` start method where available so schemes
    registered at runtime with ``@register_scheme`` are visible in the
    workers.  On spawn-only platforms (Windows), plug-in schemes must be
    registered at import time in a module the workers import too.
    """

    def __init__(self, workers: Optional[int] = None, records_only: bool = False) -> None:
        if workers is None:
            # An explicit REPRO_BENCH_WORKERS=1 means serial and is honored;
            # only a genuinely unset env falls back to the CPU count.
            env = _env_workers()
            workers = env if env is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.records_only = records_only

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        effective = min(self.workers, len(trials))
        if effective <= 1:
            return SerialExecutor(records_only=self.records_only).run(trials)
        # _run_pool's map() preserves input order, so the parallel result
        # list lines up with the serial one trial for trial.
        return _run_pool(self._trial_fn(), list(trials), effective)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(
    executor: Optional[Executor] = None,
    workers: Optional[int] = None,
    records_only: bool = False,
    cores=None,
    cost_cache=None,
) -> Executor:
    """Resolve the executor for ``Campaign.run(executor=..., workers=..., cores=...)``.

    ``executor`` wins over both count arguments.  ``cores`` (an int or
    ``"auto"``) selects the resource-aware
    :class:`~repro.campaign.scheduling.ScheduledExecutor`, which treats a
    sharded trial as ``shards`` slots; ``workers`` keeps the historical
    trial-counting :class:`ParallelExecutor`.  Passing both is ambiguous and
    rejected.
    """
    if executor is not None and cores is not None:
        raise CampaignError("pass executor=... or cores=..., not both")
    if workers is not None and cores is not None:
        raise CampaignError(
            "pass workers=... (trial-counting pool) or cores=... "
            "(shard-aware scheduling), not both"
        )
    if executor is not None:
        if records_only and not executor.records_only:
            # Honor keep_results=False without mutating the caller's executor.
            executor = copy.copy(executor)
            executor.records_only = True
        return executor
    if cores is not None:
        from .scheduling import ScheduledExecutor

        return ScheduledExecutor(cores, records_only=records_only, cost_cache=cost_cache)
    if workers is None:
        workers = default_workers()
    elif workers < 1:
        # Same validation ParallelExecutor applies; a 0 or negative count is
        # a mistake, not a request for serial execution.
        raise CampaignError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        return ParallelExecutor(workers, records_only=records_only)
    return SerialExecutor(records_only=records_only)
