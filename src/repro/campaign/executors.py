"""Trial executors: run a list of trials serially or across processes.

The simulator is pure Python and single-threaded, and the trials of a
campaign are independent (each builds its own :class:`Simulator` from its own
seed), so a campaign is embarrassingly parallel.  ``ParallelExecutor`` fans
trials out over a :class:`concurrent.futures.ProcessPoolExecutor`; because
every trial is deterministic in its config and seed, the parallel path
produces records bit-identical to ``SerialExecutor``, just faster.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .results import CampaignError, TrialRecord, summarize_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

    from .core import Trial

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_BENCH_WORKERS"


def _env_workers() -> Optional[int]:
    """Worker count from ``REPRO_BENCH_WORKERS``, or None when unset.

    An unparseable value raises rather than silently falling back — the two
    fallbacks differ (serial for Campaign.run, CPU count for a bare
    ParallelExecutor), so a typo would otherwise mean different things in
    different code paths and the user would never learn why.
    """
    value = os.environ.get(WORKERS_ENV, "").strip()
    if not value:
        return None
    try:
        return max(1, int(value))
    except ValueError:
        raise CampaignError(
            f"{WORKERS_ENV} must be an integer, got {value!r}"
        ) from None


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS``, else 1 (serial)."""
    return _env_workers() or 1


def execute_trial(trial: "Trial") -> Tuple[TrialRecord, "ExperimentResult"]:
    """Run one trial and summarize it (module-level so process pools can pickle it)."""
    from repro.experiments.runner import run_experiment

    started = time.monotonic()
    result = run_experiment(trial.config)
    record = TrialRecord(
        name=trial.name,
        label=trial.label,
        scheme=trial.scheme,
        params=dict(trial.params),
        repeat=trial.repeat,
        seed=trial.seed,
        metrics=summarize_result(result),
        wall_seconds=time.monotonic() - started,
    )
    return record, result


def execute_trial_record_only(trial: "Trial") -> Tuple[TrialRecord, None]:
    """Like :func:`execute_trial` but drop the full result inside the worker.

    The complete :class:`ExperimentResult` (per-flow records, sampler arrays)
    can dwarf the tidy record; for record-only consumers this keeps it out of
    the process-pool pipe and out of resident memory.
    """
    record, _ = execute_trial(trial)
    return record, None


class Executor:
    """Strategy for running the trials of a campaign.

    Subclasses implement :meth:`run` and must preserve trial order and
    determinism: the returned list is parallel to the input and contains, for
    each trial, its record and full experiment result (``None`` with
    ``records_only``, which skips materializing the result past the worker).

    ``workers`` is part of the contract: ``Campaign.run`` sizes its
    incremental-persistence waves to it, so an executor that parallelizes
    internally should set it to its degree of parallelism (the default of 1
    feeds such an executor one trial at a time whenever a save/resume file
    is in play).
    """

    records_only: bool = False
    workers: int = 1

    def _trial_fn(self):
        return execute_trial_record_only if self.records_only else execute_trial

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Run trials one after the other in this process."""

    def __init__(self, records_only: bool = False) -> None:
        self.records_only = records_only

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        fn = self._trial_fn()
        return [fn(trial) for trial in trials]


class ParallelExecutor(Executor):
    """Run trials across a process pool.

    ``workers=None`` consults ``REPRO_BENCH_WORKERS`` and falls back to the
    machine's CPU count.  With one trial (or one worker) the pool is skipped
    entirely so small campaigns pay no fork overhead.

    The pool prefers the ``fork`` start method where available so schemes
    registered at runtime with ``@register_scheme`` are visible in the
    workers.  On spawn-only platforms (Windows), plug-in schemes must be
    registered at import time in a module the workers import too.
    """

    def __init__(self, workers: Optional[int] = None, records_only: bool = False) -> None:
        if workers is None:
            # An explicit REPRO_BENCH_WORKERS=1 means serial and is honored;
            # only a genuinely unset env falls back to the CPU count.
            env = _env_workers()
            workers = env if env is not None else (os.cpu_count() or 1)
        if workers < 1:
            raise CampaignError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.records_only = records_only

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        effective = min(self.workers, len(trials))
        if effective <= 1:
            return SerialExecutor(records_only=self.records_only).run(trials)
        mp_context = None
        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=effective, mp_context=mp_context) as pool:
            # map() preserves input order, so the parallel result list lines
            # up with the serial one trial for trial.
            return list(pool.map(self._trial_fn(), trials))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(
    executor: Optional[Executor] = None,
    workers: Optional[int] = None,
    records_only: bool = False,
) -> Executor:
    """Resolve the executor for ``Campaign.run(executor=..., workers=...)``."""
    if executor is not None:
        if records_only and not executor.records_only:
            # Honor keep_results=False without mutating the caller's executor.
            executor = copy.copy(executor)
            executor.records_only = True
        return executor
    if workers is None:
        workers = default_workers()
    elif workers < 1:
        # Same validation ParallelExecutor applies; a 0 or negative count is
        # a mistake, not a request for serial execution.
        raise CampaignError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        return ParallelExecutor(workers, records_only=records_only)
    return SerialExecutor(records_only=records_only)
