"""Tidy per-trial records and campaign result sets.

A campaign produces one :class:`TrialRecord` per trial: the trial's identity
(name, scheme, swept parameters, repeat index, seed) plus a flat dictionary of
deterministic scalar metrics harvested from the simulation.  Records are
JSON-serializable so a whole campaign can be written to a JSONL file, diffed
across commits, reloaded and aggregated without re-running any simulation.

Wall-clock time is kept on the record for reporting but excluded from
equality: two runs of the same campaign (serial or parallel, today or next
week) compare equal iff the simulated outcomes are identical.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.runner import ExperimentResult

class CampaignError(ValueError):
    """A campaign was defined or configured incorrectly (user input error).

    Distinct from the simulator's own ``ValueError``s so front-ends (the CLI)
    can render definition mistakes as clean usage errors while genuine
    simulation bugs keep their tracebacks.
    """


#: Version stamp written to the JSONL header line.
FORMAT_VERSION = 1

_HEADER_KIND = "repro.campaign.resultset"


def summarize_result(result: "ExperimentResult") -> Dict[str, float]:
    """Flatten one :class:`ExperimentResult` into deterministic scalar metrics.

    Everything here is a pure function of the simulation (no wall-clock), so
    the same config and seed always produce the same metrics dict.
    """
    pause = result.pause_fraction_by_class()
    return {
        "flows_offered": result.flows_offered,
        "completion_rate": result.completion_rate(),
        "p99_slowdown": result.p99_slowdown(),
        "mean_slowdown": result.mean_slowdown(),
        "dropped_packets": result.dropped_packets,
        "p99_buffer_bytes": result.buffer_sampler.percentile(99),
        "max_buffer_bytes": result.buffer_sampler.max_occupancy(),
        "max_pfc_pause_fraction": max(pause.values()) if pause else 0.0,
        "mean_utilization": result.mean_utilization(),
        "collision_fraction": result.collision_fraction or 0.0,
        "events_processed": result.events_processed,
    }


@dataclass
class TrialRecord:
    """One row of a campaign: trial identity plus its measured metrics."""

    name: str
    label: str
    scheme: str
    params: Dict[str, object] = field(default_factory=dict)
    repeat: int = 0
    seed: int = 1
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = field(default=0.0, compare=False)
    #: Durable on-disk artifacts the trial left behind, keyed by kind —
    #: notably ``"results_dir"``: the spilled ``repro.results`` directory
    #: when the trial ran with ``results_dir`` set.  Excluded from equality
    #: (two runs of the same trial into different scratch dirs are the same
    #: trial) but persisted through JSONL, so a reloaded campaign can re-open
    #: full per-flow data via :meth:`ResultSet.analyzer_for`.
    artifacts: Dict[str, str] = field(default_factory=dict, compare=False)

    def get(self, key: str):
        """Look a key up across identity fields, params and metrics.

        This is what the aggregation helpers use, so ``"scheme"``, a swept
        parameter like ``"load"`` and a metric like ``"p99_slowdown"`` can all
        be used as grouping keys or values.
        """
        if key in ("name", "label", "scheme", "repeat", "seed", "wall_seconds"):
            return getattr(self, key)
        if key in self.params:
            return self.params[key]
        if key in self.metrics:
            return self.metrics[key]
        raise KeyError(
            f"record {self.name!r} has no field, param or metric {key!r}; "
            f"params: {sorted(self.params)}; metrics: {sorted(self.metrics)}"
        )

    def to_dict(self) -> Dict[str, object]:
        payload = {
            "name": self.name,
            "label": self.label,
            "scheme": self.scheme,
            "params": dict(self.params),
            "repeat": self.repeat,
            "seed": self.seed,
            "metrics": dict(self.metrics),
            "wall_seconds": self.wall_seconds,
        }
        # Written only when present, so files from artifact-less campaigns
        # stay byte-identical to the pre-artifact format.
        if self.artifacts:
            payload["artifacts"] = dict(self.artifacts)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrialRecord":
        return cls(
            name=payload["name"],
            label=payload.get("label", payload["name"]),
            scheme=payload.get("scheme", ""),
            params=dict(payload.get("params", {})),
            repeat=int(payload.get("repeat", 0)),
            seed=int(payload.get("seed", 1)),
            metrics=dict(payload.get("metrics", {})),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            artifacts=dict(payload.get("artifacts", {})),
        )


GroupKey = Union[object, Tuple[object, ...]]


class ResultSet:
    """The outcome of a campaign: records, aggregation and persistence.

    Records are always present.  The full :class:`ExperimentResult` objects
    (flow records, samplers, ...) are retained only for result sets produced
    by running a campaign in this process; a set reloaded from JSONL carries
    records alone.
    """

    def __init__(
        self,
        records: Iterable[TrialRecord] = (),
        campaign: Optional[str] = None,
        results: Optional[Dict[str, "ExperimentResult"]] = None,
    ) -> None:
        self.campaign = campaign
        self.records: List[TrialRecord] = list(records)
        self._results: Dict[str, "ExperimentResult"] = dict(results or {})

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TrialRecord]:
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        # Order-insensitive: a resumed or parallel campaign may append records
        # in a different order without changing the outcome.
        key: Callable[[TrialRecord], str] = lambda r: r.name
        return sorted(self.records, key=key) == sorted(other.records, key=key)

    def names(self) -> List[str]:
        return [record.name for record in self.records]

    def record(self, name: str) -> TrialRecord:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(f"no record named {name!r} in campaign {self.campaign!r}")

    def filter(self, **criteria) -> "ResultSet":
        """Sub-select records by identity/param/metric equality."""
        kept = [
            rec
            for rec in self.records
            if all(rec.get(key) == value for key, value in criteria.items())
        ]
        return ResultSet(
            kept,
            campaign=self.campaign,
            results={r.name: self._results[r.name] for r in kept if r.name in self._results},
        )

    def merge(self, other: "ResultSet") -> "ResultSet":
        """Union of two result sets; on a name clash ``other`` wins."""
        by_name = {rec.name: rec for rec in self.records}
        by_name.update({rec.name: rec for rec in other.records})
        results = dict(self._results)
        results.update(other._results)
        return ResultSet(
            by_name.values(),
            campaign=self.campaign or other.campaign,
            results={n: r for n, r in results.items() if n in by_name},
        )

    # -- full experiment results -------------------------------------------

    def has_experiment_results(self) -> bool:
        return bool(self._results)

    def experiment_result(self, name: str) -> "ExperimentResult":
        try:
            return self._results[name]
        except KeyError:
            raise KeyError(
                f"no ExperimentResult retained for {name!r} (result sets loaded "
                "from JSONL carry records only; re-run the campaign for full results)"
            ) from None

    def experiment_results(self) -> Dict[str, "ExperimentResult"]:
        """Full results keyed by trial name (only for in-process runs)."""
        return dict(self._results)

    def experiment_results_by_label(self) -> Dict[str, "ExperimentResult"]:
        """Full results keyed by the trial's short label.

        This is the shape the benchmark harness and the CLI tables want:
        ``Campaign.from_configs`` keeps the original ``{label: config}`` keys
        as labels, so this round-trips a config map to a result map.

        Raises if any record lacks a retained result (run with
        ``keep_results=False``, or replayed from a JSONL resume) rather than
        silently returning a partial map.
        """
        missing = [rec.label for rec in self.records if rec.name not in self._results]
        if missing:
            raise KeyError(
                f"no ExperimentResult retained for {len(missing)} of "
                f"{len(self.records)} trial(s) (e.g. {missing[0]!r}); results "
                "are not kept with keep_results=False and cannot be recovered "
                "from a JSONL resume — re-run those trials for full results"
            )
        counts = Counter(rec.label for rec in self.records)
        duplicated = sorted(label for label, n in counts.items() if n > 1)
        if duplicated:
            raise KeyError(
                f"label(s) {duplicated[:3]} are not unique in this result set "
                "(e.g. after merging campaigns); key by trial name via "
                "experiment_results() instead"
            )
        return {rec.label: self._results[rec.name] for rec in self.records}

    # -- spilled artifacts ---------------------------------------------------

    def artifacts_by_label(self, kind: str = "results_dir") -> Dict[str, str]:
        """``{label: path}`` for every record carrying a ``kind`` artifact.

        Unlike :meth:`experiment_results_by_label` this survives a JSONL
        reload: artifact paths are persisted with the record, so a campaign
        run with ``results_dir`` set can be analyzed long after (and outside)
        the process that ran it.
        """
        return {
            rec.label: rec.artifacts[kind]
            for rec in self.records
            if kind in rec.artifacts
        }

    def analyzer_for(self, label: str):
        """A :class:`repro.results.ResultsAnalyzer` over one trial's spill dir.

        Raises ``KeyError`` if no record has that label or the record carries
        no ``results_dir`` artifact (trial ran with the in-memory harvest).
        """
        from repro.results import ResultsAnalyzer

        for rec in self.records:
            if rec.label == label:
                if "results_dir" not in rec.artifacts:
                    raise KeyError(
                        f"trial {label!r} has no results_dir artifact; run its "
                        "campaign with ExperimentConfig.results_dir set to spill "
                        "per-flow records to disk"
                    )
                return ResultsAnalyzer(rec.artifacts["results_dir"])
        raise KeyError(f"no record labelled {label!r} in campaign {self.campaign!r}")

    # -- aggregation --------------------------------------------------------

    def aggregate(
        self,
        metric: str,
        by: Sequence[str],
        agg: Callable[[Sequence[float]], float] = None,
    ) -> Dict[GroupKey, float]:
        """Group records by the ``by`` keys and reduce ``metric`` per group.

        ``by`` keys and ``metric`` may name identity fields, swept params or
        metrics (see :meth:`TrialRecord.get`).  The default reduction is the
        mean, which averages across repeats.
        """
        if agg is None:
            agg = lambda values: sum(values) / len(values)
        groups: Dict[GroupKey, List[float]] = {}
        for rec in self.records:
            key_parts = tuple(rec.get(k) for k in by)
            key: GroupKey = key_parts[0] if len(key_parts) == 1 else key_parts
            groups.setdefault(key, []).append(float(rec.get(metric)))
        return {key: agg(values) for key, values in groups.items()}

    def p99_slowdown_by(self, *by: str) -> Dict[GroupKey, float]:
        """Mean (over repeats) p99 FCT slowdown per ``by`` group."""
        return self.aggregate("p99_slowdown", by or ("scheme",))

    def mean_slowdown_by(self, *by: str) -> Dict[GroupKey, float]:
        return self.aggregate("mean_slowdown", by or ("scheme",))

    def completion_rate_by(self, *by: str) -> Dict[GroupKey, float]:
        return self.aggregate("completion_rate", by or ("scheme",))

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> Path:
        """Write the campaign as JSONL: one header line, one line per record."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            header = {
                "kind": _HEADER_KIND,
                "version": FORMAT_VERSION,
                "campaign": self.campaign,
            }
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for rec in self.records:
                # default=str: params may carry non-JSON values (e.g. a
                # BfcConfig passed through .fixed()); their deterministic
                # repr keeps the record serializable and identity-stable.
                fh.write(json.dumps(rec.to_dict(), sort_keys=True, default=str) + "\n")
        return path

    @classmethod
    def load(cls, path) -> "ResultSet":
        """Reload a JSONL file written by :meth:`save` (records only)."""
        path = Path(path)
        campaign: Optional[str] = None
        records: List[TrialRecord] = []
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if payload.get("kind") == _HEADER_KIND:
                    campaign = payload.get("campaign")
                    continue
                records.append(TrialRecord.from_dict(payload))
        return cls(records, campaign=campaign)
