"""Experiment workspaces: one campaign run = one browsable folder.

A big parameter grid is more than its JSONL: there is the measured-cost
cache that makes the next run pack better, the per-trial spill artifacts,
the provenance of the code and machines that produced it, and the tables a
reader actually wants to see.  A :class:`Workspace` gathers all of that
under one timestamped directory::

    <root>/<campaign>-<UTC timestamp>/
        results.jsonl       # the campaign JSONL (resume/identity contract)
        results.costs.json  # measured-cost cache (rides the JSONL, as always)
        artifacts/          # per-trial spill dirs, copied in and re-pointed
        manifest.json       # git SHA, platform, worker roster, plan
        report.md           # aggregate + p99-slowdown tables per sweep axis

Entry points: ``Campaign.run(workspace=...)`` (a root path or a ready
:class:`Workspace`), the CLI's ``repro campaign --workspace``, and
``repro report`` to regenerate ``report.md`` from any results JSONL.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from .results import ResultSet, TrialRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executors import Executor

MANIFEST_KIND = "repro.campaign.manifest"
MANIFEST_VERSION = 1

#: Aggregate columns of every report table: (heading, metric key).
_REPORT_METRICS = (
    ("p99 slowdown", "p99_slowdown"),
    ("mean slowdown", "mean_slowdown"),
    ("completion rate", "completion_rate"),
)


def _git_revision() -> Optional[Dict[str, object]]:
    """Best-effort git provenance of the running checkout (None outside git)."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "-C", here, "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "-C", here, "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
        return {
            "sha": sha.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


def _safe_name(name: str) -> str:
    """A trial name as a single path component (mirrors the spill-run naming)."""
    return name.replace("/", "-").replace(" ", "_").replace("\\", "-")


def sweep_axes(records: Sequence[TrialRecord]) -> List[str]:
    """The param keys that actually vary across records — the report's axes.

    A key only present on some records counts as varying too (mixed
    campaigns).  Values are compared by their deterministic ``repr`` so
    non-JSON sweep values (config objects) group correctly.
    """
    values: Dict[str, set] = {}
    for rec in records:
        for key in rec.params:
            values.setdefault(key, set())
    for rec in records:
        for key, seen in values.items():
            seen.add(repr(rec.params.get(key, None)))
    return sorted(key for key, seen in values.items() if len(seen) > 1)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
    return lines


def render_report(result_set: ResultSet, title: Optional[str] = None) -> str:
    """The Markdown report for a result set: the standard tables.

    * one **overall** table: the aggregate metrics per scheme (mean over
      repeats and all sweep points);
    * one table **per sweep axis** (every param that varies), broken down by
      axis value × scheme — the shape of the paper's figures (e.g.
      p99 slowdown vs load);
    * a per-trial appendix with seeds and wall-clock times.

    Pure function of the records, so ``repro report`` can regenerate it from
    any campaign JSONL at any time.
    """
    records = sorted(result_set.records, key=lambda r: r.name)
    name = title or result_set.campaign or "campaign"
    schemes = sorted({rec.scheme for rec in records})
    axes = sweep_axes(records)
    lines = [f"# Campaign report: {name}", ""]
    lines += [
        f"- trials: {len(records)}",
        f"- schemes: {', '.join(schemes) if schemes else '(none)'}",
        f"- sweep axes: {', '.join(axes) if axes else '(none)'}",
        f"- repeats: {max((rec.repeat for rec in records), default=0) + 1}",
        "",
    ]
    if not records:
        lines.append("_No records._")
        return "\n".join(lines) + "\n"

    def grouped(by: Sequence[str]):
        out = {}
        for heading, metric in _REPORT_METRICS:
            try:
                out[heading] = result_set.aggregate(metric, by)
            except KeyError:
                continue  # metric absent from these records: drop the column
        return out

    lines += ["## Overall (mean over repeats and sweep points)", ""]
    overall = grouped(("scheme",))
    rows = [
        [scheme] + [columns.get(scheme, "-") for columns in overall.values()]
        for scheme in schemes
    ]
    lines += _table(["scheme"] + list(overall), rows) + [""]

    for axis in axes:
        lines += [f"## By {axis}", ""]
        # Mixed campaigns: aggregate only the records that carry this axis
        # (TrialRecord.get raises on a missing param).
        with_axis = ResultSet(
            [rec for rec in records if axis in rec.params],
            campaign=result_set.campaign,
        )
        columns = {}
        for heading, metric in _REPORT_METRICS:
            try:
                columns[heading] = with_axis.aggregate(metric, (axis, "scheme"))
            except KeyError:
                continue
        keys = sorted(
            {(rec.params[axis], rec.scheme) for rec in with_axis.records},
            key=lambda pair: (repr(pair[0]), pair[1]),
        )
        rows = [
            [value, scheme]
            + [column.get((value, scheme), "-") for column in columns.values()]
            for value, scheme in keys
        ]
        lines += _table([axis, "scheme"] + list(columns), rows) + [""]

    lines += ["## Trials", ""]
    rows = [
        [
            rec.name,
            rec.scheme,
            rec.seed,
            f"{rec.wall_seconds:.2f}",
            _fmt(rec.metrics.get("p99_slowdown", "-")),
        ]
        for rec in records
    ]
    lines += _table(["name", "scheme", "seed", "wall s", "p99 slowdown"], rows)
    return "\n".join(lines) + "\n"


class Workspace:
    """A campaign run's folder: results, costs, artifacts, manifest, report.

    :meth:`create` makes a fresh timestamped run directory under a root;
    the constructor wraps an existing one (e.g. to resume an interrupted
    run: point ``Campaign.run(workspace=Workspace(dir))`` at it and the
    campaign resumes from its ``results.jsonl``).
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    @classmethod
    def create(cls, root: Union[str, Path], campaign: str) -> "Workspace":
        """A new ``<root>/<campaign>-<UTC timestamp>/`` run dir (never reused)."""
        stamp = time.strftime("%Y%m%d-%H%M%SZ", time.gmtime())
        base = Path(root) / f"{_safe_name(campaign)}-{stamp}"
        run_dir, n = base, 1
        while run_dir.exists():  # same-second runs (tests): suffix, don't mix
            n += 1
            run_dir = base.with_name(f"{base.name}-{n}")
        return cls(run_dir)

    @property
    def results_path(self) -> Path:
        return self.run_dir / "results.jsonl"

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    @property
    def report_path(self) -> Path:
        return self.run_dir / "report.md"

    @property
    def artifacts_dir(self) -> Path:
        return self.run_dir / "artifacts"

    # -- pieces --------------------------------------------------------------

    def collect_artifacts(self, result_set: ResultSet) -> int:
        """Copy per-trial artifact dirs under ``artifacts/`` and re-point records.

        Spill dirs land wherever ``ExperimentConfig.results_dir`` said (a
        scratch path, possibly on a worker that shipped them back); the
        workspace copy is the durable one.  Records — in ``result_set`` and
        in the saved ``results.jsonl`` — are rewritten to the new paths, so
        ``ResultSet.analyzer_for`` works from the workspace alone.  Returns
        the number of artifact dirs collected.
        """
        moved: Dict[str, Dict[str, str]] = {}
        count = 0
        for rec in result_set.records:
            for kind, path in list(rec.artifacts.items()):
                if not os.path.isdir(path):
                    continue
                dest = self.artifacts_dir / _safe_name(rec.name) / kind
                if Path(path).resolve() != dest.resolve():
                    if dest.exists():
                        shutil.rmtree(dest)
                    dest.parent.mkdir(parents=True, exist_ok=True)
                    shutil.copytree(path, dest)
                rec.artifacts[kind] = str(dest)
                moved.setdefault(rec.name, {})[kind] = str(dest)
                count += 1
        if moved and self.results_path.exists():
            # Re-point the persisted records too (preserving any stale-run
            # lines the in-memory set does not carry).
            on_disk = ResultSet.load(self.results_path)
            for rec in on_disk.records:
                rec.artifacts.update(moved.get(rec.name, {}))
            on_disk.save(self.results_path)
        return count

    def write_manifest(
        self,
        campaign: Optional[str] = None,
        executor: Optional["Executor"] = None,
        plan: Optional[Dict[str, object]] = None,
        trials: int = 0,
        extra: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Record provenance: code, platform, worker roster and the plan."""
        manifest: Dict[str, object] = {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "campaign": campaign,
            "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "trials": trials,
            "git": _git_revision(),
            "platform": {
                "python": sys.version.split()[0],
                "implementation": platform.python_implementation(),
                "system": platform.platform(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
            },
            "executor": type(executor).__name__ if executor is not None else None,
            "workers": (
                executor.roster() if hasattr(executor, "roster") else None
            ),
            "plan": plan,
        }
        if extra:
            manifest.update(extra)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        return self.manifest_path

    def write_report(self, result_set: ResultSet) -> Path:
        self.report_path.write_text(render_report(result_set), encoding="utf-8")
        return self.report_path

    def manifest(self) -> Dict[str, object]:
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    # -- the whole ceremony --------------------------------------------------

    def finalize(
        self,
        result_set: ResultSet,
        campaign: Optional[str] = None,
        executor: Optional["Executor"] = None,
        plan: Optional[Dict[str, object]] = None,
    ) -> "Workspace":
        """Collect artifacts, then write manifest and report.

        Called by ``Campaign.run(workspace=...)`` after the final JSONL
        persist; safe to call on a workspace whose run was interrupted and
        resumed (everything it writes is regenerated from current state).
        """
        self.collect_artifacts(result_set)
        self.write_manifest(
            campaign=campaign or result_set.campaign,
            executor=executor,
            plan=plan,
            trials=len(result_set.records),
        )
        self.write_report(result_set)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workspace({str(self.run_dir)!r})"
