"""Distributed campaign execution: a coordinator dispatching trials to workers.

The campaign layer's trials are deterministic, independent and identified by
``(name, seed, params)`` — exactly the properties that make distribution
safe.  This module adds the last tier of the ROADMAP's "as fast as the
hardware allows" goal: more than one box.

Two halves:

* :class:`WorkerAgent` — a deliberately *dumb* stdlib-HTTP service.  It
  accepts one trial at a time (``POST /run``: a pickled trial spec plus the
  coordinator's config fingerprint), runs it through the exact same
  :func:`~repro.campaign.executors.execute_trial` path a local executor
  uses, and streams back the :class:`~repro.campaign.results.TrialRecord`
  (plus the full result and any spilled artifacts).  It holds no campaign
  state: all scheduling, retrying and persistence intelligence lives in the
  coordinator, so a worker that crashes loses nothing but its in-flight
  trial.
* :class:`DistributedExecutor` — the coordinator.  It extends
  :func:`~repro.campaign.scheduling.plan_trials`' waves across machines:
  the wave budget is the sum of the live workers' advertised slots, trials
  are dispatched longest-first over a shared work queue, and real fault
  handling keeps the campaign running — per-trial timeouts derived from the
  :class:`~repro.campaign.scheduling.CostCache` estimate, exponential-backoff
  retries for transient errors, health probes, loss detection that re-plans
  the remaining waves over the surviving workers, and graceful degradation
  to local execution when no worker is reachable at all.

Because every trial is a pure function of its config and seed, a retry (on
the same worker, another worker, or locally) is idempotent, and the final
records are byte-identical to a :class:`~repro.campaign.executors.SerialExecutor`
run — ``tests/test_distributed.py`` asserts this for every fault path.

**Trust model**: the transport is pickle-over-HTTP between peers running the
same repro checkout.  A worker will execute whatever a coordinator sends it,
so bind agents to loopback or a private network you trust, and use
``token=`` for a shared-secret check against accidental cross-talk.  See
``docs/distributed.md`` for the operator guide.
"""

from __future__ import annotations

import http.client
import json
import os
import pickle
import socket
import threading
import time
import urllib.parse
import warnings
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from .core import _config_fingerprint
from .executors import Executor, execute_trial
from .results import CampaignError, TrialRecord
from .scheduling import CostCache, ExecutionPlan, plan_trials

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

    from .core import Trial

#: Wire-format version; a worker rejects payloads from a different major
#: version so silent coordinator/worker skew cannot corrupt a campaign.
PROTOCOL_VERSION = 1

#: Default per-trial timeout (seconds) when the cost cache has no measured
#: wall-clock for the trial yet.
DEFAULT_TRIAL_TIMEOUT_S = 300.0


class DistributedError(CampaignError):
    """Distributed execution could not complete (and local fallback was off)."""


class WorkerUnavailable(Exception):
    """Internal: this worker is dead for the rest of the campaign.

    Raised by :meth:`WorkerClient.run_trial` when the worker cannot be
    trusted to finish work anymore (connection refused and the health probe
    fails too, or a trial overran its deadline).  The dispatch loop reacts
    by requeueing the in-flight trial for the surviving workers.
    """


# ---------------------------------------------------------------------------
# Worker agent (server side)
# ---------------------------------------------------------------------------

#: Serializes trial execution within one process.  A real deployment runs one
#: agent per process, but tests and the docs examples start several agents
#: in-process; the simulator keeps a little process-global state (the flow-id
#: counter), so two trials must never simulate concurrently in one process.
_EXECUTION_LOCK = threading.Lock()


def pack_artifact_dirs(record: TrialRecord) -> Dict[str, Dict[str, bytes]]:
    """Read a record's artifact directories into ``{kind: {relpath: bytes}}``.

    This is how a worker ships spilled results (``results_dir`` runs) back to
    the coordinator: the files, not the path — the path is only meaningful on
    the worker's filesystem.
    """
    from repro.results import pack_dir

    return {
        kind: pack_dir(path)
        for kind, path in record.artifacts.items()
        if os.path.isdir(path)
    }


def unpack_artifact_dirs(
    record: TrialRecord, payload: Dict[str, Dict[str, bytes]]
) -> None:
    """Materialize shipped artifact files at the record's local paths.

    The worker ran with the coordinator's config, so the artifact paths in
    the record are the same paths a local run would have used; writing the
    shipped bytes there makes a remote run indistinguishable from a local
    one (a worker sharing the coordinator's filesystem simply rewrites
    identical bytes).
    """
    from repro.results import unpack_dir

    for kind, files in payload.items():
        path = record.artifacts.get(kind)
        if path:
            unpack_dir(path, files)


class _WorkerState:
    """Mutable status shared between the HTTP handlers and /health."""

    def __init__(self) -> None:
        self.running: Optional[str] = None
        self.completed = 0
        self.failed = 0
        self.lock = threading.Lock()


class _WorkerHandler(BaseHTTPRequestHandler):
    """HTTP handler bound to one :class:`WorkerAgent` via ``server.agent``."""

    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a campaign makes
    # hundreds of requests and the agent's own prints are the useful signal.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def agent(self) -> "WorkerAgent":
        return self.server.agent  # type: ignore[attr-defined]

    def _deny(self, code: int, message: str) -> None:
        body = message.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _authorized(self) -> bool:
        token = self.agent.token
        if token is None:
            return True
        if self.headers.get("X-Repro-Token") == token:
            return True
        self._deny(403, "bad or missing X-Repro-Token")
        return False

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if urllib.parse.urlparse(self.path).path != "/health":
            self._deny(404, "unknown path (try /health)")
            return
        state = self.agent.state
        with state.lock:
            payload = {
                "kind": "repro.worker",
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "slots": self.agent.slots,
                "running": state.running,
                "completed": state.completed,
                "failed": state.failed,
            }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urllib.parse.urlparse(self.path).path
        if not self._authorized():
            return
        if path == "/shutdown":
            self._deny(200, "shutting down")
            # shutdown() must not run in the handler thread (it joins the
            # serve loop, which is waiting for this handler to return).
            threading.Thread(target=self.agent.stop, daemon=True).start()
            return
        if path != "/run":
            self._deny(404, "unknown path (try /run)")
            return
        length = int(self.headers.get("Content-Length", "0"))
        try:
            request = pickle.loads(self.rfile.read(length))
        except Exception as exc:
            self._deny(400, f"undecodable /run payload: {exc}")
            return
        if request.get("protocol") != PROTOCOL_VERSION:
            self._deny(
                409,
                f"protocol mismatch: worker speaks {PROTOCOL_VERSION}, "
                f"coordinator sent {request.get('protocol')!r}",
            )
            return
        trial = request["trial"]
        claimed = request.get("fingerprint")
        actual = _config_fingerprint(trial.config)
        if claimed != actual:
            # Version skew: the coordinator's pickle deserialized into a
            # config that no longer fingerprints the same way here (field
            # drift between checkouts).  Running it would silently produce
            # records from a *different* experiment.
            self._deny(
                409,
                f"config fingerprint mismatch for {trial.name!r}: "
                f"coordinator {claimed}, worker {actual} — version skew?",
            )
            return
        state = self.agent.state
        with _EXECUTION_LOCK:
            with state.lock:
                state.running = trial.name
            try:
                record, result = execute_trial(
                    trial, slot_budget=request.get("slot_budget")
                )
                response = {
                    "record": record,
                    "result": None if request.get("records_only") else result,
                    "artifacts": pack_artifact_dirs(record),
                }
                body = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
                status = 200
            except Exception as exc:  # simulator bug or bad config
                body = pickle.dumps(
                    {"error": f"{type(exc).__name__}: {exc}"},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                status = 500
            finally:
                with state.lock:
                    state.running = None
                    if status == 200:
                        state.completed += 1
                    else:
                        state.failed += 1
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class WorkerAgent:
    """A dumb trial-running HTTP service (the remote half of distribution).

    Endpoints:

    * ``GET /health`` — JSON status: pid, advertised ``slots``, the trial
      currently running (if any), completed/failed counts.  This is the
      coordinator's liveness probe.
    * ``POST /run`` — pickled ``{trial, fingerprint, slot_budget,
      records_only, protocol}``; the agent verifies the protocol version and
      the config fingerprint (version-skew guard), runs the trial through
      :func:`~repro.campaign.executors.execute_trial`, and replies with a
      pickled ``{record, result, artifacts}`` (artifacts = the spilled
      ``results_dir`` files, shipped as bytes).
    * ``POST /shutdown`` — stop serving (used by tests and orchestration).

    The agent executes one trial at a time (health probes still answer while
    a trial runs, thanks to the threading server) and keeps no state between
    trials, so killing an agent at any instant loses at most the trial it
    was running — which the coordinator re-dispatches elsewhere.

    Use :meth:`start` for a background (in-thread) agent — handy in tests
    and docs — or :meth:`serve_forever` to block, as ``repro worker serve``
    does.  ``port=0`` binds an ephemeral port; read :attr:`url` after
    construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        slots: int = 1,
    ) -> None:
        if slots < 1:
            raise CampaignError(f"slots must be >= 1, got {slots}")
        self.token = token
        self.slots = slots
        self.state = _WorkerState()
        self._server = ThreadingHTTPServer((host, port), _WorkerHandler)
        self._server.daemon_threads = True
        self._server.agent = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port even when created with 0."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "WorkerAgent":
        """Serve from a daemon thread and return immediately."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` or interrupt."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


# ---------------------------------------------------------------------------
# Coordinator (client side)
# ---------------------------------------------------------------------------


def load_workers_file(path: Union[str, Path]) -> List[str]:
    """Parse a workers file: one ``http://host:port`` per line.

    Blank lines and ``#`` comments are ignored.  This is the format behind
    the CLI's ``--workers-file``.
    """
    urls: List[str] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if not line.startswith(("http://", "https://")):
            raise CampaignError(
                f"workers file {path}: {line!r} is not an http(s) URL"
            )
        urls.append(line.rstrip("/"))
    if not urls:
        raise CampaignError(f"workers file {path} lists no workers")
    return urls


class WorkerClient:
    """Coordinator-side handle for one remote :class:`WorkerAgent`."""

    def __init__(self, url: str, token: Optional[str] = None) -> None:
        self.url = url.rstrip("/")
        parsed = urllib.parse.urlparse(self.url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise CampaignError(f"worker URL {url!r} is not an http(s) URL")
        self._host = parsed.hostname
        self._port = parsed.port or (443 if parsed.scheme == "https" else 80)
        self._scheme = parsed.scheme
        self.token = token
        self.alive = True
        self.slots = 1
        self.completed = 0
        #: Set when a trial overran its deadline here.  A wedged agent can
        #: still answer /health (the serving threads are independent), so
        #: liveness probing alone would resurrect it; banned is forever.
        self.banned = False

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        return cls(self._host, self._port, timeout=timeout)

    def _headers(self) -> Dict[str, str]:
        return {} if self.token is None else {"X-Repro-Token": self.token}

    def probe(self, timeout: float = 5.0) -> bool:
        """``GET /health``; updates :attr:`alive` and the advertised slots."""
        if self.banned:
            self.alive = False
            return False
        conn = self._connection(timeout)
        try:
            conn.request("GET", "/health", headers=self._headers())
            response = conn.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            ok = response.status == 200 and payload.get("kind") == "repro.worker"
            if ok:
                self.slots = max(1, int(payload.get("slots", 1)))
            self.alive = ok
        except (OSError, ValueError):
            self.alive = False
        finally:
            conn.close()
        return self.alive

    def run_trial(
        self,
        trial: "Trial",
        timeout: float,
        slot_budget: Optional[int] = None,
        records_only: bool = False,
        retries: int = 2,
        backoff_s: float = 0.5,
        probe_timeout: float = 5.0,
    ) -> Tuple[TrialRecord, Optional["ExperimentResult"]]:
        """Run one trial on this worker, with transient-error retries.

        Failure taxonomy (what the fault-handling contract hinges on):

        * **Transient** (connection refused/reset while the health probe
          still answers, or an HTTP 5xx reply): retried on this same worker
          up to ``retries`` times with exponential backoff — idempotent
          because trials are deterministic.
        * **Worker loss** (probe fails after an error, or the trial overran
          ``timeout``): raises :class:`WorkerUnavailable`; the dispatcher
          requeues the trial for the surviving workers.  A worker that hung
          past its deadline is *not* reused — its agent may still be wedged
          inside the stale trial.
        * **Poison** (HTTP 4xx: fingerprint/protocol mismatch, bad payload):
          raises :class:`~repro.campaign.results.CampaignError` immediately;
          no other worker would fare better.
        """
        payload = pickle.dumps(
            {
                "protocol": PROTOCOL_VERSION,
                "trial": trial,
                "fingerprint": _config_fingerprint(trial.config),
                "slot_budget": slot_budget,
                "records_only": records_only,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        headers = self._headers()
        headers["Content-Type"] = "application/octet-stream"
        delay = backoff_s
        for attempt in range(retries + 1):
            conn = self._connection(timeout)
            try:
                conn.request("POST", "/run", body=payload, headers=headers)
                response = conn.getresponse()
                body = response.read()
            except socket.timeout:
                conn.close()
                self.alive = False
                self.banned = True
                raise WorkerUnavailable(
                    f"{self.url}: trial {trial.name!r} exceeded its "
                    f"{timeout:.0f}s deadline"
                ) from None
            except (OSError, http.client.HTTPException) as exc:
                conn.close()
                if not self.probe(probe_timeout):
                    raise WorkerUnavailable(
                        f"{self.url}: {exc} (health probe failed)"
                    ) from exc
                if attempt == retries:
                    raise WorkerUnavailable(
                        f"{self.url}: {exc} after {retries + 1} attempts"
                    ) from exc
                time.sleep(delay)
                delay *= 2
                continue
            else:
                conn.close()
            if response.status == 200:
                reply = pickle.loads(body)
                record: TrialRecord = reply["record"]
                unpack_artifact_dirs(record, reply.get("artifacts", {}))
                self.completed += 1
                return record, reply.get("result")
            if 400 <= response.status < 500:
                raise CampaignError(
                    f"worker {self.url} rejected trial {trial.name!r}: "
                    f"{body.decode('utf-8', 'replace')}"
                )
            # 5xx: the trial itself raised on the worker.  Deterministic
            # simulator bugs would also fail locally; still retry once in
            # case the worker was resource-starved, then surface the error.
            error = "unknown worker error"
            try:
                error = pickle.loads(body).get("error", error)
            except Exception:
                error = body.decode("utf-8", "replace") or error
            if attempt == retries:
                raise CampaignError(
                    f"trial {trial.name!r} failed on worker {self.url}: {error}"
                )
            time.sleep(delay)
            delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def shutdown(self, timeout: float = 5.0) -> None:
        """Best-effort ``POST /shutdown`` (used by tests/orchestration)."""
        conn = self._connection(timeout)
        try:
            conn.request("POST", "/shutdown", headers=self._headers())
            conn.getresponse().read()
        except OSError:
            pass
        finally:
            conn.close()


class DistributedExecutor(Executor):
    """Run campaign trials across remote :class:`WorkerAgent` processes.

    The coordinator extends the scheduling layer across machines:

    * :meth:`batches` probes the roster and packs the trials with
      :func:`~repro.campaign.scheduling.plan_trials` onto a budget of
      ``sum(slots of live workers)`` — so ``Campaign.run``'s persistence
      boundaries fall on wave barriers, exactly like
      :class:`~repro.campaign.scheduling.ScheduledExecutor`;
    * within a wave, trials are dispatched longest-first over a shared work
      queue, one puller thread per live worker — when a worker dies, its
      in-flight trial goes back on the queue and the survivors drain it
      (the queue *is* the re-plan); when :meth:`run` is driving whole
      campaigns itself, the remaining waves are re-planned explicitly over
      the shrunken roster;
    * per-trial timeouts come from the cost cache: a trial with a measured
      wall-clock gets ``timeout_factor ×`` that (clamped to at least
      ``min_timeout_s``), an unmeasured one gets ``default_timeout_s``; an
      explicit ``trial_timeout`` overrides both;
    * if every worker is dead (at construction or mid-campaign), execution
      degrades to in-process serial execution with a ``RuntimeWarning`` —
      unless ``local_fallback=False``, which raises
      :class:`DistributedError` instead.

    Determinism: workers run the exact same
    :func:`~repro.campaign.executors.execute_trial` path, so records are
    byte-identical to :class:`~repro.campaign.executors.SerialExecutor`
    (only ``wall_seconds``, excluded from record equality, differs) no
    matter which worker ran what, how often a trial was retried, or whether
    the campaign fell back to local execution.

    ``workers`` accepts worker URLs, a path to a workers file
    (:func:`load_workers_file`), or ready :class:`WorkerClient` instances.
    """

    def __init__(
        self,
        workers: Union[str, Path, Sequence[Union[str, WorkerClient]]],
        records_only: bool = False,
        cost_cache: Optional[CostCache] = None,
        token: Optional[str] = None,
        trial_timeout: Optional[float] = None,
        default_timeout_s: float = DEFAULT_TRIAL_TIMEOUT_S,
        min_timeout_s: float = 30.0,
        timeout_factor: float = 8.0,
        retries: int = 2,
        backoff_s: float = 0.5,
        probe_timeout_s: float = 5.0,
        local_fallback: bool = True,
    ) -> None:
        if isinstance(workers, (str, Path)):
            workers = load_workers_file(workers)
        self.clients: List[WorkerClient] = [
            w if isinstance(w, WorkerClient) else WorkerClient(w, token=token)
            for w in workers
        ]
        if not self.clients:
            raise CampaignError("DistributedExecutor needs at least one worker")
        self.records_only = records_only
        self.cost_cache = cost_cache
        self.trial_timeout = trial_timeout
        self.default_timeout_s = default_timeout_s
        self.min_timeout_s = min_timeout_s
        self.timeout_factor = timeout_factor
        self.retries = retries
        self.backoff_s = backoff_s
        self.probe_timeout_s = probe_timeout_s
        self.local_fallback = local_fallback
        self.workers = len(self.clients)  # Executor contract: parallel degree
        self._planned_batches: Dict[int, bool] = {}

    # -- roster --------------------------------------------------------------

    def probe_workers(self) -> List[WorkerClient]:
        """Health-probe the whole roster; returns the live workers."""
        for client in self.clients:
            client.probe(self.probe_timeout_s)
        return [c for c in self.clients if c.alive]

    def roster(self) -> List[Dict[str, object]]:
        """The worker roster as recorded in workspace manifests."""
        return [
            {"url": c.url, "alive": c.alive, "slots": c.slots,
             "trials_completed": c.completed}
            for c in self.clients
        ]

    def _slot_budget(self) -> int:
        return max(1, sum(c.slots for c in self.clients if c.alive))

    # -- planning ------------------------------------------------------------

    def plan(self, trials: Sequence["Trial"]) -> ExecutionPlan:
        """The wave plan over the currently-live roster's slot total."""
        self.probe_workers()
        return plan_trials(trials, self._slot_budget(), self.cost_cache)

    def batches(self, trials: Sequence["Trial"]) -> List[List["Trial"]]:
        """Persistence batches = plan waves over the live workers' slots."""
        self._planned_batches.clear()
        out: List[List["Trial"]] = []
        for wave in self.plan(trials).waves:
            batch = [trials[entry.index] for entry in wave]
            out.append(batch)
            self._planned_batches[id(batch)] = True
        return out

    def _timeout_for(self, trial: "Trial") -> float:
        if self.trial_timeout is not None:
            return self.trial_timeout
        measured = (
            self.cost_cache.lookup(trial) if self.cost_cache is not None else None
        )
        if measured is None:
            return self.default_timeout_s
        return max(self.min_timeout_s, self.timeout_factor * measured)

    # -- dispatch ------------------------------------------------------------

    def _dispatch_order(self, trials: Sequence["Trial"]) -> List["Trial"]:
        """Longest-first dispatch (stable), mirroring the planner's LPT rule."""
        from .scheduling import _calibrated_costs

        costs, _, _ = _calibrated_costs(trials, self.cost_cache)
        order = sorted(
            range(len(trials)), key=lambda i: (-costs[i], i)
        )
        return [trials[i] for i in order]

    def _execute_batch(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        """Drain one batch over the live workers; requeue on worker loss."""
        results: Dict[int, Tuple[TrialRecord, Optional["ExperimentResult"]]] = {}
        queue = deque(self._dispatch_order(trials))
        lock = threading.Lock()
        errors: List[BaseException] = []

        def pull(client: WorkerClient) -> None:
            while True:
                with lock:
                    if errors or not queue:
                        return
                    trial = queue.popleft()
                try:
                    pair = client.run_trial(
                        trial,
                        timeout=self._timeout_for(trial),
                        records_only=self.records_only,
                        retries=self.retries,
                        backoff_s=self.backoff_s,
                        probe_timeout=self.probe_timeout_s,
                    )
                except WorkerUnavailable as exc:
                    warnings.warn(
                        f"worker lost, re-dispatching {trial.name!r}: {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    with lock:
                        queue.appendleft(trial)
                    return  # this worker is out for the campaign
                except BaseException as exc:  # poison trial / real bug
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    results[id(trial)] = pair
                if self.cost_cache is not None:
                    self.cost_cache.record(trial, pair[0].wall_seconds)

        live = [c for c in self.clients if c.alive]
        if live:
            threads = [
                threading.Thread(target=pull, args=(client,), daemon=True)
                for client in live
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        leftovers = [t for t in trials if id(t) not in results]
        if leftovers:
            # Every worker died (or none was ever reachable): graceful
            # degradation to the local serial path, loudly.
            if not self.local_fallback:
                raise DistributedError(
                    f"no live workers left and local_fallback=False; "
                    f"{len(leftovers)} trial(s) not run "
                    f"(first: {leftovers[0].name!r})"
                )
            warnings.warn(
                f"no live workers remain; running {len(leftovers)} trial(s) "
                "locally (records are identical either way)",
                RuntimeWarning,
                stacklevel=2,
            )
            fn = self._trial_fn()
            for trial in leftovers:
                pair = fn(trial)
                results[id(trial)] = pair
                if self.cost_cache is not None:
                    self.cost_cache.record(trial, pair[0].wall_seconds)
        if self.cost_cache is not None:
            self.cost_cache.save()
        return [results[id(t)] for t in trials]

    def run(
        self, trials: Sequence["Trial"]
    ) -> List[Tuple[TrialRecord, Optional["ExperimentResult"]]]:
        if self._planned_batches.pop(id(trials), None):
            # A wave handed out by batches(): the roster was probed when the
            # plan was made; losses inside the wave redistribute via the
            # work queue, and the next wave re-probes naturally.
            return self._execute_batch(trials)
        # Direct use (no Campaign.run batching): plan, execute a wave,
        # re-plan the remainder whenever the roster shrank — the explicit
        # "re-plan remaining waves over surviving workers" path.
        results: Dict[int, Tuple[TrialRecord, Optional["ExperimentResult"]]] = {}
        remaining = list(trials)
        while remaining:
            # self.plan() re-probes the roster, so each wave is planned over
            # the workers that are actually alive *now*.
            plan = self.plan(remaining)
            live_before = sum(1 for c in self.clients if c.alive)
            wave = [remaining[entry.index] for entry in plan.waves[0]]
            for trial, pair in zip(wave, self._execute_batch(wave)):
                results[id(trial)] = pair
            remaining = [t for t in remaining if id(t) not in results]
            live_after = sum(1 for c in self.clients if c.alive)
            if remaining and live_after != live_before:
                warnings.warn(
                    f"worker roster changed ({live_before} -> {live_after} "
                    f"live); re-planning the remaining {len(remaining)} "
                    "trial(s)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return [results[id(t)] for t in trials]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedExecutor(workers={[c.url for c in self.clients]})"
        )
