"""Command-line interface for the BFC reproduction.

The CLI wraps the campaign layer and the per-figure scenarios so that the
common workflows need no Python code:

``repro schemes`` (or ``python -m repro schemes``)
    List the available schemes and what they wire up.

``repro workloads``
    Describe the industry flow-size distributions (mean, sub-BDP share).

``repro run --scheme BFC --scale tiny``
    Run a single experiment (the Fig. 5a workload by default) and print a
    summary; ``--json`` emits machine-readable output.

``repro campaign --schemes BFC DCQCN --load 0.6 0.8 --repeats 2 --cores auto``
    Expand a {scheme x load x repeats} grid, run it (optionally across
    processes), print aggregated tables and optionally persist the per-trial
    records as JSONL (``--save``/``--resume``).  Also available as ``sweep``.
    ``--cores`` enables shard-aware scheduling (a trial with ``shards=N``
    occupies N CPU slots); ``--dry-run`` prints the execution plan without
    simulating anything.  ``--workers`` keeps the plain trial-counting pool.

``repro figure fig5a --scale tiny --schemes BFC DCQCN``
    Run one of the paper's figures and print the reproduced table.

``repro compare --scale tiny --schemes BFC DCQCN HPCC``
    Run several schemes on the same trace and print the comparison table.

``repro shard --shards 4 --scheme BFC --scale small``
    Run ONE experiment space-parallel across several OS processes
    (conservative-window sharding; records are identical to a
    single-process run) and report the partition, window and barrier stats.

``repro topology info --scale tiny --figure fig9 --shards 2``
    Describe a scenario's topology (host/switch/link counts,
    oversubscription) and how it would be partitioned into shards.

``repro worker serve --port 8421``
    Run a distributed-campaign worker agent: a dumb HTTP service that
    executes one trial at a time for a coordinator.  Point a coordinator at
    a roster of these with ``repro campaign --workers-file hosts.txt``.

``repro report results.jsonl``
    Render the standard Markdown report (aggregate and p99-slowdown tables
    per sweep axis) for any campaign JSONL — the same report a workspace
    run (``--workspace``) writes automatically.  See ``docs/distributed.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import warnings
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_comparison_table, format_series_table
from repro.campaign import Campaign, CampaignError, summarize_result
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.schemes import SCHEMES, UnknownSchemeError, available_schemes
from repro.experiments import scenarios
from repro.shard import (
    STRATEGIES as SHARD_STRATEGIES,
    SYNC_MODES as SHARD_SYNC_MODES,
    PartitionError,
    ShardError,
)
from repro.sim import units
from repro.workloads.distributions import WORKLOADS


#: Figures that can be driven directly from the CLI (single-config-per-label
#: scenarios; the sweep figures 8 and 10 need the benchmark harness).
FIGURE_FACTORIES = {
    "fig2": scenarios.fig2_configs,
    "fig3": scenarios.fig3_configs,
    "fig5a": scenarios.fig5a_configs,
    "fig5b": scenarios.fig5b_configs,
    "fig5c": scenarios.fig5c_configs,
    "fig6": scenarios.fig6_configs,
    "fig7": scenarios.fig7_configs,
    "fig9": scenarios.fig9_configs,
    "fig11": scenarios.fig11_configs,
    "fig12": scenarios.fig12_configs,
    "fig13": scenarios.fig13_configs,
    "fig14": scenarios.fig14_configs,
    # Beyond-the-paper scenarios (see docs/workloads.md).
    "fig_est": scenarios.fig_est_configs,
    "fig_collective": scenarios.collective_configs,
    "fig_rpc": scenarios.rpc_fanout_configs,
}


def _cores_arg(value: str):
    """``--cores`` accepts a positive integer or the word ``auto``."""
    if value == "auto":
        return "auto"
    try:
        cores = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None
    if cores < 1:
        raise argparse.ArgumentTypeError(f"cores must be >= 1, got {cores}")
    return cores


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backpressure Flow Control (BFC) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list available congestion-control schemes")

    sub.add_parser("workloads", help="describe the industry workload distributions")

    run = sub.add_parser("run", help="run a single experiment and print a summary")
    run.add_argument("--scheme", default="BFC", choices=available_schemes())
    run.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    run.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    run.add_argument("--load", type=float, default=0.6, help="offered load (fraction)")
    run.add_argument("--incast", type=float, default=0.05,
                     help="incast load fraction (0 disables incast)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")

    campaign = sub.add_parser(
        "campaign",
        aliases=["sweep"],
        help="run a declarative {scheme x sweep x repeats} campaign",
    )
    campaign.add_argument("name", nargs="?", default="campaign",
                          help="campaign name (prefixes every trial name)")
    campaign.add_argument("--schemes", nargs="+", default=["BFC", "DCQCN"],
                          choices=available_schemes())
    campaign.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    campaign.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    campaign.add_argument("--load", type=float, nargs="+", default=[0.6],
                          help="offered load(s); several values form a sweep axis")
    campaign.add_argument("--incast", type=float, nargs="+", default=[0.05],
                          help="incast load(s); 0 disables incast")
    campaign.add_argument("--repeats", type=int, default=1,
                          help="repeats per grid point (seeds derived per repeat)")
    campaign.add_argument("--seed", type=int, default=1, help="base seed")
    campaign.add_argument("--workers", type=int, default=1,
                          help="process-pool size; >1 runs trials in parallel")
    campaign.add_argument("--cores", type=_cores_arg, default=None, metavar="N|auto",
                          help="CPU-slot budget for shard-aware scheduling "
                               "(a trial with shards=N counts as N slots); "
                               "'auto' detects the machine's cores")
    campaign.add_argument("--dry-run", action="store_true",
                          help="print the execution plan and exit without running (requires --cores)")
    campaign.add_argument("--save", default=None, metavar="PATH",
                          help="write per-trial records to this JSONL file")
    campaign.add_argument("--resume", default=None, metavar="PATH",
                          help="JSONL file of a previous run; recorded trials are skipped")
    campaign.add_argument("--workers-file", default=None, metavar="PATH",
                          help="distribute trials over the worker agents listed in "
                               "this file (one http://host:port per line, started "
                               "with 'repro worker serve'); replaces --workers/--cores")
    campaign.add_argument("--token", default=None,
                          help="shared secret sent to workers (X-Repro-Token)")
    campaign.add_argument("--workspace", default=None, metavar="DIR",
                          help="land the run in a timestamped experiment workspace "
                               "under DIR: results.jsonl + cost cache + artifacts + "
                               "manifest.json + report.md (replaces --save/--resume)")
    campaign.add_argument("--json", action="store_true")

    figure = sub.add_parser("figure", help="run one of the paper's figures")
    figure.add_argument("name", choices=sorted(FIGURE_FACTORIES))
    figure.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    figure.add_argument("--schemes", nargs="*", default=None,
                        help="restrict to these schemes (figures 5a-c, 6, 9 only)")
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument("--workers", type=int, default=1,
                        help="process-pool size; >1 runs the figure's configs in parallel")
    figure.add_argument("--cores", type=_cores_arg, default=None, metavar="N|auto",
                        help="CPU-slot budget for shard-aware scheduling")
    figure.add_argument("--dry-run", action="store_true",
                        help="print the execution plan and exit without running (requires --cores)")
    figure.add_argument("--json", action="store_true")

    shard = sub.add_parser(
        "shard",
        help="run one experiment across several processes (space-parallel)",
    )
    shard.add_argument("--scheme", default="BFC", choices=available_schemes())
    shard.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    shard.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    shard.add_argument("--load", type=float, default=0.6)
    shard.add_argument("--incast", type=float, default=0.05,
                       help="incast load fraction (0 disables incast)")
    shard.add_argument("--seed", type=int, default=1)
    shard.add_argument("--shards", type=int, default=2,
                       help="number of shard processes (1 = plain single-process run)")
    shard.add_argument("--strategy", default="auto",
                       choices=list(SHARD_STRATEGIES),
                       help="partition strategy (default: per-DC when multi-DC, else per-pod)")
    shard.add_argument("--sync", default="conservative",
                       choices=list(SHARD_SYNC_MODES),
                       help="shard synchronization: conservative windows, "
                            "speculative (time-warp), or adaptive per window size")
    shard.add_argument("--json", action="store_true")

    topology = sub.add_parser(
        "topology", help="inspect a scenario's topology and shard partition"
    )
    topology.add_argument("action", choices=["info"])
    topology.add_argument("--figure", default="fig5a",
                          choices=sorted(FIGURE_FACTORIES),
                          help="scenario whose topology to describe (fig9 = cross-DC)")
    topology.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    topology.add_argument("--shards", type=int, default=2,
                          help="partition to report cut/window stats for")
    topology.add_argument("--strategy", default="auto", choices=list(SHARD_STRATEGIES))
    topology.add_argument("--sync", default="conservative",
                          choices=list(SHARD_SYNC_MODES),
                          help="report which sync mode this partition would use")
    topology.add_argument("--json", action="store_true")

    openloop = sub.add_parser(
        "openloop",
        help="run an open-loop cross-DC experiment (streams records to disk)",
    )
    openloop.add_argument("--scheme", default="BFC", choices=available_schemes())
    openloop.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    openloop.add_argument("--flows", type=int, default=20_000,
                          help="number of flow arrivals to offer")
    openloop.add_argument("--users", type=int, default=1_000_000,
                          help="modelled user population (superposed Poisson)")
    openloop.add_argument("--load", type=float, default=0.5,
                          help="offered load fraction of fabric capacity")
    openloop.add_argument("--seed", type=int, default=1)
    openloop.add_argument("--results-dir", default=None,
                          help="spill per-flow records here (bounded-memory run); "
                               "omit for the in-memory harvest")
    openloop.add_argument("--json", action="store_true")

    analyze = sub.add_parser(
        "analyze",
        help="summarize a spilled results directory (repro.results format)",
    )
    analyze.add_argument("results_dir", help="directory written by a results_dir run")
    analyze.add_argument("--quantile", type=float, default=99.0,
                         help="slowdown quantile for the per-size-bin table")
    analyze.add_argument("--json", action="store_true")

    compare = sub.add_parser("compare", help="run several schemes on one trace")
    compare.add_argument("--schemes", nargs="+", default=["BFC", "DCQCN", "DCQCN+Win"],
                         choices=available_schemes())
    compare.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    compare.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    compare.add_argument("--load", type=float, default=0.6)
    compare.add_argument("--incast", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--workers", type=int, default=1,
                         help="process-pool size; >1 runs the schemes in parallel")
    compare.add_argument("--json", action="store_true")

    worker = sub.add_parser(
        "worker", help="run a distributed-campaign worker agent"
    )
    worker.add_argument("action", choices=["serve"],
                        help="serve: accept and execute trials until stopped")
    worker.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback; bind a private "
                             "network address to serve a remote coordinator)")
    worker.add_argument("--port", type=int, default=0,
                        help="bind port (default 0: pick an ephemeral port "
                             "and print it)")
    worker.add_argument("--slots", type=int, default=1,
                        help="CPU slots advertised to the coordinator's planner")
    worker.add_argument("--token", default=None,
                        help="require this X-Repro-Token on /run and /shutdown")

    report = sub.add_parser(
        "report",
        help="render the Markdown report for a campaign JSONL file",
    )
    report.add_argument("results", help="campaign JSONL (from --save or a workspace)")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the report here instead of stdout")
    report.add_argument("--title", default=None,
                        help="report title (default: the campaign name on record)")
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def _result_summary(result: ExperimentResult) -> Dict[str, float]:
    # One metric schema for the whole toolkit: the campaign layer's
    # flattener, plus the identity/wall fields the CLI traditionally shows.
    summary: Dict[str, float] = {"scheme": result.scheme}
    summary.update(summarize_result(result))
    summary["wall_seconds"] = result.wall_seconds
    return summary


def _single_config(scheme: str, scale_name: str, workload: str, load: float,
                   incast: float, seed: int):
    # Built through the campaign's default builder so `repro run` and
    # `repro campaign` produce the same experiment for the same flags.
    (trial,) = (
        Campaign(f"cli/{workload}", scale=scale_name, workload=workload)
        .schemes(scheme)
        .fixed(load=load, incast=incast)
        .seeds(base=seed)
        .trials()
    )
    return trial.config


def cmd_schemes(args: argparse.Namespace, out) -> int:
    rows = {name: {"description": spec.description} for name, spec in SCHEMES.items()}
    width = max(len(name) for name in rows)
    for name in sorted(rows):
        print(f"  {name.ljust(width)}  {rows[name]['description']}", file=out)
    return 0


def cmd_workloads(args: argparse.Namespace, out) -> int:
    bdp = units.bandwidth_delay_product(units.gbps(100), units.microseconds(8))
    rows = {}
    for name, dist in WORKLOADS.items():
        rows[dist.name] = {
            "mean KB": dist.mean() / 1e3,
            "flows <= 1KB (%)": 100 * dist.cdf(1_000),
            "flows <= 1 BDP (%)": 100 * dist.cdf(bdp),
            "max size (MB)": dist.max_size() / 1e6,
        }
    print(
        format_comparison_table(
            "Industry workloads (BDP = 100 KB at 100 Gbps / 8 us)",
            rows,
            columns=["mean KB", "flows <= 1KB (%)", "flows <= 1 BDP (%)", "max size (MB)"],
            fmt="{:.1f}",
        ),
        file=out,
    )
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    config = _single_config(args.scheme, args.scale, args.workload, args.load,
                            args.incast, args.seed)
    result = run_experiment(config)
    summary = _result_summary(result)
    if args.json:
        json.dump(summary, out, indent=2)
        print(file=out)
    else:
        print(f"Experiment: {config.name} (scale={args.scale}, load={args.load:.0%})", file=out)
        for key, value in summary.items():
            if isinstance(value, float):
                print(f"  {key:<24s} {value:.4f}", file=out)
            else:
                print(f"  {key:<24s} {value}", file=out)
        print(file=out)
        print(
            format_series_table(
                "p99 FCT slowdown vs flow size",
                {args.scheme: result.slowdown_series()},
            ),
            file=out,
        )
    return 0


def cmd_openloop(args: argparse.Namespace, out) -> int:
    config = scenarios.openloop_crossdc_config(
        args.scale,
        args.scheme,
        seed=args.seed,
        users=args.users,
        target_flows=args.flows,
        target_load=args.load,
        results_dir=args.results_dir,
    )
    result = run_experiment(config)
    summary = _result_summary(result)
    summary["flows_offered"] = result.flows_offered
    if result.results_ref:
        summary["results_dir"] = result.results_ref
    if args.json:
        json.dump(summary, out, indent=2)
        print(file=out)
    else:
        print(
            f"Open-loop cross-DC: {config.name} "
            f"({args.users:,} users, {result.flows_offered:,} flows offered)",
            file=out,
        )
        for key, value in summary.items():
            if isinstance(value, float):
                print(f"  {key:<24s} {value:.4f}", file=out)
            else:
                print(f"  {key:<24s} {value}", file=out)
        if result.results_ref:
            print(
                f"\nper-flow records spilled to {result.results_ref}\n"
                f"(inspect with: repro analyze {result.results_ref})",
                file=out,
            )
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    from repro.results import ResultsAnalyzer

    analyzer = ResultsAnalyzer(args.results_dir)
    summary = analyzer.summarize()
    series = analyzer.slowdown_series(quantile=args.quantile)
    if args.json:
        payload = dict(summary)
        payload["slowdown_series"] = [
            {"bin": label, "value": value, "count": count}
            for label, value, count in series
        ]
        json.dump(payload, out, indent=2)
        print(file=out)
    else:
        print(f"Spilled results: {args.results_dir}", file=out)
        for key, value in sorted(summary.items()):
            if isinstance(value, float):
                print(f"  {key:<24s} {value:.4f}", file=out)
            elif isinstance(value, (int, str, bool)):
                print(f"  {key:<24s} {value}", file=out)
        print(file=out)
        print(
            format_series_table(
                f"p{args.quantile:g} FCT slowdown vs flow size",
                {"run": series},
                value_label=f"p{args.quantile:g} FCT slowdown",
            ),
            file=out,
        )
    return 0


def cmd_campaign(args: argparse.Namespace, out) -> int:
    # scale/workload are baked into each record's params by the campaign, so
    # resuming a JSONL saved under a different workload/scale re-runs trials.
    campaign = (
        Campaign(args.name, scale=args.scale, workload=args.workload)
        .schemes(*args.schemes)
        .sweep(load=args.load)
        .repeats(args.repeats)
        .seeds(base=args.seed)
    )
    if len(args.incast) > 1:
        campaign.sweep(incast=args.incast)
    else:
        campaign.fixed(incast=args.incast[0])
    if args.cores is not None and args.workers != 1:
        raise CampaignError("pass --workers or --cores, not both")
    executor = None
    if args.workers_file is not None:
        if args.cores is not None or args.workers != 1:
            raise CampaignError(
                "--workers-file dispatches to the remote roster; "
                "--workers/--cores do not apply"
            )
        from repro.campaign import DistributedExecutor

        executor = DistributedExecutor(args.workers_file, token=args.token)
    workspace = None
    if args.workspace is not None:
        if args.save is not None or args.resume is not None:
            raise CampaignError(
                "pass --workspace or --save/--resume, not both "
                "(the workspace owns its results.jsonl)"
            )
        from repro.campaign import Workspace

        workspace = Workspace.create(args.workspace, args.name)
    if args.dry_run:
        if args.cores is None:
            # A plan preview describes scheduled execution; previewing one
            # while the real run would use the --workers pool would be a lie.
            raise CampaignError("--dry-run previews scheduled execution; pass --cores N|auto")
        plan = campaign.plan(cores=args.cores, save=args.save, resume=args.resume)
        if args.json:
            json.dump(plan.to_dict(), out, indent=2)
            print(file=out)
        else:
            print(f"Campaign {args.name!r} {plan.describe()}", file=out)
        return 0
    result_set = campaign.run(
        executor=executor,
        workers=(
            None
            if args.cores is not None or executor is not None
            else args.workers
        ),
        cores=args.cores,
        save=args.save, resume=args.resume,
        keep_results=False,  # tables below only need the tidy records
        workspace=workspace,
    )
    if args.json:
        json.dump([record.to_dict() for record in result_set], out, indent=2)
        print(file=out)
        return 0
    if executor is not None:
        parallelism = f"distributed over {executor.workers} worker(s)"
    elif args.cores is not None:
        parallelism = f"cores={args.cores}"
    else:
        parallelism = f"workers={args.workers}"
    print(
        f"Campaign {args.name!r}: {len(result_set)} trials "
        f"({len(args.schemes)} schemes, loads {args.load}, "
        f"{args.repeats} repeat(s), {parallelism})",
        file=out,
    )
    for record in result_set:
        print(
            f"  {record.label:<32s} p99={record.metrics['p99_slowdown']:7.2f}  "
            f"completed={100 * record.metrics['completion_rate']:5.1f}%  "
            f"drops={int(record.metrics['dropped_packets']):4d}  "
            f"({record.wall_seconds:.1f}s)",
            file=out,
        )
    print(file=out)
    # One table per incast value when incast is swept, so no cell ever blends
    # physically different experiments; the mean is over repeats only.
    for incast in args.incast:
        by_load = result_set.filter(incast=incast).aggregate(
            "p99_slowdown", ["scheme", "load"]
        )
        rows: Dict[str, Dict[str, float]] = {}
        for (scheme, load), value in by_load.items():
            rows.setdefault(scheme, {})[f"{load:g}"] = value
        title = "p99 FCT slowdown by scheme and load (mean over repeats)"
        if len(args.incast) > 1:
            title += f", incast={incast:g}"
        print(
            format_comparison_table(
                title,
                rows,
                columns=[f"{load:g}" for load in args.load],
                fmt="{:.2f}",
            ),
            file=out,
        )
    if args.save:
        print(f"records written to {args.save}", file=out)
    if workspace is not None:
        print(f"workspace: {workspace.run_dir}", file=out)
    return 0


def cmd_worker(args: argparse.Namespace, out) -> int:
    """``repro worker serve``: block serving trials until interrupted.

    The "listening on <url>" line is printed (and flushed) before serving
    starts, so orchestration — scripts, CI, the tests — can read the bound
    address from stdout even with ``--port 0``.
    """
    from repro.campaign import WorkerAgent

    agent = WorkerAgent(
        host=args.host, port=args.port, token=args.token, slots=args.slots
    )
    host, port = agent.address
    print(
        f"repro worker listening on http://{host}:{port} "
        f"(slots={args.slots}, pid={os.getpid()})",
        file=out,
    )
    if hasattr(out, "flush"):
        out.flush()
    try:
        agent.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        agent.stop()
    return 0


def cmd_report(args: argparse.Namespace, out) -> int:
    """``repro report``: the workspace report, for any campaign JSONL."""
    from pathlib import Path

    from repro.campaign import ResultSet
    from repro.campaign.workspace import render_report

    try:
        result_set = ResultSet.load(args.results)
    except OSError as exc:
        raise CampaignError(f"cannot read {args.results}: {exc}") from exc
    text = render_report(result_set, title=args.title)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report written to {args.out}", file=out)
    else:
        print(text, file=out, end="")
    return 0


def cmd_figure(args: argparse.Namespace, out) -> int:
    factory = FIGURE_FACTORIES[args.name]
    kwargs = {"seed": args.seed}
    if args.schemes:
        try:
            configs = factory(args.scale, schemes=args.schemes, **kwargs)
        except TypeError:
            configs = factory(args.scale, **kwargs)
    else:
        configs = factory(args.scale, **kwargs)
    campaign = Campaign.from_configs(args.name, configs)
    if args.cores is not None and args.workers != 1:
        raise CampaignError("pass --workers or --cores, not both")
    if args.dry_run:
        if args.cores is None:
            raise CampaignError("--dry-run previews scheduled execution; pass --cores N|auto")
        plan = campaign.plan(cores=args.cores)
        if args.json:
            json.dump(plan.to_dict(), out, indent=2)
            print(file=out)
        else:
            print(f"Figure {args.name!r} {plan.describe()}", file=out)
        return 0
    result_set = campaign.run(
        workers=None if args.cores is not None else args.workers, cores=args.cores
    )
    results = result_set.experiment_results_by_label()
    if args.json:
        json.dump({label: _result_summary(r) for label, r in results.items()}, out, indent=2)
        print(file=out)
        return 0
    print(
        format_series_table(
            f"{args.name}: p99 FCT slowdown vs flow size (scale={args.scale})",
            {label: result.slowdown_series() for label, result in results.items()},
        ),
        file=out,
    )
    summary_rows = {label: _result_summary(r) for label, r in results.items()}
    print(
        format_comparison_table(
            "Summary",
            {
                label: {
                    "p99 slowdown": row["p99_slowdown"],
                    "completion %": 100 * row["completion_rate"],
                    "drops": row["dropped_packets"],
                }
                for label, row in summary_rows.items()
            },
            columns=["p99 slowdown", "completion %", "drops"],
            fmt="{:.2f}",
        ),
        file=out,
    )
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    configs = {
        scheme: _single_config(scheme, args.scale, args.workload, args.load,
                               args.incast, args.seed)
        for scheme in args.schemes
    }
    result_set = Campaign.from_configs("compare", configs).run(workers=args.workers)
    results: Dict[str, ExperimentResult] = result_set.experiment_results_by_label()
    if args.json:
        json.dump({s: _result_summary(r) for s, r in results.items()}, out, indent=2)
        print(file=out)
        return 0
    print(
        format_series_table(
            f"p99 FCT slowdown vs flow size ({args.workload}, {args.load:.0%} load)",
            {scheme: result.slowdown_series() for scheme, result in results.items()},
        ),
        file=out,
    )
    print(
        format_comparison_table(
            "Summary",
            {
                scheme: {
                    "p99 slowdown": result.p99_slowdown(),
                    "p99 buffer KB": result.buffer_sampler.percentile(99) / 1e3,
                    "drops": float(result.dropped_packets),
                }
                for scheme, result in results.items()
            },
            columns=["p99 slowdown", "p99 buffer KB", "drops"],
            fmt="{:.2f}",
        ),
        file=out,
    )
    return 0


def cmd_shard(args: argparse.Namespace, out) -> int:
    from dataclasses import replace

    config = _single_config(args.scheme, args.scale, args.workload, args.load,
                            args.incast, args.seed)
    config = replace(config, shards=args.shards, shard_strategy=args.strategy,
                     shard_sync=args.sync)
    result = run_experiment(config)
    summary = _result_summary(result)
    payload = {"summary": summary, "shard_stats": result.shard_stats}
    if args.json:
        json.dump(payload, out, indent=2)
        print(file=out)
        return 0
    print(
        f"Sharded experiment: {config.name} "
        f"(scale={args.scale}, shards={args.shards}, strategy={args.strategy}, "
        f"sync={args.sync})",
        file=out,
    )
    for key, value in summary.items():
        if isinstance(value, float):
            print(f"  {key:<24s} {value:.4f}", file=out)
        else:
            print(f"  {key:<24s} {value}", file=out)
    stats = result.shard_stats
    if stats is None:
        print("\n  (single-process run: no shard statistics)", file=out)
        return 0
    print(file=out)
    print("Partition:", file=out)
    _print_partition(stats, out)
    if "sync" in stats:
        sync = stats["sync"]
        requested = stats.get("requested_sync", sync)
        label = sync if requested == sync else f"{sync} (requested {requested})"
        print(f"  sync                   {label}", file=out)
    if "barriers" in stats:
        print(f"  barriers               {stats['barriers']}", file=out)
        print(f"  boundary packets       {stats['boundary_packets']}", file=out)
        for shard, events in stats.get("events_per_shard", {}).items():
            print(f"  shard {shard} events         {events}", file=out)
    speculation = stats.get("speculation")
    if speculation:
        print(file=out)
        print("Speculation:", file=out)
        print(f"  snapshots              {speculation['snapshots']}", file=out)
        print(f"  snapshot cadence       every {speculation['snapshot_every']} "
              "speculative round(s)", file=out)
        print(f"  rollbacks              {speculation['rollbacks']}", file=out)
        print(f"  events re-executed     {speculation['events_reexecuted']}",
              file=out)
        print(f"  stragglers             {speculation['stragglers']}", file=out)
        print(f"  retractions            {speculation['retractions']}", file=out)
        print(f"  barriers avoided       {speculation['barriers_avoided']}",
              file=out)
        print(f"  max leap used          {speculation['max_leap_used']} "
              f"(cap {speculation['max_leap']})", file=out)
    return 0


def _print_partition(stats: Dict[str, object], out) -> None:
    """Shared partition-stats block of ``repro shard`` and ``repro topology``."""
    print(f"  strategy               {stats['strategy']}", file=out)
    for shard, sizes in stats["shards"].items():
        print(
            f"  shard {shard:<17s} {sizes['hosts']} hosts, "
            f"{sizes['switches']} switches",
            file=out,
        )
    print(f"  cut links              {stats['cut_links']}", file=out)
    for link_class, count in stats.get("cut_links_by_class", {}).items():
        print(f"    {link_class:<21s} {count}", file=out)
    window = stats.get("window_ns")
    if window is not None:
        print(f"  window (lookahead)     {window} ns", file=out)
    else:
        print("  window (lookahead)     n/a (no cut links)", file=out)


def cmd_topology(args: argparse.Namespace, out) -> int:
    # Build only the wired topology — not the traffic trace — so inspecting
    # a paper-scale cut stays cheap.
    from repro.experiments.runner import build_topology_only
    from repro.shard import SyncPolicy, partition_topology

    factory = FIGURE_FACTORIES[args.figure]
    configs = factory(args.scale)
    config = next(iter(configs.values()))
    topo = build_topology_only(config)

    switches_by_tier: Dict[str, int] = {}
    for switch in topo.all_switches():
        tier = getattr(switch, "tier", "unknown")
        switches_by_tier[tier] = switches_by_tier.get(tier, 0) + 1
    links_by_class: Dict[str, int] = {}
    for link in topo.links:
        links_by_class[link.link_class] = links_by_class.get(link.link_class, 0) + 1

    spec = partition_topology(topo, args.shards, args.strategy)
    with warnings.catch_warnings():
        # Resolution may warn about the accel backend; the text report
        # carries the same information in the "reason" field.
        warnings.simplefilter("ignore", RuntimeWarning)
        policy = SyncPolicy.resolve(args.sync, spec.window_ns)
    info = {
        "figure": args.figure,
        "scale": args.scale,
        "hosts": len(topo.hosts),
        "switches": len(topo.switches),
        "switches_by_tier": dict(sorted(switches_by_tier.items())),
        "links": len(topo.links),
        "links_by_class": dict(sorted(links_by_class.items())),
        "oversubscription": config.clos.oversubscription(),
        "link_rate_gbps": config.clos.link_rate_bps / 1e9,
        "link_delay_ns": config.clos.link_delay_ns,
        "partition": spec.stats(topo),
        "sync": {
            "requested": policy.requested,
            "mode": policy.mode,
            "reason": policy.reason,
            "max_leap": policy.max_leap,
            "snapshot_every": policy.snapshot_every,
        },
    }
    if args.json:
        json.dump(info, out, indent=2)
        print(file=out)
        return 0
    print(f"Topology of {args.figure} at scale '{args.scale}':", file=out)
    print(f"  hosts                  {info['hosts']}", file=out)
    tiers = ", ".join(f"{n} {t}" for t, n in info["switches_by_tier"].items())
    print(f"  switches               {info['switches']} ({tiers})", file=out)
    classes = ", ".join(f"{n} {c}" for c, n in info["links_by_class"].items())
    print(f"  links                  {info['links']} ({classes})", file=out)
    print(f"  oversubscription       {info['oversubscription']:g}:1", file=out)
    print(
        f"  link rate / delay      {info['link_rate_gbps']:g} Gbps / "
        f"{info['link_delay_ns']} ns",
        file=out,
    )
    part = info["partition"]
    print(f"\nPartition into {args.shards} shard(s):", file=out)
    _print_partition(part, out)
    sync = info["sync"]
    print(f"\nSync policy for --sync {sync['requested']}:", file=out)
    print(f"  mode                   {sync['mode']} ({sync['reason']})", file=out)
    if sync["mode"] == "speculative":
        print(f"  max leap               {sync['max_leap']} windows", file=out)
        print(f"  snapshot cadence       every {sync['snapshot_every']} "
              "speculative round(s)", file=out)
    return 0


COMMANDS = {
    "schemes": cmd_schemes,
    "workloads": cmd_workloads,
    "run": cmd_run,
    "campaign": cmd_campaign,
    "sweep": cmd_campaign,
    "openloop": cmd_openloop,
    "analyze": cmd_analyze,
    "figure": cmd_figure,
    "compare": cmd_compare,
    "shard": cmd_shard,
    "topology": cmd_topology,
    "worker": cmd_worker,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point (also used by ``python -m repro``)."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = COMMANDS[args.command]
    try:
        return handler(args, out)
    except (CampaignError, UnknownSchemeError, PartitionError, ShardError) as exc:
        # Bad-input errors from the campaign and shard layers (duplicate
        # sweep values, unknown scheme, a partition the topology cannot
        # satisfy, unsupported shard options) read like argparse errors
        # instead of tracebacks.  Deliberately narrow: the simulator's own
        # ValueErrors are bugs and must stay loud.
        message = exc.args[0] if exc.args else exc
        print(f"{parser.prog} {args.command}: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
