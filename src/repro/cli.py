"""Command-line interface for the BFC reproduction.

The CLI wraps the experiment runner and the per-figure scenarios so that the
common workflows need no Python code:

``python -m repro schemes``
    List the available schemes and what they wire up.

``python -m repro workloads``
    Describe the industry flow-size distributions (mean, sub-BDP share).

``python -m repro run --scheme BFC --scale tiny``
    Run a single experiment (the Fig. 5a workload by default) and print a
    summary; ``--json`` emits machine-readable output.

``python -m repro figure fig5a --scale tiny --schemes BFC DCQCN``
    Run one of the paper's figures and print the reproduced table.

``python -m repro compare --scale tiny --schemes BFC DCQCN HPCC``
    Run several schemes on the same trace and print the comparison table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_comparison_table, format_series_table
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.schemes import SCHEMES, available_schemes
from repro.experiments import scenarios
from repro.sim import units
from repro.workloads.distributions import WORKLOADS


#: Figures that can be driven directly from the CLI (single-config-per-label
#: scenarios; the sweep figures 8 and 10 need the benchmark harness).
FIGURE_FACTORIES = {
    "fig2": scenarios.fig2_configs,
    "fig3": scenarios.fig3_configs,
    "fig5a": scenarios.fig5a_configs,
    "fig5b": scenarios.fig5b_configs,
    "fig5c": scenarios.fig5c_configs,
    "fig6": scenarios.fig6_configs,
    "fig7": scenarios.fig7_configs,
    "fig9": scenarios.fig9_configs,
    "fig11": scenarios.fig11_configs,
    "fig12": scenarios.fig12_configs,
    "fig13": scenarios.fig13_configs,
    "fig14": scenarios.fig14_configs,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Backpressure Flow Control (BFC) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("schemes", help="list available congestion-control schemes")

    sub.add_parser("workloads", help="describe the industry workload distributions")

    run = sub.add_parser("run", help="run a single experiment and print a summary")
    run.add_argument("--scheme", default="BFC", choices=available_schemes())
    run.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    run.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    run.add_argument("--load", type=float, default=0.6, help="offered load (fraction)")
    run.add_argument("--incast", type=float, default=0.05,
                     help="incast load fraction (0 disables incast)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--json", action="store_true", help="emit JSON instead of text")

    figure = sub.add_parser("figure", help="run one of the paper's figures")
    figure.add_argument("name", choices=sorted(FIGURE_FACTORIES))
    figure.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    figure.add_argument("--schemes", nargs="*", default=None,
                        help="restrict to these schemes (figures 5a-c, 6, 9 only)")
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument("--json", action="store_true")

    compare = sub.add_parser("compare", help="run several schemes on one trace")
    compare.add_argument("--schemes", nargs="+", default=["BFC", "DCQCN", "DCQCN+Win"],
                         choices=available_schemes())
    compare.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    compare.add_argument("--workload", default="google", choices=sorted(WORKLOADS))
    compare.add_argument("--load", type=float, default=0.6)
    compare.add_argument("--incast", type=float, default=0.05)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--json", action="store_true")
    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------


def _result_summary(result: ExperimentResult) -> Dict[str, float]:
    pause = result.pause_fraction_by_class()
    return {
        "scheme": result.scheme,
        "flows_offered": result.flows_offered,
        "completion_rate": result.completion_rate(),
        "p99_slowdown": result.p99_slowdown(),
        "mean_slowdown": result.mean_slowdown(),
        "dropped_packets": result.dropped_packets,
        "p99_buffer_bytes": result.buffer_sampler.percentile(99),
        "max_pfc_pause_fraction": max(pause.values()) if pause else 0.0,
        "collision_fraction": result.collision_fraction or 0.0,
        "events_processed": result.events_processed,
        "wall_seconds": result.wall_seconds,
    }


def _single_config(scheme: str, scale_name: str, workload: str, load: float,
                   incast: float, seed: int):
    scale = scenarios.get_scale(scale_name)
    distribution = WORKLOADS[workload]
    traffic = scenarios._background_traffic(
        scale, distribution, load, incast_load=incast if incast > 0 else None, seed=seed
    )
    return scenarios._base_config(
        f"cli/{scheme}/{workload}", scheme, scale, traffic, seed=seed
    )


def cmd_schemes(args: argparse.Namespace, out) -> int:
    rows = {name: {"description": spec.description} for name, spec in SCHEMES.items()}
    width = max(len(name) for name in rows)
    for name in sorted(rows):
        print(f"  {name.ljust(width)}  {rows[name]['description']}", file=out)
    return 0


def cmd_workloads(args: argparse.Namespace, out) -> int:
    bdp = units.bandwidth_delay_product(units.gbps(100), units.microseconds(8))
    rows = {}
    for name, dist in WORKLOADS.items():
        rows[dist.name] = {
            "mean KB": dist.mean() / 1e3,
            "flows <= 1KB (%)": 100 * dist.cdf(1_000),
            "flows <= 1 BDP (%)": 100 * dist.cdf(bdp),
            "max size (MB)": dist.max_size() / 1e6,
        }
    print(
        format_comparison_table(
            "Industry workloads (BDP = 100 KB at 100 Gbps / 8 us)",
            rows,
            columns=["mean KB", "flows <= 1KB (%)", "flows <= 1 BDP (%)", "max size (MB)"],
            fmt="{:.1f}",
        ),
        file=out,
    )
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    config = _single_config(args.scheme, args.scale, args.workload, args.load,
                            args.incast, args.seed)
    result = run_experiment(config)
    summary = _result_summary(result)
    if args.json:
        json.dump(summary, out, indent=2)
        print(file=out)
    else:
        print(f"Experiment: {config.name} (scale={args.scale}, load={args.load:.0%})", file=out)
        for key, value in summary.items():
            if isinstance(value, float):
                print(f"  {key:<24s} {value:.4f}", file=out)
            else:
                print(f"  {key:<24s} {value}", file=out)
        print(file=out)
        print(
            format_series_table(
                "p99 FCT slowdown vs flow size",
                {args.scheme: result.slowdown_series()},
            ),
            file=out,
        )
    return 0


def cmd_figure(args: argparse.Namespace, out) -> int:
    factory = FIGURE_FACTORIES[args.name]
    kwargs = {"seed": args.seed}
    if args.schemes:
        try:
            configs = factory(args.scale, schemes=args.schemes, **kwargs)
        except TypeError:
            configs = factory(args.scale, **kwargs)
    else:
        configs = factory(args.scale, **kwargs)
    results = {label: run_experiment(config) for label, config in configs.items()}
    if args.json:
        json.dump({label: _result_summary(r) for label, r in results.items()}, out, indent=2)
        print(file=out)
        return 0
    print(
        format_series_table(
            f"{args.name}: p99 FCT slowdown vs flow size (scale={args.scale})",
            {label: result.slowdown_series() for label, result in results.items()},
        ),
        file=out,
    )
    summary_rows = {label: _result_summary(r) for label, r in results.items()}
    print(
        format_comparison_table(
            "Summary",
            {
                label: {
                    "p99 slowdown": row["p99_slowdown"],
                    "completion %": 100 * row["completion_rate"],
                    "drops": row["dropped_packets"],
                }
                for label, row in summary_rows.items()
            },
            columns=["p99 slowdown", "completion %", "drops"],
            fmt="{:.2f}",
        ),
        file=out,
    )
    return 0


def cmd_compare(args: argparse.Namespace, out) -> int:
    results: Dict[str, ExperimentResult] = {}
    for scheme in args.schemes:
        config = _single_config(scheme, args.scale, args.workload, args.load,
                                args.incast, args.seed)
        results[scheme] = run_experiment(config)
    if args.json:
        json.dump({s: _result_summary(r) for s, r in results.items()}, out, indent=2)
        print(file=out)
        return 0
    print(
        format_series_table(
            f"p99 FCT slowdown vs flow size ({args.workload}, {args.load:.0%} load)",
            {scheme: result.slowdown_series() for scheme, result in results.items()},
        ),
        file=out,
    )
    print(
        format_comparison_table(
            "Summary",
            {
                scheme: {
                    "p99 slowdown": result.p99_slowdown(),
                    "p99 buffer KB": result.buffer_sampler.percentile(99) / 1e3,
                    "drops": float(result.dropped_packets),
                }
                for scheme, result in results.items()
            },
            columns=["p99 slowdown", "p99 buffer KB", "drops"],
            fmt="{:.2f}",
        ),
        file=out,
    )
    return 0


COMMANDS = {
    "schemes": cmd_schemes,
    "workloads": cmd_workloads,
    "run": cmd_run,
    "figure": cmd_figure,
    "compare": cmd_compare,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """Entry point (also used by ``python -m repro``)."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = COMMANDS[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
