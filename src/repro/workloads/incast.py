"""Incast traffic generation.

The paper adds "5 % incast" to several experiments: periodically, many
senders (the *fan-in*, 100 in Fig. 5, swept from 10 to 800 in Fig. 8)
simultaneously send to one receiver; the aggregate size of each incast event
is fixed (20 MB in the paper) so a larger fan-in means smaller per-sender
flows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.flow import Flow

from .trace import FlowTrace


@dataclass
class IncastSpec:
    """Parameters of a periodic incast process."""

    fan_in: int
    aggregate_bytes: int
    period_ns: int
    duration_ns: int
    start_ns: int = 0

    def per_sender_bytes(self) -> int:
        return max(1, self.aggregate_bytes // self.fan_in)

    def validate(self) -> None:
        if self.fan_in < 1:
            raise ValueError("fan_in must be >= 1")
        if self.aggregate_bytes <= 0:
            raise ValueError("aggregate_bytes must be positive")
        if self.period_ns <= 0 or self.duration_ns <= 0:
            raise ValueError("period and duration must be positive")


def incast_period_for_load(
    incast_load: float,
    aggregate_bytes: int,
    num_hosts: int,
    host_link_rate_bps: float,
) -> int:
    """Period between incast events so they contribute ``incast_load``.

    The paper expresses incast as a share of the network capacity (e.g.
    "60 % + 5 % incast"); with one ``aggregate_bytes`` event per period the
    offered incast load is aggregate_bytes / (period * capacity).
    """
    if not 0 < incast_load < 1:
        raise ValueError("incast_load must be in (0, 1)")
    aggregate_capacity_Bps = num_hosts * host_link_rate_bps / 8.0
    period_s = aggregate_bytes / (incast_load * aggregate_capacity_Bps)
    return max(1, int(period_s * 1e9))


def generate_incast_series(
    spec: IncastSpec,
    host_ids: Sequence[int],
    seed: int = 2,
    receiver: Optional[int] = None,
) -> FlowTrace:
    """Generate the incast flows for a whole run.

    Each event picks a receiver (fixed if ``receiver`` is given, otherwise
    random per event) and ``fan_in`` distinct senders; every sender transfers
    ``aggregate_bytes / fan_in`` starting at the same instant.
    """
    spec.validate()
    if len(host_ids) < 2:
        raise ValueError("need at least two hosts")
    rng = random.Random(seed)
    flows: List[Flow] = []
    per_sender = spec.per_sender_bytes()
    event_time = spec.start_ns
    event_index = 0
    while event_time < spec.start_ns + spec.duration_ns:
        dst = receiver if receiver is not None else rng.choice(list(host_ids))
        senders = [h for h in host_ids if h != dst]
        fan_in = min(spec.fan_in, len(senders))
        chosen = rng.sample(senders, fan_in)
        for i, src in enumerate(chosen):
            flows.append(
                Flow(
                    src=src,
                    dst=dst,
                    size=per_sender,
                    start_ns=int(event_time),
                    src_port=20_000 + (event_index % 1_000) * 32 + (i % 32),
                    is_incast=True,
                    tag="incast",
                )
            )
        event_time += spec.period_ns
        event_index += 1
    return FlowTrace(flows)
