"""Dependency-driven flow launches: flow graphs and their runtime launcher.

Collective and RPC workloads (:mod:`repro.workloads.collectives`,
:mod:`repro.workloads.rpc`) are not lists of time-triggered flows — a flow
starts when its *prerequisite* flows have delivered (the next all-reduce step
needs the previous chunk; an RPC response needs the request).  A
:class:`FlowGraph` holds such a workload: plain :class:`~repro.sim.flow.Flow`
objects whose ``depends_on`` tuples name the prerequisite flow ids, plus an
optional per-flow compute delay between the last prerequisite completing and
the launch.

**The locality invariant.**  Every prerequisite must terminate at its
dependent's source host (``dep.dst == dependent.src``).  The launching host
then observes all prerequisite completions *locally*, which is what keeps
dependency launches byte-identical under sharding: a completion fires on the
shard owning ``dep.dst``, and the dependent flow it unlocks starts on that
same shard.  :meth:`FlowGraph.validate` enforces the invariant (and
acyclicity) at build time.

**Runtime.**  All graph flows are materialized into the run's
:class:`~repro.workloads.trace.FlowTrace` (so ``flows_offered`` and the
result harvest account for them), but :meth:`Topology.start_flow` registers
rather than schedules flows carrying ``depends_on``.  A
:class:`FlowGraphLauncher` — installed by ``build_simulation`` as each
host's ``on_flow_complete`` hook — counts down prerequisites and schedules
each dependent the moment its last prerequisite completes.  The launcher is
deliberately a *class with bound-method hooks*, never a closure: the
speculative shard runtime snapshots whole worlds, and
:mod:`repro.shard.snapshot` copies bound methods through their ``__self__``
while treating plain functions as atomic (a stateful closure would alias its
cells across timelines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.flow import Flow

from .trace import FlowTrace


class FlowGraphError(ValueError):
    """Raised when a flow graph violates the launch invariants."""


@dataclass
class FlowGraph:
    """A set of flows whose launches are (partially) dependency-ordered.

    Attributes
    ----------
    flows:
        Every flow of the workload, roots and dependents alike.  Roots
        (``depends_on`` empty/None) start at their ``start_ns`` like any
        trace flow; dependents start when their prerequisites complete.
    compute_delay_ns:
        Optional per-flow-id delay inserted between the last prerequisite
        completing and the dependent launching (models application compute:
        a training step between all-reduce rounds, RPC service time).
    """

    flows: List[Flow] = field(default_factory=list)
    compute_delay_ns: Dict[int, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.flows)

    def roots(self) -> List[Flow]:
        return [f for f in self.flows if not f.depends_on]

    def dependents(self) -> List[Flow]:
        return [f for f in self.flows if f.depends_on]

    def trace(self) -> FlowTrace:
        """All graph flows as a trace (merged into the experiment trace)."""
        return FlowTrace(self.flows)

    def merge(self, other: "FlowGraph") -> "FlowGraph":
        merged_delays = dict(self.compute_delay_ns)
        merged_delays.update(other.compute_delay_ns)
        return FlowGraph(self.flows + other.flows, merged_delays)

    def validate(self) -> "FlowGraph":
        """Check the launch invariants; returns self for chaining.

        * every prerequisite id names a flow in this graph;
        * every prerequisite terminates at its dependent's source host
          (``dep.dst == dependent.src`` — the shard-locality invariant);
        * the dependency relation is acyclic;
        * at least one root exists when the graph is non-empty.
        """
        by_id = {f.flow_id: f for f in self.flows}
        if len(by_id) != len(self.flows):
            raise FlowGraphError("duplicate flow ids in flow graph")
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for flow in self.flows:
            if not flow.depends_on:
                continue
            if len(set(flow.depends_on)) != len(flow.depends_on):
                raise FlowGraphError(
                    f"flow {flow.flow_id} lists a prerequisite twice"
                )
            indegree[flow.flow_id] = len(flow.depends_on)
            for dep_id in flow.depends_on:
                dep = by_id.get(dep_id)
                if dep is None:
                    raise FlowGraphError(
                        f"flow {flow.flow_id} depends on unknown flow {dep_id}"
                    )
                if dep.dst != flow.src:
                    raise FlowGraphError(
                        f"flow {flow.flow_id} (src host {flow.src}) depends on "
                        f"flow {dep_id} ending at host {dep.dst}; prerequisites "
                        "must terminate at the dependent's source host"
                    )
                dependents.setdefault(dep_id, []).append(flow.flow_id)
        if self.flows and len(indegree) == len(self.flows):
            raise FlowGraphError("flow graph has no root flows")
        # Kahn's algorithm: everything must be reachable from the roots.
        ready = [f.flow_id for f in self.flows if not f.depends_on]
        seen = 0
        while ready:
            fid = ready.pop()
            seen += 1
            for child in dependents.get(fid, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if seen != len(self.flows):
            raise FlowGraphError("flow graph contains a dependency cycle")
        return self


class FlowGraphLauncher:
    """Launches dependency-gated flows as their prerequisites complete.

    One launcher serves a whole run.  It installs itself as every host's
    ``on_flow_complete`` hook (a bound method — see the module docstring for
    why it must not be a closure); each completion decrements the remaining
    prerequisite counts of its dependents, and a dependent whose count hits
    zero is stamped with its actual start time and scheduled on its source
    host exactly like a time-triggered flow would have been.
    """

    def __init__(self, graph: FlowGraph, topo) -> None:
        self.topo = topo
        self._flows_by_id: Dict[int, Flow] = {f.flow_id: f for f in graph.flows}
        self._compute_delay_ns = dict(graph.compute_delay_ns)
        self._remaining: Dict[int, int] = {}
        self._dependents: Dict[int, Tuple[int, ...]] = {}
        dependents: Dict[int, List[int]] = {}
        for flow in graph.flows:
            if not flow.depends_on:
                continue
            self._remaining[flow.flow_id] = len(flow.depends_on)
            for dep_id in flow.depends_on:
                dependents.setdefault(dep_id, []).append(flow.flow_id)
        for dep_id, children in dependents.items():
            self._dependents[dep_id] = tuple(children)
        self.launched = 0

    def install(self) -> None:
        """Hook every host's completion callback (must still be unclaimed)."""
        for host in self.topo.hosts.values():
            if host.on_flow_complete is not None:
                raise RuntimeError(
                    "host completion hook already claimed; install the flow-"
                    "graph launcher before other on_flow_complete consumers"
                )
            host.on_flow_complete = self.on_flow_complete

    def pending(self) -> int:
        """Dependents whose prerequisites have not all completed yet."""
        return len(self._remaining)

    # -- the hook (bound method: snapshot-safe) -----------------------------------

    def on_flow_complete(self, flow: Flow, now_ns: int) -> None:
        children = self._dependents.get(flow.flow_id)
        if not children:
            return
        remaining = self._remaining
        for child_id in children:
            left = remaining.get(child_id)
            if left is None:  # already launched (defensive)
                continue
            if left > 1:
                remaining[child_id] = left - 1
                continue
            del remaining[child_id]
            child = self._flows_by_id[child_id]
            start = now_ns + self._compute_delay_ns.get(child_id, 0)
            if child.start_ns > start:
                start = child.start_ns
            child.start_ns = start
            host = self.topo.host(child.src)
            self.topo.sim.schedule_at(start, host.start_flow, child)
            self.launched += 1
