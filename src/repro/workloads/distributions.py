"""Empirical flow-size distributions for the paper's three industry workloads.

The paper synthesises traces matching the flow-size distributions of
(1) all applications in a Google data center, (2) a Facebook Hadoop cluster
and (3) the DCTCP WebSearch workload [28].  The exact traces are proprietary;
the control points below are digitised from the published cumulative
distributions (Fig. 4 of the paper and the Homa/DCTCP papers it cites) and
reproduce the property the evaluation relies on: the Google workload is
dominated by sub-RTT flows (>80 % of flows under 1 KB), FB_Hadoop is mostly
small-to-medium messages, and WebSearch carries most of its bytes in
multi-megabyte flows.

Sampling uses inverse-transform sampling with log-linear interpolation
between control points.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Sequence, Tuple


class EmpiricalSizeDistribution:
    """A flow-size distribution defined by (size_bytes, cumulative_prob) points."""

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two control points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if sorted(sizes) != list(sizes):
            raise ValueError("sizes must be non-decreasing")
        if sorted(probs) != list(probs):
            raise ValueError("cumulative probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("last cumulative probability must be 1.0")
        if probs[0] < 0:
            raise ValueError("probabilities must be non-negative")
        self.name = name
        self._sizes = [float(s) for s in sizes]
        self._probs = [float(p) for p in probs]

    # -- sampling -----------------------------------------------------------------

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes)."""
        return self.quantile(rng.random())

    def sample_many(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]

    def quantile(self, u: float) -> int:
        """The flow size at cumulative probability ``u`` (log-interpolated)."""
        u = min(max(u, 0.0), 1.0)
        probs, sizes = self._probs, self._sizes
        if u <= probs[0]:
            return max(1, int(round(sizes[0])))
        idx = bisect.bisect_left(probs, u)
        idx = min(idx, len(probs) - 1)
        lo_p, hi_p = probs[idx - 1], probs[idx]
        lo_s, hi_s = sizes[idx - 1], sizes[idx]
        if hi_p <= lo_p:
            return max(1, int(round(hi_s)))
        frac = (u - lo_p) / (hi_p - lo_p)
        if lo_s <= 0:
            value = lo_s + frac * (hi_s - lo_s)
        else:
            value = math.exp(math.log(lo_s) + frac * (math.log(hi_s) - math.log(lo_s)))
        return max(1, int(round(value)))

    # -- moments ---------------------------------------------------------------------

    def mean(self) -> float:
        """Mean flow size in bytes (piecewise log-linear integration)."""
        total = 0.0
        prev_p = 0.0
        prev_s = self._sizes[0]
        # Probability mass below the first point is attributed to the first size.
        total += self._probs[0] * self._sizes[0]
        prev_p = self._probs[0]
        for s, p in zip(self._sizes[1:], self._probs[1:]):
            mass = p - prev_p
            if mass > 0:
                # Geometric mean of the segment endpoints approximates the
                # log-linear interpolation used for sampling.
                total += mass * math.sqrt(max(prev_s, 1.0) * max(s, 1.0))
            prev_p, prev_s = p, s
        return total

    def cdf(self, size: float) -> float:
        """Cumulative probability of a flow being at most ``size`` bytes."""
        sizes, probs = self._sizes, self._probs
        if size <= sizes[0]:
            return probs[0] if size >= sizes[0] else 0.0
        if size >= sizes[-1]:
            return 1.0
        idx = bisect.bisect_left(sizes, size)
        lo_s, hi_s = sizes[idx - 1], sizes[idx]
        lo_p, hi_p = probs[idx - 1], probs[idx]
        if hi_s <= lo_s:
            return hi_p
        frac = (math.log(size) - math.log(lo_s)) / (math.log(hi_s) - math.log(lo_s))
        return lo_p + frac * (hi_p - lo_p)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._sizes, self._probs))

    def max_size(self) -> int:
        return int(self._sizes[-1])


def byte_weighted_cdf(
    distribution: EmpiricalSizeDistribution, points: int = 40
) -> List[Tuple[float, float]]:
    """The byte-weighted CDF shown in the paper's Fig. 4.

    Returns ``(size, fraction_of_total_bytes_in_flows_at_most_size)`` pairs
    computed by numerically integrating size * dP over the distribution.
    """
    lo = math.log(max(1.0, distribution._sizes[0]))
    hi = math.log(distribution._sizes[-1])
    grid = [math.exp(lo + (hi - lo) * i / points) for i in range(points + 1)]
    masses = []
    prev_cdf = 0.0
    for i, size in enumerate(grid):
        cdf = distribution.cdf(size)
        mid = math.sqrt(size * (grid[i - 1] if i > 0 else size))
        masses.append((size, (cdf - prev_cdf) * mid))
        prev_cdf = cdf
    total = sum(m for _, m in masses)
    if total <= 0:
        return [(size, 0.0) for size, _ in masses]
    cumulative = 0.0
    result = []
    for size, mass in masses:
        cumulative += mass
        result.append((size, cumulative / total))
    return result


# ---------------------------------------------------------------------------
# The three industry workloads (control points digitised from the published
# flow-size CDFs).
# ---------------------------------------------------------------------------

# Google "all applications" RPC sizes: more than 80% of flows are below 1 KB
# and the clear majority of *bytes* sit in flows that fit within one
# end-to-end bandwidth-delay product (~100 KB at 100 Gbps / 8 us), which is
# the property the paper's Fig. 4 highlights.
GOOGLE = EmpiricalSizeDistribution(
    "Google",
    [
        (64, 0.10),
        (128, 0.30),
        (256, 0.50),
        (512, 0.70),
        (1_000, 0.82),
        (2_000, 0.885),
        (5_000, 0.925),
        (10_000, 0.955),
        (30_000, 0.975),
        (100_000, 0.993),
        (300_000, 0.9993),
        (1_000_000, 1.0),
    ],
)

# Facebook Hadoop: mostly small messages with a moderate tail of multi-MB
# shuffle transfers; byte mass is split between sub-BDP flows and the tail.
FB_HADOOP = EmpiricalSizeDistribution(
    "FB_Hadoop",
    [
        (128, 0.08),
        (256, 0.20),
        (512, 0.40),
        (1_000, 0.55),
        (2_000, 0.65),
        (5_000, 0.75),
        (10_000, 0.82),
        (30_000, 0.88),
        (100_000, 0.92),
        (300_000, 0.96),
        (1_000_000, 0.99),
        (3_000_000, 0.999),
        (10_000_000, 1.0),
    ],
)

WEBSEARCH = EmpiricalSizeDistribution(
    "WebSearch",
    [
        (6_000, 0.15),
        (13_000, 0.30),
        (19_000, 0.50),
        (33_000, 0.60),
        (53_000, 0.70),
        (133_000, 0.80),
        (667_000, 0.90),
        (1_300_000, 0.95),
        (6_700_000, 0.98),
        (20_000_000, 0.999),
        (30_000_000, 1.0),
    ],
)

WORKLOADS: Dict[str, EmpiricalSizeDistribution] = {
    "google": GOOGLE,
    "fb_hadoop": FB_HADOOP,
    "websearch": WEBSEARCH,
}
