"""RPC fan-out microservice workloads as dependency-driven flow graphs.

A user-facing request in a microservice fabric fans out into a tree of
internal RPCs: the front-end calls ``fan_out`` services, each of those calls
``fan_out`` more, ``depth`` levels deep, and responses fan back *in* — the
front-end cannot answer until the slowest leaf has.  Tail latency is
therefore governed by the worst path through the fabric, which makes these
trees the canonical stress test for a scheme's short-flow tail (the paper's
motivating metric).

The generator builds one :class:`~repro.workloads.flowgraph.FlowGraph` per
request tree:

* **requests flow down** — a child-level request leaves a service only after
  the request *into* that service arrived (``dep.dst == dependent.src``);
* **responses flow up** — a leaf responds after its request arrived; an
  internal service responds only after *all* of its children's responses
  arrived (fan-in), plus an optional ``compute_delay_ns`` of service time.

Requests are small fixed-size messages; response sizes are sampled from the
paper's empirical size CDFs (:data:`repro.workloads.distributions.WORKLOADS`)
so the fan-in traffic matches the measured distributions.  Request roots
arrive as a Poisson process over the configured window, and each service
dispatches its child calls *serially* — successive requests leave
``dispatch_gap_ns`` (plus jitter) apart, the way a CPU's send loop actually
behaves.  The stagger also keeps sibling subtrees off each other's exact
event timings: perfectly simultaneous identical sends would tie in time and
full scheduling ancestry, where the engine's ordering contract no longer
guarantees a shard-independent tie-break.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.flow import Flow

from .distributions import WORKLOADS
from .flowgraph import FlowGraph


@dataclass(frozen=True)
class RpcFanoutSpec:
    """Configuration of a stream of fan-out/fan-in request trees.

    Attributes
    ----------
    num_requests:
        User-facing requests (trees) to generate.
    fan_out:
        Children each service calls at every level.
    depth:
        Service levels below the client (``depth=1`` is a flat scatter-
        gather; ``depth=2`` adds a second tier, and so on).
    request_bytes:
        Size of every downward request message.
    response_workload:
        Name of the empirical size CDF (``google``, ``fb_hadoop``,
        ``websearch``) responses are drawn from.
    mean_interarrival_ns:
        Mean gap of the Poisson request-arrival process.
    compute_delay_ns:
        Service time inserted before each response (leaf and internal).
    dispatch_gap_ns:
        Per-call dispatch overhead of a service's send loop: the ``i``-th
        child request leaves roughly ``i * dispatch_gap_ns`` after the
        first, with seed-driven jitter.  Must stay positive — simultaneous
        identical sibling sends would tie beyond the engine's ancestry
        tie-break and lose shard-independence.
    start_ns:
        Arrival time of the first request.
    tag:
        Label stamped on every generated flow.
    """

    num_requests: int = 1
    fan_out: int = 3
    depth: int = 2
    request_bytes: int = 2_000
    response_workload: str = "google"
    mean_interarrival_ns: int = 100_000
    compute_delay_ns: int = 0
    dispatch_gap_ns: int = 200
    start_ns: int = 0
    tag: str = "rpc"

    def validate(self) -> None:
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.fan_out <= 0:
            raise ValueError("fan_out must be positive")
        if self.depth <= 0:
            raise ValueError("depth must be positive")
        if self.request_bytes <= 0:
            raise ValueError("request_bytes must be positive")
        if self.response_workload not in WORKLOADS:
            raise ValueError(
                f"unknown response workload {self.response_workload!r}; "
                f"expected one of {sorted(WORKLOADS)}"
            )
        if self.mean_interarrival_ns <= 0:
            raise ValueError("mean_interarrival_ns must be positive")
        if self.dispatch_gap_ns <= 0:
            raise ValueError("dispatch_gap_ns must be positive")
        if self.compute_delay_ns < 0 or self.start_ns < 0:
            raise ValueError("delays must be non-negative")

    def tree_size(self) -> int:
        """Service nodes per request tree (client excluded)."""
        return sum(self.fan_out ** level for level in range(1, self.depth + 1))

    # -- generation -------------------------------------------------------------------

    def generate(self, host_ids: Sequence[int], seed: int = 0) -> FlowGraph:
        """Build the flow graph: ``num_requests`` independent request trees."""
        self.validate()
        hosts = list(host_ids)
        if len(hosts) < 2:
            raise ValueError("RPC workloads need at least 2 hosts")
        rng = random.Random(seed)
        sizes = WORKLOADS[self.response_workload]
        graph = FlowGraph()
        arrival = float(self.start_ns)
        src_port = 3_000 + (seed % 40_000)
        for _ in range(self.num_requests):
            self._generate_tree(graph, hosts, rng, sizes, int(arrival), src_port)
            arrival += rng.expovariate(1.0 / self.mean_interarrival_ns)
        return graph.validate()

    def _generate_tree(self, graph, hosts, rng, sizes, arrival_ns, src_port) -> None:
        client = rng.choice(hosts)
        self._fan_out_from(
            graph, hosts, rng, sizes,
            node=client, level=0, request_in=None,
            arrival_ns=arrival_ns, src_port=src_port,
        )

    def _fan_out_from(
        self, graph, hosts, rng, sizes,
        node, level, request_in, arrival_ns, src_port,
    ) -> List[int]:
        """Issue this node's child requests; return its children's response ids.

        ``request_in`` is the id of the request flow that arrived *at* this
        node (``None`` for the client root).  Returns the flow ids of the
        responses arriving back at this node, which the caller folds into
        this node's own response dependencies.
        """
        response_ids: List[int] = []
        for index in range(self.fan_out):
            child = rng.choice(hosts)
            while child == node:
                child = rng.choice(hosts)
            # Serial send loop: the i-th call leaves inside the i-th
            # dispatch-gap slot (disjoint slots, jittered within each).
            dispatch_ns = index * self.dispatch_gap_ns + rng.randrange(
                self.dispatch_gap_ns
            )
            request = Flow(
                src=node,
                dst=child,
                size=self.request_bytes,
                start_ns=arrival_ns + dispatch_ns,
                src_port=src_port,
                tag=self.tag,
                depends_on=(request_in,) if request_in is not None else None,
            )
            graph.flows.append(request)
            if request_in is not None and dispatch_ns:
                # Dependency-launched: the stagger rides the launch delay
                # (start_ns alone would usually already be in the past).
                graph.compute_delay_ns[request.flow_id] = dispatch_ns
            if level + 1 < self.depth:
                child_responses = self._fan_out_from(
                    graph, hosts, rng, sizes,
                    node=child, level=level + 1, request_in=request.flow_id,
                    arrival_ns=arrival_ns, src_port=src_port,
                )
                # Internal service: responds after all children responded.
                response_deps = tuple(child_responses)
            else:
                # Leaf service: responds once its request arrived.
                response_deps = (request.flow_id,)
            response = Flow(
                src=child,
                dst=node,
                size=max(1, int(sizes.sample(rng))),
                start_ns=arrival_ns,
                src_port=src_port,
                tag=self.tag,
                depends_on=response_deps,
            )
            graph.flows.append(response)
            if self.compute_delay_ns:
                graph.compute_delay_ns[response.flow_id] = self.compute_delay_ns
            response_ids.append(response.flow_id)
        return response_ids
