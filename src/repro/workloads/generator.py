"""Open-loop flow arrival generation.

The paper drives its simulations with synthetic traces: flow sizes drawn from
one of the industry distributions, arrival times following a lognormal
inter-arrival process (sigma = 2) whose rate is chosen to hit a target
average load, and source/destination pairs picked uniformly at random.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.flow import Flow

from .distributions import EmpiricalSizeDistribution
from .trace import FlowTrace


@dataclass
class WorkloadSpec:
    """Everything needed to synthesise one background-traffic trace.

    Attributes
    ----------
    distribution:
        Flow-size distribution (Google / FB_Hadoop / WebSearch / custom).
    target_load:
        Average offered load as a fraction of the *aggregate host link
        capacity* (the paper's definition: 65 % load means the sum of flow
        bytes per second equals 65 % of the sum of host line rates).
    duration_ns:
        Length of the arrival process.
    sigma:
        Lognormal shape parameter of the inter-arrival distribution (2 in the
        paper; 0 degenerates to (almost) deterministic arrivals).
    max_flow_size:
        Optional cap on sampled flow sizes; scaled-down experiments cap the
        tail so a single elephant cannot dominate a short trace.
    """

    distribution: EmpiricalSizeDistribution
    target_load: float
    duration_ns: int
    sigma: float = 2.0
    max_flow_size: Optional[int] = None
    tag: str = "normal"

    def validate(self) -> None:
        if not 0 < self.target_load < 1.5:
            raise ValueError("target_load must be in (0, 1.5)")
        if self.duration_ns <= 0:
            raise ValueError("duration must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")


def load_to_arrival_rate(
    target_load: float,
    num_hosts: int,
    host_link_rate_bps: float,
    mean_flow_size_bytes: float,
) -> float:
    """Flow arrival rate (flows/second) that produces ``target_load``."""
    if mean_flow_size_bytes <= 0:
        raise ValueError("mean flow size must be positive")
    aggregate_capacity_Bps = num_hosts * host_link_rate_bps / 8.0
    return target_load * aggregate_capacity_Bps / mean_flow_size_bytes


def _lognormal_interarrivals(
    rng: random.Random, mean_ns: float, sigma: float
) -> float:
    """One inter-arrival sample with the requested mean and lognormal shape."""
    if sigma <= 0:
        return mean_ns
    mu = math.log(mean_ns) - sigma * sigma / 2.0
    return rng.lognormvariate(mu, sigma)


def generate_workload(
    spec: WorkloadSpec,
    host_ids: Sequence[int],
    host_link_rate_bps: float,
    seed: int = 1,
    src_hosts: Optional[Sequence[int]] = None,
    dst_hosts: Optional[Sequence[int]] = None,
) -> FlowTrace:
    """Synthesise a background trace for the given hosts.

    ``src_hosts`` / ``dst_hosts`` default to all hosts; the cross-DC scenario
    passes subsets to control the inter-DC traffic share.
    """
    spec.validate()
    if len(host_ids) < 2:
        raise ValueError("need at least two hosts")
    rng = random.Random(seed)
    srcs = list(src_hosts) if src_hosts is not None else list(host_ids)
    dsts = list(dst_hosts) if dst_hosts is not None else list(host_ids)

    mean_size = spec.distribution.mean()
    if spec.max_flow_size is not None:
        mean_size = min(mean_size, spec.max_flow_size)
    rate_per_s = load_to_arrival_rate(
        spec.target_load, len(host_ids), host_link_rate_bps, mean_size
    )
    mean_interarrival_ns = 1e9 / rate_per_s

    flows: List[Flow] = []
    now = 0.0
    port = 1
    while True:
        now += _lognormal_interarrivals(rng, mean_interarrival_ns, spec.sigma)
        if now >= spec.duration_ns:
            break
        size = spec.distribution.sample(rng)
        if spec.max_flow_size is not None:
            size = min(size, spec.max_flow_size)
        src = rng.choice(srcs)
        dst = rng.choice(dsts)
        while dst == src:
            dst = rng.choice(dsts)
        flows.append(
            Flow(
                src=src,
                dst=dst,
                size=size,
                start_ns=int(now),
                src_port=1_000 + (port % 50_000),
                tag=spec.tag,
            )
        )
        port += 1
    return FlowTrace(flows)
