"""Open-loop session traffic: Poisson arrivals generated lazily at run time.

The trace-based generators (:mod:`repro.workloads.generator`) materialize
every flow up front, which caps experiment scale at the memory needed to
hold the trace.  An open-loop source instead draws each arrival *during*
the simulation: it models a population of users who each start flows as an
independent Poisson process, and uses the superposition property — ``N``
users at ``r`` flows/s each are statistically identical to one Poisson
process at rate ``N * r`` — so "millions of users" costs one exponential
draw per flow and a fixed-size dict of currently-live flows, never an
O(total flows) trace.

The source pairs with the streaming harvest (:mod:`repro.results`): each
flow's record is spilled the moment it completes and its simulation state
is released, which is what makes run-time memory independent of how many
flows the run offers (see ``docs/results.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.flow import Flow

from .distributions import EmpiricalSizeDistribution
from .generator import load_to_arrival_rate


@dataclass
class OpenLoopSpec:
    """An open-loop Poisson arrival process over a flow-size distribution.

    Exactly one of three rate parameterisations must be supplied:

    * ``arrival_rate_per_s`` — the aggregate arrival rate, directly;
    * ``users`` × ``flows_per_user_per_s`` — a user-population model whose
      superposed rate is their product;
    * ``target_load`` — calibrated against the aggregate host link capacity
      and the distribution's mean flow size, exactly like the closed-loop
      :func:`~repro.workloads.generator.load_to_arrival_rate`.

    Attributes
    ----------
    distribution:
        Flow-size distribution (Google / FB_Hadoop / WebSearch / custom).
    duration_ns:
        Arrivals stop after this simulation time (drain continues).
    max_flow_size:
        Optional cap on sampled sizes (scaled-down runs cap the tail).
    max_flows:
        Optional hard cap on the number of arrivals — lets benchmarks run
        "exactly N flows" regardless of rate.
    src_hosts / dst_hosts:
        Optional host subsets (the cross-DC scenario uses these to shape
        the inter-DC traffic share); default is all hosts for both.
    release_flow_state:
        When true (the default), the runner releases each flow's simulation
        state as soon as its record is harvested, keeping memory bounded.
    seed_offset:
        Added to the experiment seed for the source's private RNG, so
        open-loop draws are decorrelated from trace-generation streams.
    """

    distribution: EmpiricalSizeDistribution
    duration_ns: int
    arrival_rate_per_s: Optional[float] = None
    users: Optional[int] = None
    flows_per_user_per_s: Optional[float] = None
    target_load: Optional[float] = None
    max_flow_size: Optional[int] = None
    max_flows: Optional[int] = None
    src_hosts: Optional[List[int]] = None
    dst_hosts: Optional[List[int]] = None
    tag: str = "openloop"
    release_flow_state: bool = True
    seed_offset: int = 101

    def validate(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        modes = [
            self.arrival_rate_per_s is not None,
            self.users is not None or self.flows_per_user_per_s is not None,
            self.target_load is not None,
        ]
        if sum(modes) != 1:
            raise ValueError(
                "specify exactly one of arrival_rate_per_s, "
                "users+flows_per_user_per_s, or target_load"
            )
        if self.arrival_rate_per_s is not None and self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.users is not None or self.flows_per_user_per_s is not None:
            if not self.users or not self.flows_per_user_per_s:
                raise ValueError("users and flows_per_user_per_s go together")
            if self.users < 1 or self.flows_per_user_per_s <= 0:
                raise ValueError("users must be >= 1 and flows_per_user_per_s > 0")
        if self.target_load is not None and not 0 < self.target_load < 1.5:
            raise ValueError("target_load must be in (0, 1.5)")
        if self.max_flows is not None and self.max_flows < 0:
            raise ValueError("max_flows must be >= 0")

    def aggregate_rate_per_s(self, num_hosts: int, host_link_rate_bps: float) -> float:
        """The superposed Poisson arrival rate in flows per second."""
        self.validate()
        if self.arrival_rate_per_s is not None:
            return self.arrival_rate_per_s
        if self.users is not None:
            return self.users * self.flows_per_user_per_s
        mean_size = self.distribution.mean()
        if self.max_flow_size is not None:
            mean_size = min(mean_size, self.max_flow_size)
        return load_to_arrival_rate(
            self.target_load, num_hosts, host_link_rate_bps, mean_size
        )

    def expected_flows(self, num_hosts: int, host_link_rate_bps: float) -> float:
        """Expected arrival count over ``duration_ns`` (before ``max_flows``)."""
        rate = self.aggregate_rate_per_s(num_hosts, host_link_rate_bps)
        expected = rate * self.duration_ns / 1e9
        if self.max_flows is not None:
            expected = min(expected, float(self.max_flows))
        return expected


class OpenLoopSource:
    """Drives an :class:`OpenLoopSpec` inside a running simulation.

    The source schedules one simulator event per arrival: the event creates
    the flow, hands it to its source host and draws the next exponential
    inter-arrival gap.  Only *live* flows (started but not yet completed)
    are tracked; the runner calls :meth:`notify_complete` from the host
    completion hook to untrack them, so the source's footprint is the
    steady-state number of in-flight flows, not the total offered.
    """

    def __init__(self, spec: OpenLoopSpec, sim, topo, seed: int) -> None:
        spec.validate()
        self.spec = spec
        self.sim = sim
        self.topo = topo
        self.rng = random.Random(seed + spec.seed_offset)
        host_ids = topo.host_ids()
        if len(host_ids) < 2:
            raise ValueError("open-loop traffic needs at least two hosts")
        self.srcs = list(spec.src_hosts) if spec.src_hosts is not None else list(host_ids)
        self.dsts = list(spec.dst_hosts) if spec.dst_hosts is not None else list(host_ids)
        if not self.srcs or not self.dsts:
            raise ValueError("src_hosts and dst_hosts must be non-empty")
        rate = spec.aggregate_rate_per_s(len(host_ids), topo.host_link_rate_bps)
        self.mean_interarrival_ns = 1e9 / rate
        self.live: Dict[int, Flow] = {}
        self.flows_started = 0
        self._port = 1

    # -- arrival process ---------------------------------------------------------

    def start(self) -> None:
        """Schedule the first arrival (call once, before ``sim.run``)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        spec = self.spec
        if spec.max_flows is not None and self.flows_started >= spec.max_flows:
            return
        gap_ns = self.rng.expovariate(1.0) * self.mean_interarrival_ns
        at_ns = self.sim.now + max(1, int(gap_ns))
        if at_ns >= spec.duration_ns:
            return
        self.sim.schedule_at(at_ns, self._arrival)

    def _arrival(self) -> None:
        spec = self.spec
        rng = self.rng
        size = spec.distribution.sample(rng)
        if spec.max_flow_size is not None:
            size = min(size, spec.max_flow_size)
        src = rng.choice(self.srcs)
        dst = rng.choice(self.dsts)
        while dst == src:
            dst = rng.choice(self.dsts)
        flow = Flow(
            src=src,
            dst=dst,
            size=size,
            start_ns=self.sim.now,
            src_port=1_000 + (self._port % 50_000),
            tag=spec.tag,
        )
        self._port += 1
        self.live[flow.flow_id] = flow
        self.flows_started += 1
        self.topo.host(src).start_flow(flow)
        self._schedule_next()

    # -- completion bookkeeping ----------------------------------------------------

    def notify_complete(self, flow: Flow) -> bool:
        """Untrack a completed flow; True iff this source started it."""
        return self.live.pop(flow.flow_id, None) is not None

    def unfinished_flows(self) -> List[Flow]:
        """Started-but-incomplete flows, in deterministic (flow id) order."""
        return [self.live[flow_id] for flow_id in sorted(self.live)]
