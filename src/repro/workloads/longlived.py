"""Long-lived flow sets used by the Fig. 8 and Fig. 10 scenarios."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.sim.flow import Flow

from .trace import FlowTrace


def long_lived_flows(
    host_ids: Sequence[int],
    flows_per_receiver: int,
    size_bytes: int,
    seed: int = 3,
    start_ns: int = 0,
    receivers: Optional[Sequence[int]] = None,
) -> FlowTrace:
    """"4 long-lived flows for each receiver from 4 random senders" (Fig. 8).

    Every receiver gets ``flows_per_receiver`` flows of ``size_bytes`` from
    distinct random senders, all starting at ``start_ns``.
    """
    if flows_per_receiver < 1:
        raise ValueError("flows_per_receiver must be >= 1")
    rng = random.Random(seed)
    targets = list(receivers) if receivers is not None else list(host_ids)
    flows: List[Flow] = []
    for dst in targets:
        senders = [h for h in host_ids if h != dst]
        chosen = rng.sample(senders, min(flows_per_receiver, len(senders)))
        for i, src in enumerate(chosen):
            flows.append(
                Flow(
                    src=src,
                    dst=dst,
                    size=size_bytes,
                    start_ns=start_ns,
                    src_port=30_000 + i,
                    tag="longlived",
                )
            )
    return FlowTrace(flows)


def many_to_one_flows(
    host_ids: Sequence[int],
    receiver: int,
    num_flows: int,
    size_bytes: int,
    seed: int = 4,
    start_ns: int = 0,
) -> FlowTrace:
    """``num_flows`` concurrent long-lived flows to a single receiver (Fig. 10)."""
    if receiver not in host_ids:
        raise ValueError("receiver must be one of the hosts")
    senders = [h for h in host_ids if h != receiver]
    if not senders:
        raise ValueError("need at least one sender besides the receiver")
    rng = random.Random(seed)
    flows: List[Flow] = []
    for i in range(num_flows):
        src = senders[i % len(senders)] if num_flows > len(senders) else rng.choice(senders)
        flows.append(
            Flow(
                src=src,
                dst=receiver,
                size=size_bytes,
                start_ns=start_ns,
                src_port=40_000 + i,
                tag="longlived",
            )
        )
    # Ensure distinct senders where possible (spread across hosts).
    if num_flows <= len(senders):
        chosen = rng.sample(senders, num_flows)
        for flow, src in zip(flows, chosen):
            flow.src = src
    return FlowTrace(flows)
