"""Flow traces: containers of flows plus bookkeeping helpers."""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Optional

from repro.sim.flow import Flow


class FlowTrace:
    """An ordered collection of flows (one synthetic trace)."""

    def __init__(self, flows: Optional[Iterable[Flow]] = None) -> None:
        self.flows: List[Flow] = sorted(flows or [], key=lambda f: f.start_ns)

    def __len__(self) -> int:
        return len(self.flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def __getitem__(self, index: int) -> Flow:
        return self.flows[index]

    # -- composition --------------------------------------------------------------

    def merge(self, other: "FlowTrace") -> "FlowTrace":
        """A new trace containing the flows of both traces, sorted by start time."""
        return FlowTrace(self.flows + other.flows)

    def filtered(self, predicate) -> "FlowTrace":
        return FlowTrace([f for f in self.flows if predicate(f)])

    # -- properties --------------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(f.size for f in self.flows)

    def duration_ns(self) -> int:
        if not self.flows:
            return 0
        return max(f.start_ns for f in self.flows) - min(f.start_ns for f in self.flows)

    def offered_load(self, num_hosts: int, host_link_rate_bps: float, duration_ns: int) -> float:
        """Offered load relative to the aggregate host link capacity."""
        if duration_ns <= 0:
            return 0.0
        capacity_bytes = num_hosts * host_link_rate_bps * duration_ns / (8 * 1e9)
        if capacity_bytes <= 0:
            return 0.0
        return self.total_bytes() / capacity_bytes

    def incast_flows(self) -> "FlowTrace":
        return self.filtered(lambda f: f.is_incast)

    def normal_flows(self) -> "FlowTrace":
        return self.filtered(lambda f: not f.is_incast)

    # -- (de)serialisation -----------------------------------------------------------------

    def to_json(self) -> str:
        records = [
            {
                "src": f.src,
                "dst": f.dst,
                "size": f.size,
                "start_ns": f.start_ns,
                "src_port": f.src_port,
                "dst_port": f.dst_port,
                "is_incast": f.is_incast,
                "tag": f.tag,
            }
            for f in self.flows
        ]
        return json.dumps(records)

    @classmethod
    def from_json(cls, text: str) -> "FlowTrace":
        records = json.loads(text)
        flows = [
            Flow(
                src=r["src"],
                dst=r["dst"],
                size=r["size"],
                start_ns=r["start_ns"],
                src_port=r.get("src_port", 0),
                dst_port=r.get("dst_port", 0),
                is_incast=r.get("is_incast", False),
                tag=r.get("tag", "normal"),
            )
            for r in records
        ]
        return cls(flows)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FlowTrace":
        with open(path, "r", encoding="ascii") as handle:
            return cls.from_json(handle.read())
