"""Workload synthesis: size distributions, arrival generators, incast, flow graphs."""

from .collectives import COLLECTIVE_KINDS, CollectiveSpec
from .distributions import (
    EmpiricalSizeDistribution,
    FB_HADOOP,
    GOOGLE,
    WEBSEARCH,
    WORKLOADS,
    byte_weighted_cdf,
)
from .flowgraph import FlowGraph, FlowGraphError, FlowGraphLauncher
from .generator import WorkloadSpec, generate_workload, load_to_arrival_rate
from .incast import IncastSpec, generate_incast_series, incast_period_for_load
from .longlived import long_lived_flows, many_to_one_flows
from .openloop import OpenLoopSource, OpenLoopSpec
from .rpc import RpcFanoutSpec
from .trace import FlowTrace

__all__ = [
    "EmpiricalSizeDistribution",
    "GOOGLE",
    "FB_HADOOP",
    "WEBSEARCH",
    "WORKLOADS",
    "byte_weighted_cdf",
    "WorkloadSpec",
    "generate_workload",
    "load_to_arrival_rate",
    "IncastSpec",
    "generate_incast_series",
    "incast_period_for_load",
    "long_lived_flows",
    "many_to_one_flows",
    "OpenLoopSource",
    "OpenLoopSpec",
    "FlowTrace",
    "FlowGraph",
    "FlowGraphError",
    "FlowGraphLauncher",
    "COLLECTIVE_KINDS",
    "CollectiveSpec",
    "RpcFanoutSpec",
]
