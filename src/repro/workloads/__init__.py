"""Workload synthesis: flow-size distributions, arrival generators, incast."""

from .distributions import (
    EmpiricalSizeDistribution,
    FB_HADOOP,
    GOOGLE,
    WEBSEARCH,
    WORKLOADS,
    byte_weighted_cdf,
)
from .generator import WorkloadSpec, generate_workload, load_to_arrival_rate
from .incast import IncastSpec, generate_incast_series, incast_period_for_load
from .longlived import long_lived_flows, many_to_one_flows
from .openloop import OpenLoopSource, OpenLoopSpec
from .trace import FlowTrace

__all__ = [
    "EmpiricalSizeDistribution",
    "GOOGLE",
    "FB_HADOOP",
    "WEBSEARCH",
    "WORKLOADS",
    "byte_weighted_cdf",
    "WorkloadSpec",
    "generate_workload",
    "load_to_arrival_rate",
    "IncastSpec",
    "generate_incast_series",
    "incast_period_for_load",
    "long_lived_flows",
    "many_to_one_flows",
    "OpenLoopSource",
    "OpenLoopSpec",
    "FlowTrace",
]
