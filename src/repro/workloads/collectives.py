"""ML-training collective workloads as dependency-driven flow graphs.

Distributed training spends most of its network time in collectives: every
iteration ends with a gradient exchange (all-reduce) and some models add an
all-to-all (mixture-of-experts routing, embedding exchange).  Unlike the
paper's Poisson-arrival traces these workloads are *self-clocked* — step
``s+1`` of a ring cannot start until step ``s``'s chunk has arrived — so a
congestion-control scheme that delays one chunk stalls the whole ring.  That
coupling is exactly what the flow-graph launcher
(:mod:`repro.workloads.flowgraph`) models.

Three patterns are provided, selected by :class:`CollectiveSpec.kind`:

``ring-allreduce``
    The classic bandwidth-optimal ring: ``2*(N-1)`` steps per iteration
    (reduce-scatter then all-gather).  In every step each worker ``i`` sends
    one chunk to ``(i+1) % N``; the step-``s+1`` send of worker ``i`` depends
    on the step-``s`` chunk arriving from ``(i-1) % N``.

``tree-allreduce``
    A binary reduction tree (heap indexing, parent ``(i-1)//2``): reduce up
    (a node sends to its parent once all children's chunks arrived) then
    broadcast down (a node forwards to each child after its parent's chunk
    arrived).

``all-to-all``
    ``N-1`` phases; in phase ``p`` worker ``i`` sends to ``(i+p) % N``, and
    may do so only after its phase-``p-1`` receive (from ``(i-(p-1)) % N``)
    has completed — a synchronized shuffle.

Iterations chain through an optional ``compute_delay_ns`` (forward/backward
pass between exchanges).  All dependency edges satisfy the launcher's
locality invariant ``dep.dst == dependent.src`` by construction, so the
workloads compose with sharded execution unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.flow import Flow

from .flowgraph import FlowGraph

COLLECTIVE_KINDS = ("ring-allreduce", "tree-allreduce", "all-to-all")


@dataclass(frozen=True)
class CollectiveSpec:
    """Configuration of one collective job.

    Attributes
    ----------
    kind:
        One of :data:`COLLECTIVE_KINDS`.
    num_workers:
        Workers participating; ``0`` (default) uses every host of the
        experiment.  When fewer than the host count, workers are placed on a
        seed-driven random subset so repeated jobs don't always share racks.
    chunk_bytes:
        Bytes per flow (per step and peer).  For ring all-reduce this is the
        per-step chunk, i.e. ``gradient_bytes / N`` of a real ring.
    iterations:
        Training iterations; each runs the full collective once.
    compute_delay_ns:
        Model compute inserted between an iteration's last arrival and the
        next iteration's first send.
    start_ns:
        Launch time of the first iteration's root flows.
    tag:
        Label stamped on every generated flow (analysis filters on it).
    """

    kind: str = "ring-allreduce"
    num_workers: int = 0
    chunk_bytes: int = 64_000
    iterations: int = 1
    compute_delay_ns: int = 0
    start_ns: int = 0
    tag: str = "collective"

    def validate(self) -> None:
        if self.kind not in COLLECTIVE_KINDS:
            raise ValueError(
                f"unknown collective kind {self.kind!r}; expected one of {COLLECTIVE_KINDS}"
            )
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0 (0 = all hosts)")
        if self.num_workers == 1:
            raise ValueError("a collective needs at least 2 workers")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.compute_delay_ns < 0 or self.start_ns < 0:
            raise ValueError("delays must be non-negative")

    # -- generation -------------------------------------------------------------------

    def generate(self, host_ids: Sequence[int], seed: int = 0) -> FlowGraph:
        """Build the flow graph for this job on the given hosts."""
        self.validate()
        workers = self._place_workers(host_ids, seed)
        src_port = 2_000 + (seed % 40_000)
        if self.kind == "ring-allreduce":
            graph = _ring_allreduce(self, workers, src_port)
        elif self.kind == "tree-allreduce":
            graph = _tree_allreduce(self, workers, src_port)
        else:
            graph = _all_to_all(self, workers, src_port)
        return graph.validate()

    def _place_workers(self, host_ids: Sequence[int], seed: int) -> List[int]:
        hosts = list(host_ids)
        if len(hosts) < 2:
            raise ValueError("collective workloads need at least 2 hosts")
        count = self.num_workers or len(hosts)
        if count > len(hosts):
            raise ValueError(
                f"num_workers={count} exceeds the {len(hosts)} available hosts"
            )
        if count == len(hosts):
            return hosts
        rng = random.Random(seed)
        return sorted(rng.sample(hosts, count))


def _flow(spec: CollectiveSpec, src: int, dst: int, src_port: int) -> Flow:
    return Flow(
        src=src,
        dst=dst,
        size=spec.chunk_bytes,
        start_ns=spec.start_ns,
        src_port=src_port,
        tag=spec.tag,
    )


def _chain_iterations(
    spec: CollectiveSpec,
    graph: FlowGraph,
    iteration_roots: Dict[int, List[Flow]],
    iteration_finals: Dict[int, Dict[int, List[int]]],
) -> FlowGraph:
    """Wire iteration ``k``'s roots to depend on iteration ``k-1``'s finals.

    ``iteration_finals[k][host]`` lists the flow ids of iteration ``k``'s
    last-step arrivals *into* ``host``; a root of iteration ``k+1`` sent by
    that host depends on all of them, with ``compute_delay_ns`` applied.
    """
    for k in range(1, spec.iterations):
        finals = iteration_finals[k - 1]
        for root in iteration_roots[k]:
            deps = finals.get(root.src)
            if not deps:
                continue
            existing = root.depends_on or ()
            root.depends_on = tuple(existing) + tuple(deps)
            if spec.compute_delay_ns:
                graph.compute_delay_ns[root.flow_id] = spec.compute_delay_ns
    return graph


def _ring_allreduce(spec: CollectiveSpec, workers: List[int], src_port: int) -> FlowGraph:
    n = len(workers)
    steps = 2 * (n - 1)
    graph = FlowGraph()
    iteration_roots: Dict[int, List[Flow]] = {}
    iteration_finals: Dict[int, Dict[int, List[int]]] = {}
    for k in range(spec.iterations):
        # prev_step[i] = id of the step's flow *arriving at* worker slot i.
        prev_step: List[Optional[int]] = [None] * n
        roots: List[Flow] = []
        for step in range(steps):
            this_step: List[Optional[int]] = [None] * n
            for i in range(n):
                flow = _flow(spec, workers[i], workers[(i + 1) % n], src_port)
                if step > 0:
                    flow.depends_on = (prev_step[i],)
                else:
                    roots.append(flow)
                graph.flows.append(flow)
                this_step[(i + 1) % n] = flow.flow_id
            prev_step = this_step
        iteration_roots[k] = roots
        iteration_finals[k] = {
            workers[i]: [prev_step[i]] for i in range(n) if prev_step[i] is not None
        }
    return _chain_iterations(spec, graph, iteration_roots, iteration_finals)


def _tree_allreduce(spec: CollectiveSpec, workers: List[int], src_port: int) -> FlowGraph:
    n = len(workers)
    graph = FlowGraph()
    iteration_roots: Dict[int, List[Flow]] = {}
    iteration_finals: Dict[int, Dict[int, List[int]]] = {}
    children: Dict[int, List[int]] = {}
    for i in range(1, n):
        children.setdefault((i - 1) // 2, []).append(i)
    for k in range(spec.iterations):
        roots: List[Flow] = []
        # Reduce up: node i sends to its parent once every child's chunk
        # has arrived at i.  up_arrival[i] = flow ids arriving at node i.
        up_arrival: Dict[int, List[int]] = {}
        for i in range(n - 1, 0, -1):
            flow = _flow(spec, workers[i], workers[(i - 1) // 2], src_port)
            deps = up_arrival.get(i)
            if deps:
                flow.depends_on = tuple(deps)
            else:
                roots.append(flow)  # leaf: starts the iteration
            graph.flows.append(flow)
            up_arrival.setdefault((i - 1) // 2, []).append(flow.flow_id)
        # Broadcast down: node i forwards to each child after its own
        # down-arrival (the root forwards after the full reduction reached it).
        down_arrival: Dict[int, int] = {}
        finals: Dict[int, List[int]] = {}
        for i in range(n):
            kids = children.get(i, ())
            if i == 0:
                # The root forwards once the full reduction reached it.
                deps = tuple(up_arrival.get(0, ()))
            else:
                deps = (down_arrival[i],)
            for child in kids:
                flow = _flow(spec, workers[i], workers[child], src_port)
                flow.depends_on = deps
                graph.flows.append(flow)
                down_arrival[child] = flow.flow_id
        for i in range(n):
            if i in down_arrival:
                finals[workers[i]] = [down_arrival[i]]
            elif i == 0:
                # The root never receives a broadcast; its iteration ends
                # when the reduction arrives.
                finals[workers[0]] = list(up_arrival.get(0, ()))
        iteration_roots[k] = roots
        iteration_finals[k] = finals
    return _chain_iterations(spec, graph, iteration_roots, iteration_finals)


def _all_to_all(spec: CollectiveSpec, workers: List[int], src_port: int) -> FlowGraph:
    n = len(workers)
    graph = FlowGraph()
    iteration_roots: Dict[int, List[Flow]] = {}
    iteration_finals: Dict[int, Dict[int, List[int]]] = {}
    for k in range(spec.iterations):
        prev_arrival: List[Optional[int]] = [None] * n
        roots: List[Flow] = []
        for phase in range(1, n):
            this_arrival: List[Optional[int]] = [None] * n
            for i in range(n):
                flow = _flow(spec, workers[i], workers[(i + phase) % n], src_port)
                if prev_arrival[i] is not None:
                    flow.depends_on = (prev_arrival[i],)
                else:
                    roots.append(flow)
                graph.flows.append(flow)
                this_arrival[(i + phase) % n] = flow.flow_id
            prev_arrival = this_arrival
        iteration_roots[k] = roots
        iteration_finals[k] = {
            workers[i]: [prev_arrival[i]] for i in range(n) if prev_arrival[i] is not None
        }
    return _chain_iterations(spec, graph, iteration_roots, iteration_finals)
