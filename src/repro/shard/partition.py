"""Topology partitioning for space-parallel sharded simulation.

A *partition* assigns every node (hosts and switches) of a built
:class:`~repro.topology.topology.Topology` to one of ``num_shards`` shards.
Links whose endpoints land in different shards become *cut links*: each cut
link is replaced, at run time, by a cross-process boundary channel whose
latency is the link's real propagation delay.  That delay is exactly the
*lookahead* a conservative parallel discrete-event simulation needs, so the
safe synchronization window of a partition is::

    window_ns = min(delay_ns of every cut link)

Backpressure decisions in BFC (and the schemes it is compared against) are
per-hop local, which is what makes a spatial cut of the fabric semantically
clean: no component ever reads another node's state directly — everything
crosses a link as a packet.

Strategies
----------

``"pod"``
    One *pod* (a ToR switch plus all of its hosts) never splits.  Pods are
    grouped contiguously into shards; spine switches are spread round-robin.
    In a multi-DC topology the shards are first divided between the DCs so
    that the DC boundary is always a cut.
``"dc"``
    One shard per data center (gateways stay with their DC); the only cut is
    the long-delay inter-DC link, giving the largest possible window.
``"greedy"``
    Generic fallback for irregular topologies: pods are packed onto shards
    largest-first onto the least-loaded shard (a min-cut-flavoured balance
    heuristic that still keeps every host with its ToR); all remaining
    switches are spread round-robin by sorted name.
``"auto"``
    ``"dc"`` when the topology spans multiple DCs and ``num_shards`` divides
    evenly into them, else ``"pod"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.topology import Topology

STRATEGIES = ("auto", "pod", "dc", "greedy")


class PartitionError(ValueError):
    """Raised when a topology cannot be partitioned as requested."""


@dataclass(frozen=True)
class CutLink:
    """One link whose endpoints live in different shards."""

    a: str
    b: str
    shard_a: int
    shard_b: int
    delay_ns: int
    rate_bps: float
    link_class: str


@dataclass
class PartitionSpec:
    """The result of partitioning one topology into shards.

    ``shard_of`` maps every node name (hosts and switches) to its shard
    index; ``cuts`` lists the links whose endpoints landed in different
    shards.  The smallest cut-link delay is the partition's conservative
    synchronization window (:attr:`window_ns`): the coordinator may let all
    shards advance that far past the globally earliest event without any
    shard outrunning a packet another shard still owes it.

    A spec is pure data — produced by :func:`partition_topology`, consumed
    by the coordinator (epoch windows), the boundary layer (which links to
    replace with channels), the CLI (``repro topology info``) and the
    campaign scheduler's documentation of a trial's process footprint.
    """

    num_shards: int
    strategy: str
    shard_of: Dict[str, int]  # node name -> shard index
    cuts: List[CutLink] = field(default_factory=list)

    @property
    def window_ns(self) -> Optional[int]:
        """Conservative synchronization window: the smallest cut-link delay."""
        if not self.cuts:
            return None
        return min(cut.delay_ns for cut in self.cuts)

    def shard_of_host(self, topo: Topology, host_id: int) -> int:
        return self.shard_of[topo.hosts[host_id].name]

    def nonempty_shards(self) -> List[int]:
        return sorted(set(self.shard_of.values()))

    def stats(self, topo: Topology) -> Dict[str, object]:
        """Shard sizes and cut-link statistics (for the CLI and benchmarks)."""
        host_names = {host.name for host in topo.hosts.values()}
        per_shard: Dict[int, Dict[str, int]] = {}
        for name, shard in self.shard_of.items():
            entry = per_shard.setdefault(shard, {"hosts": 0, "switches": 0})
            entry["hosts" if name in host_names else "switches"] += 1
        cuts_by_class: Dict[str, int] = {}
        for cut in self.cuts:
            cuts_by_class[cut.link_class] = cuts_by_class.get(cut.link_class, 0) + 1
        return {
            "num_shards": self.num_shards,
            "strategy": self.strategy,
            "shards": {str(s): per_shard[s] for s in sorted(per_shard)},
            "cut_links": len(self.cuts),
            "cut_links_by_class": dict(sorted(cuts_by_class.items())),
            "window_ns": self.window_ns,
        }


# ---------------------------------------------------------------------------
# Topology inspection helpers
# ---------------------------------------------------------------------------


def _dc_of_switches(topo: Topology) -> Dict[str, int]:
    """Map every switch to a data center.

    ToRs inherit the DC of their hosts; every other switch gets the DC of its
    nearest ToR via a breadth-first sweep over the link graph (deterministic:
    neighbours are visited in sorted-name order, and a node keeps the first
    DC that reaches it).  Gateways sit one hop above their own DC's spines
    but several hops from the remote DC's ToRs, so they resolve correctly.
    """
    adjacency: Dict[str, List[str]] = {}
    for link in topo.links:
        adjacency.setdefault(link.a_name, []).append(link.b_name)
        adjacency.setdefault(link.b_name, []).append(link.a_name)
    for neighbours in adjacency.values():
        neighbours.sort()

    dc_of: Dict[str, int] = {}
    frontier: List[str] = []
    for host_id in topo.host_ids():
        tor_name = topo.tor_of_host[host_id]
        if tor_name not in dc_of:
            dc_of[tor_name] = topo.dc_of_host.get(host_id, 0)
            frontier.append(tor_name)
    frontier.sort()
    while frontier:
        next_frontier: List[str] = []
        for name in frontier:
            for neighbour in adjacency.get(name, ()):
                if neighbour in topo.switches and neighbour not in dc_of:
                    dc_of[neighbour] = dc_of[name]
                    next_frontier.append(neighbour)
        next_frontier.sort()
        frontier = next_frontier
    for switch in topo.switches:
        dc_of.setdefault(switch, 0)
    return dc_of


def _pods(topo: Topology) -> Dict[str, List[str]]:
    """ToR name -> [host names], in sorted host-id order."""
    pods: Dict[str, List[str]] = {}
    for host_id in topo.host_ids():
        pods.setdefault(topo.tor_of_host[host_id], []).append(
            topo.hosts[host_id].name
        )
    return pods


def _contiguous_groups(n_items: int, n_groups: int) -> List[int]:
    """Group index of each item when splitting items into contiguous runs."""
    return [item * n_groups // n_items for item in range(n_items)]


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _assign_pod(
    topo: Topology, num_shards: int, dc_of: Dict[str, int]
) -> Dict[str, int]:
    """Pods contiguous, spines round-robin; DCs get disjoint shard blocks."""
    pods = _pods(topo)
    dcs = sorted(set(dc_of.values()))
    if len(dcs) > num_shards:
        # Fewer shards than DCs: group whole DCs contiguously.
        return _assign_dc(topo, num_shards, dc_of)

    # Allocate each DC a contiguous block of shards, proportional to its pod
    # count (every DC gets at least one shard, remainders go to earlier DCs).
    pod_names = sorted(pods)
    pods_per_dc = {dc: [p for p in pod_names if dc_of[p] == dc] for dc in dcs}
    total_pods = len(pod_names)
    blocks: Dict[int, List[int]] = {}
    start = 0
    remaining = num_shards
    for i, dc in enumerate(dcs):
        left = len(dcs) - i - 1
        share = max(1, round(num_shards * len(pods_per_dc[dc]) / max(1, total_pods)))
        share = min(share, remaining - left)  # leave >= 1 shard per later DC
        blocks[dc] = list(range(start, start + share))
        start += share
        remaining -= share
    # Give any unallocated trailing shards to the last DC's block.
    if start < num_shards:
        blocks[dcs[-1]].extend(range(start, num_shards))

    shard_of: Dict[str, int] = {}
    for dc in dcs:
        block = blocks[dc]
        dc_pods = pods_per_dc[dc]
        n_pod_shards = min(len(block), len(dc_pods))
        groups = _contiguous_groups(len(dc_pods), n_pod_shards)
        for index, tor_name in enumerate(dc_pods):
            shard = block[groups[index]]
            shard_of[tor_name] = shard
            for host_name in pods[tor_name]:
                shard_of[host_name] = shard
        # Non-ToR switches of this DC: if the block has a shard beyond the
        # pod shards, they ALL go to the first such slot — one spines-only
        # shard per DC.  Keeping the spine tier together means any two
        # packets contesting the same downstream queue cross the same shard
        # transitions, so the per-shard capture order carries the
        # single-process tie-break end to end (see the determinism notes in
        # :mod:`repro.shard.coordinator`).  With no spare slot, spread them
        # round-robin over the DC's pod shards.
        others = sorted(
            name
            for name, switch in topo.switches.items()
            if dc_of[name] == dc and name not in shard_of
        )
        spine_slots = block[n_pod_shards:n_pod_shards + 1] or block
        for index, name in enumerate(others):
            shard_of[name] = spine_slots[index % len(spine_slots)]
    return shard_of


def _assign_dc(
    topo: Topology, num_shards: int, dc_of: Dict[str, int]
) -> Dict[str, int]:
    dcs = sorted(set(dc_of.values()))
    if len(dcs) < 2:
        raise PartitionError(
            "the 'dc' strategy needs a multi-DC topology; use 'pod' instead"
        )
    groups = _contiguous_groups(len(dcs), min(num_shards, len(dcs)))
    shard_of_dc = {dc: groups[i] for i, dc in enumerate(dcs)}
    shard_of: Dict[str, int] = {}
    for host_id, host in topo.hosts.items():
        shard_of[host.name] = shard_of_dc[topo.dc_of_host.get(host_id, 0)]
    for name in topo.switches:
        shard_of[name] = shard_of_dc[dc_of[name]]
    return shard_of


def _assign_greedy(topo: Topology, num_shards: int) -> Dict[str, int]:
    """Balanced pod packing: largest pod first onto the least-loaded shard."""
    pods = _pods(topo)
    loads = [0] * num_shards
    shard_of: Dict[str, int] = {}
    order = sorted(pods, key=lambda tor: (-len(pods[tor]), tor))
    for tor_name in order:
        shard = min(range(num_shards), key=lambda s: (loads[s], s))
        loads[shard] += len(pods[tor_name]) + 1
        shard_of[tor_name] = shard
        for host_name in pods[tor_name]:
            shard_of[host_name] = shard
    others = sorted(name for name in topo.switches if name not in shard_of)
    for index, name in enumerate(others):
        shard_of[name] = index % num_shards
    return shard_of


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def partition_topology(
    topo: Topology, num_shards: int, strategy: str = "auto"
) -> PartitionSpec:
    """Partition a built topology into ``num_shards`` shards.

    The assignment is a pure function of the topology and the arguments, so
    every worker process computes an identical partition independently.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in STRATEGIES:
        raise PartitionError(
            f"unknown strategy {strategy!r}; choose from {', '.join(STRATEGIES)}"
        )
    dc_of = _dc_of_switches(topo)
    num_dcs = len(set(dc_of.values()))

    if num_shards == 1:
        shard_of = {host.name: 0 for host in topo.hosts.values()}
        shard_of.update({name: 0 for name in topo.switches})
        return PartitionSpec(1, strategy, shard_of, [])

    resolved = strategy
    if strategy == "auto":
        resolved = "dc" if num_dcs > 1 and num_shards <= num_dcs else "pod"
    if resolved == "dc":
        shard_of = _assign_dc(topo, num_shards, dc_of)
    elif resolved == "pod":
        shard_of = _assign_pod(topo, num_shards, dc_of)
    else:
        shard_of = _assign_greedy(topo, num_shards)

    cuts: List[CutLink] = []
    for link in topo.links:
        shard_a = shard_of[link.a_name]
        shard_b = shard_of[link.b_name]
        if shard_a != shard_b:
            cuts.append(
                CutLink(
                    a=link.a_name,
                    b=link.b_name,
                    shard_a=shard_a,
                    shard_b=shard_b,
                    delay_ns=link.delay_ns,
                    rate_bps=link.rate_bps,
                    link_class=link.link_class,
                )
            )

    spec = PartitionSpec(num_shards, resolved, shard_of, cuts)
    _validate(topo, spec)
    return spec


def _validate(topo: Topology, spec: PartitionSpec) -> None:
    for host_id in topo.host_ids():
        host_name = topo.hosts[host_id].name
        tor_name = topo.tor_of_host[host_id]
        if spec.shard_of[host_name] != spec.shard_of[tor_name]:
            raise PartitionError(
                f"host {host_name} split from its ToR {tor_name}: "
                "hosts must stay with their ToR"
            )
    if spec.cuts and spec.window_ns is not None and spec.window_ns <= 0:
        raise PartitionError("cut links must have positive propagation delay")
